//! The common matching interface shared by baselines and the paper's
//! matchers.

use redet_syntax::Symbol;

/// A word-membership tester for one fixed regular expression.
///
/// All matchers in this workspace are *streaming*: they read the word one
/// symbol at a time through an explicit state machine interface and never
/// need to store the word (Section 1: "all our matching algorithms are
/// streamable"). [`Matcher::matches`] is the convenience wrapper over the
/// streaming interface.
pub trait Matcher {
    /// Opaque matcher state (typically the current position of the Glushkov
    /// automaton plus whatever bookkeeping the algorithm needs).
    type State: Clone;

    /// The state before any symbol has been read.
    fn start(&self) -> Self::State;

    /// Consumes one symbol. Returns `None` if no continuation exists, i.e.
    /// the word read so far is not a prefix of any word of the language.
    fn step(&self, state: &Self::State, symbol: Symbol) -> Option<Self::State>;

    /// Whether the word read so far belongs to the language.
    fn accepts(&self, state: &Self::State) -> bool;

    /// Whether `word` belongs to the language of the expression.
    fn matches(&self, word: &[Symbol]) -> bool {
        let mut state = self.start();
        for &sym in word {
            match self.step(&state, sym) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.accepts(&state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy matcher for the language (ab)* over symbols 0 = a, 1 = b,
    /// exercising the default `matches` implementation.
    struct ToyAbStar;

    impl Matcher for ToyAbStar {
        type State = bool; // true = expecting a, false = expecting b

        fn start(&self) -> bool {
            true
        }

        fn step(&self, state: &bool, symbol: Symbol) -> Option<bool> {
            match (state, symbol.index()) {
                (true, 0) => Some(false),
                (false, 1) => Some(true),
                _ => None,
            }
        }

        fn accepts(&self, state: &bool) -> bool {
            *state
        }
    }

    #[test]
    fn default_matches_drives_the_stream() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let m = ToyAbStar;
        assert!(m.matches(&[]));
        assert!(m.matches(&[a, b]));
        assert!(m.matches(&[a, b, a, b]));
        assert!(!m.matches(&[a]));
        assert!(!m.matches(&[b, a]));
        assert!(!m.matches(&[a, b, a]));
        assert!(!m.matches(&[a, a]));
    }
}
