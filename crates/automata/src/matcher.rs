//! The common matching interface shared by baselines and the paper's
//! matchers: incremental **sessions**.
//!
//! All matchers in this workspace are *streaming* (Section 1: "all our
//! matching algorithms are streamable"): a word is validated one symbol at
//! a time through a cursor — a [`Session`] — opened with
//! [`Matcher::start`]. Feeding a symbol either advances the session or
//! rejects it with a [`RejectWitness`] naming the offending event; because
//! every matcher simulates a *deterministic* automaton (or a set-of-positions
//! closure of one), a rejection at event `i` means **no extension** of the
//! first `i` symbols belongs to the language — callers such as a document
//! validator can stop early and report the exact failure point.
//!
//! The whole-word convenience [`Matcher::matches`] is a thin loop over a
//! session, so there is exactly one matching code path.
//!
//! Sessions that need per-word buffers (e.g. the set-of-positions NFA
//! simulation) take them from a caller-owned [`Matcher::Scratch`] value and
//! hand them back through [`Session::into_scratch`]; recycling the scratch
//! across words keeps steady-state matching allocation-free.

use redet_syntax::Symbol;
use redet_tree::PosId;

/// Evidence for a rejection: the event index (0-based position in the fed
/// word) and the symbol that could not be consumed. By determinism, no
/// extension of the prefix fed before this event is in the language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejectWitness {
    /// Index of the offending symbol among the symbols fed to the session.
    pub event: usize,
    /// The symbol that had no continuation.
    pub symbol: Symbol,
}

/// Outcome of feeding one symbol to a [`Session`].
///
/// Marked `#[non_exhaustive]`: later revisions may report finer-grained
/// outcomes (e.g. advancing into a state that cannot accept any more) —
/// match through [`Step::is_advanced`] / [`Step::witness`] or keep a
/// wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Step {
    /// The symbol was consumed; the prefix read so far is still viable.
    Advanced,
    /// The symbol has no continuation: no word of the language starts with
    /// the symbols fed so far. Feeding a rejected session again keeps
    /// returning the witness of the *first* failure.
    Rejected(RejectWitness),
}

impl Step {
    /// Whether the step consumed the symbol.
    #[inline]
    pub fn is_advanced(&self) -> bool {
        matches!(self, Step::Advanced)
    }

    /// The rejection witness, if the step rejected.
    #[inline]
    pub fn witness(&self) -> Option<RejectWitness> {
        match self {
            Step::Advanced => None,
            Step::Rejected(w) => Some(*w),
        }
    }
}

/// An incremental matching cursor over one fixed expression: feed symbols
/// one at a time, ask for acceptance at any point.
pub trait Session: Sized {
    /// The reusable buffer type this session was opened with (see
    /// [`Matcher::Scratch`]).
    type Scratch;

    /// Consumes one symbol. After a rejection the session is dead: further
    /// feeds return the original witness and [`Session::accepts`] is false.
    fn feed(&mut self, symbol: Symbol) -> Step;

    /// Whether the word fed so far belongs to the language.
    fn accepts(&self) -> bool;

    /// Number of symbols successfully consumed so far.
    fn events(&self) -> usize;

    /// The witness of the first rejection, if the session is dead.
    fn rejection(&self) -> Option<RejectWitness>;

    /// Closes the session, recovering the scratch for reuse by a later
    /// session.
    fn into_scratch(self) -> Self::Scratch;
}

/// A word-membership tester for one fixed regular expression, exposed as a
/// factory of incremental [`Session`]s.
pub trait Matcher {
    /// Reusable per-session buffers; `Default` produces an empty scratch
    /// (which allocates lazily on first use). Matchers whose entire state is
    /// a single position use `()`.
    type Scratch: Default;

    /// The session type produced by [`Matcher::start`].
    type Session<'m>: Session<Scratch = Self::Scratch>
    where
        Self: 'm;

    /// Opens a session, taking ownership of `scratch` (recover it with
    /// [`Session::into_scratch`]).
    #[must_use]
    fn start(&self, scratch: Self::Scratch) -> Self::Session<'_>;

    /// Opens a session with a fresh scratch.
    #[must_use]
    fn session(&self) -> Self::Session<'_> {
        self.start(Self::Scratch::default())
    }

    /// Whether `word` belongs to the language, reusing caller-owned scratch
    /// — the zero-allocation form of [`Matcher::matches`].
    fn matches_with(&self, word: &[Symbol], scratch: &mut Self::Scratch) -> bool {
        let mut session = self.start(std::mem::take(scratch));
        let mut viable = true;
        for &sym in word {
            if !session.feed(sym).is_advanced() {
                viable = false;
                break;
            }
        }
        let accepted = viable && session.accepts();
        *scratch = session.into_scratch();
        accepted
    }

    /// Whether `word` belongs to the language of the expression. This is a
    /// thin loop over a session — the only matching code path.
    fn matches(&self, word: &[Symbol]) -> bool {
        let mut scratch = Self::Scratch::default();
        self.matches_with(word, &mut scratch)
    }
}

/// A matcher whose entire per-word state is one position of the marked
/// expression (the deterministic transition-simulation shape shared by the
/// Glushkov DFA baseline and all four Section 4 matchers).
///
/// Implementing this trait provides [`Matcher`] for free through the generic
/// [`PosSession`] cursor.
pub trait PosStepper {
    /// The state before any symbol has been read (the phantom `#`).
    fn begin(&self) -> PosId;

    /// The unique `symbol`-labeled position following `p`, or `None` if the
    /// symbol cannot be read at this point.
    fn advance(&self, p: PosId, symbol: Symbol) -> Option<PosId>;

    /// Whether a word can end at position `p` (`$ ∈ Follow(p)`).
    fn can_end(&self, p: PosId) -> bool;
}

/// The suspended state of a [`PosSession`]: the current position, the event
/// counter, and the sticky rejection witness — 24 bytes of plain `Copy`
/// data with no borrow of the matcher. Park it per connection and pick the
/// cursor back up later with [`PosSession::resume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosState {
    pos: PosId,
    events: usize,
    rejected: Option<RejectWitness>,
}

/// The generic session over a [`PosStepper`]: a current position, an event
/// counter, and a sticky rejection witness. Needs no scratch.
#[derive(Clone, Debug)]
pub struct PosSession<'m, M: ?Sized> {
    matcher: &'m M,
    pos: PosId,
    events: usize,
    rejected: Option<RejectWitness>,
}

impl<'m, M: PosStepper + ?Sized> PosSession<'m, M> {
    /// The current position of the cursor.
    pub fn position(&self) -> PosId {
        self.pos
    }

    /// Suspends the session into a plain-data [`PosState`], dropping the
    /// borrow of the matcher. The state is only meaningful to the matcher
    /// that produced it (positions index *its* marked expression).
    #[must_use]
    pub fn into_state(self) -> PosState {
        PosState {
            pos: self.pos,
            events: self.events,
            rejected: self.rejected,
        }
    }

    /// Resumes a session suspended by [`PosSession::into_state`]. Resuming
    /// a state on a different matcher than the one that produced it is a
    /// logic error: positions are indices into the producing matcher's
    /// marked expression.
    #[must_use]
    pub fn resume(matcher: &'m M, state: PosState) -> Self {
        PosSession {
            matcher,
            pos: state.pos,
            events: state.events,
            rejected: state.rejected,
        }
    }
}

impl<'m, M: PosStepper + ?Sized> Session for PosSession<'m, M> {
    type Scratch = ();

    #[inline]
    fn feed(&mut self, symbol: Symbol) -> Step {
        if let Some(w) = self.rejected {
            return Step::Rejected(w);
        }
        match self.matcher.advance(self.pos, symbol) {
            Some(q) => {
                self.pos = q;
                self.events += 1;
                Step::Advanced
            }
            None => {
                let w = RejectWitness {
                    event: self.events,
                    symbol,
                };
                self.rejected = Some(w);
                Step::Rejected(w)
            }
        }
    }

    #[inline]
    fn accepts(&self) -> bool {
        self.rejected.is_none() && self.matcher.can_end(self.pos)
    }

    fn events(&self) -> usize {
        self.events
    }

    fn rejection(&self) -> Option<RejectWitness> {
        self.rejected
    }

    fn into_scratch(self) -> Self::Scratch {}
}

impl<M: PosStepper> Matcher for M {
    type Scratch = ();
    type Session<'m>
        = PosSession<'m, M>
    where
        M: 'm;

    fn start(&self, _scratch: ()) -> PosSession<'_, M> {
        PosSession {
            matcher: self,
            pos: self.begin(),
            events: 0,
            rejected: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy stepper for the language (ab)* over symbols 0 = a, 1 = b,
    /// exercising the generic session and the default `matches` loop.
    /// Position 0 expects `a`, position 1 expects `b`.
    struct ToyAbStar;

    impl PosStepper for ToyAbStar {
        fn begin(&self) -> PosId {
            PosId::from_index(0)
        }

        fn advance(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
            match (p.index(), symbol.index()) {
                (0, 0) => Some(PosId::from_index(1)),
                (1, 1) => Some(PosId::from_index(0)),
                _ => None,
            }
        }

        fn can_end(&self, p: PosId) -> bool {
            p.index() == 0
        }
    }

    #[test]
    fn default_matches_drives_the_session() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let m = ToyAbStar;
        assert!(m.matches(&[]));
        assert!(m.matches(&[a, b]));
        assert!(m.matches(&[a, b, a, b]));
        assert!(!m.matches(&[a]));
        assert!(!m.matches(&[b, a]));
        assert!(!m.matches(&[a, b, a]));
        assert!(!m.matches(&[a, a]));
    }

    #[test]
    fn sessions_reject_with_a_witness_and_stay_dead() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let m = ToyAbStar;
        let mut s = m.session();
        assert_eq!(s.feed(a), Step::Advanced);
        assert_eq!(s.feed(b), Step::Advanced);
        assert!(s.accepts());
        assert_eq!(s.events(), 2);
        assert_eq!(s.rejection(), None);
        // The third `b` cannot be read: event 2 is the witness.
        let w = RejectWitness {
            event: 2,
            symbol: b,
        };
        assert_eq!(s.feed(b), Step::Rejected(w));
        assert!(!s.accepts());
        // Dead sessions keep returning the first witness, even for symbols
        // that would otherwise advance.
        assert_eq!(s.feed(a), Step::Rejected(w));
        assert_eq!(s.events(), 2);
        assert_eq!(s.rejection(), Some(w));
    }

    #[test]
    fn matches_with_recovers_the_scratch() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let m = ToyAbStar;
        let mut scratch = ();
        assert!(m.matches_with(&[a, b], &mut scratch));
        assert!(!m.matches_with(&[b], &mut scratch));
    }
}
