//! Construction of the Glushkov (position) automaton.
//!
//! The Glushkov automaton of a marked expression `e` has one state per
//! position plus an initial state; there is a transition `p → q` labeled
//! `lab(q)` whenever `q ∈ Follow(p)`. Thanks to the (R1) wrapping
//! `(# e′) $`, the phantom position `#` plays the role of the initial state
//! and a position is accepting iff `$` follows it, so the automaton is fully
//! described by the `Follow` lists of all positions.
//!
//! The `First`/`Last`/`Follow` sets are computed with the classical
//! syntax-directed recursion [Glushkov 1961; Berry & Sethi 1986]. The total
//! size of the `Follow` lists — and hence construction time — is `Θ(σ|e|)`
//! in the worst case (e.g. the "mixed content" expressions
//! `(a₁ + ⋯ + a_m)*`), which is exactly the quadratic behaviour the paper's
//! linear-time algorithms avoid.

use crate::determinism::NonDeterminismWitness;
use redet_syntax::{Regex, Symbol};
use redet_tree::{NodeKind, ParseTree, PosId};

/// The Glushkov automaton of a regular expression, represented by its
/// per-position `Follow` lists.
#[derive(Clone, Debug)]
pub struct GlushkovAutomaton {
    /// `follow[p]` — positions that may follow position `p`, sorted and
    /// deduplicated. Includes the phantom `$` when `p` can end a word.
    follow: Vec<Vec<PosId>>,
    /// Symbol of each position (`None` for the phantom `#`/`$`).
    symbols: Vec<Option<Symbol>>,
    /// Whether `ε ∈ L(e′)`.
    nullable: bool,
}

impl GlushkovAutomaton {
    /// Builds the automaton of `regex` (the parse tree is built internally).
    pub fn build(regex: &Regex) -> Self {
        Self::from_tree(&ParseTree::build(regex))
    }

    /// Builds the automaton from an existing parse tree.
    pub fn from_tree(tree: &ParseTree) -> Self {
        let n = tree.num_nodes();
        let m = tree.num_positions();

        // Bottom-up First/Last/nullable, reusing the preorder id ordering
        // (children have larger ids than their parent).
        let mut first: Vec<Vec<PosId>> = vec![Vec::new(); n];
        let mut last: Vec<Vec<PosId>> = vec![Vec::new(); n];
        let mut nullable = vec![false; n];
        let mut follow: Vec<Vec<PosId>> = vec![Vec::new(); m];

        for id in (0..n).rev() {
            let node = redet_tree::NodeId::from_index(id);
            match tree.kind(node) {
                NodeKind::Begin | NodeKind::End | NodeKind::Position(_) => {
                    let p = tree.node_pos(node).expect("leaves are positions");
                    first[id] = vec![p];
                    last[id] = vec![p];
                    nullable[id] = false;
                }
                NodeKind::Concat => {
                    let l = tree.lchild(node).unwrap().index();
                    let r = tree.rchild(node).unwrap().index();
                    // Follow contribution: Last(l) × First(r).
                    for &p in &last[l] {
                        follow[p.index()].extend_from_slice(&first[r]);
                    }
                    let mut f = first[l].clone();
                    if nullable[l] {
                        f.extend_from_slice(&first[r]);
                    }
                    let mut la = last[r].clone();
                    if nullable[r] {
                        la.extend_from_slice(&last[l]);
                    }
                    first[id] = f;
                    last[id] = la;
                    nullable[id] = nullable[l] && nullable[r];
                }
                NodeKind::Union => {
                    let l = tree.lchild(node).unwrap().index();
                    let r = tree.rchild(node).unwrap().index();
                    let mut f = first[l].clone();
                    f.extend_from_slice(&first[r]);
                    let mut la = last[l].clone();
                    la.extend_from_slice(&last[r]);
                    first[id] = f;
                    last[id] = la;
                    nullable[id] = nullable[l] || nullable[r];
                }
                NodeKind::Optional => {
                    let c = tree.lchild(node).unwrap().index();
                    first[id] = first[c].clone();
                    last[id] = last[c].clone();
                    nullable[id] = true;
                }
                NodeKind::Star => {
                    let c = tree.lchild(node).unwrap().index();
                    for &p in &last[c] {
                        follow[p.index()].extend_from_slice(&first[c]);
                    }
                    first[id] = first[c].clone();
                    last[id] = last[c].clone();
                    nullable[id] = true;
                }
                NodeKind::Repeat(min, max) => {
                    let c = tree.lchild(node).unwrap().index();
                    // Iteration edges exist when the body may repeat.
                    if max.map_or(true, |m| m >= 2) {
                        for &p in &last[c] {
                            follow[p.index()].extend_from_slice(&first[c]);
                        }
                    }
                    first[id] = first[c].clone();
                    last[id] = last[c].clone();
                    nullable[id] = min == 0 || nullable[c];
                }
            }
        }

        for f in &mut follow {
            f.sort_unstable();
            f.dedup();
        }

        let symbols = (0..m)
            .map(|i| tree.symbol_at(PosId::from_index(i)))
            .collect();

        GlushkovAutomaton {
            follow,
            symbols,
            nullable: {
                // e = (# e′) $ — nullability of e′ is nullability of the
                // right child of the inner concatenation.
                let inner = tree.lchild(tree.root()).unwrap();
                let expr = tree.rchild(inner).unwrap();
                nullable[expr.index()]
            },
        }
    }

    /// Number of positions (states minus nothing — `#` is the initial state
    /// and `$` the accepting sink).
    #[inline]
    pub fn num_positions(&self) -> usize {
        self.follow.len()
    }

    /// The phantom initial position `#`.
    #[inline]
    pub fn begin(&self) -> PosId {
        PosId::from_index(0)
    }

    /// The phantom end position `$`.
    #[inline]
    pub fn end(&self) -> PosId {
        PosId::from_index(self.follow.len() - 1)
    }

    /// The positions following `p`, sorted.
    #[inline]
    pub fn follow(&self, p: PosId) -> &[PosId] {
        &self.follow[p.index()]
    }

    /// The symbol labelling position `p` (`None` for `#` and `$`).
    #[inline]
    pub fn symbol(&self, p: PosId) -> Option<Symbol> {
        self.symbols[p.index()]
    }

    /// Whether `ε ∈ L(e′)`.
    #[inline]
    pub fn nullable(&self) -> bool {
        self.nullable
    }

    /// Whether position `p` can end a word, i.e. `$ ∈ Follow(p)`.
    #[inline]
    pub fn can_end(&self, p: PosId) -> bool {
        self.follow[p.index()].binary_search(&self.end()).is_ok()
    }

    /// Total number of transitions of the automaton — `Θ(σ|e|)` in the worst
    /// case; reported by the preprocessing-cost experiment (E8).
    pub fn num_transitions(&self) -> usize {
        self.follow.iter().map(Vec::len).sum()
    }

    /// The position labeled `symbol` that follows `p`, if any; reports a
    /// determinism violation as an error when several such positions exist.
    pub fn successor(
        &self,
        p: PosId,
        symbol: Symbol,
    ) -> Result<Option<PosId>, NonDeterminismWitness> {
        let mut found: Option<PosId> = None;
        for &q in &self.follow[p.index()] {
            if self.symbols[q.index()] == Some(symbol) {
                if let Some(prev) = found {
                    return Err(NonDeterminismWitness {
                        predecessor: p,
                        first: prev,
                        second: q,
                        symbol,
                    });
                }
                found = Some(q);
            }
        }
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn automaton(input: &str) -> (GlushkovAutomaton, redet_syntax::Alphabet) {
        let (e, sigma) = parse(input).unwrap();
        (GlushkovAutomaton::build(&e), sigma)
    }

    #[test]
    fn example_2_1_follow_sets() {
        // e1 = (ab + b(b?)a)*, Follow(p3) = {p4, p5}.
        let (g, _) = automaton("(a b + b (b?) a)*");
        let p = PosId::from_index;
        let non_end: Vec<_> = g
            .follow(p(3))
            .iter()
            .copied()
            .filter(|q| *q != g.end())
            .collect();
        assert_eq!(non_end, vec![p(4), p(5)]);
        // e2 = (a*ba + bb)*, Follow(q3) = {q1, q2, q4}.
        let (g2, _) = automaton("(a* b a + b b)*");
        let non_end: Vec<_> = g2
            .follow(p(3))
            .iter()
            .copied()
            .filter(|q| *q != g2.end())
            .collect();
        assert_eq!(non_end, vec![p(1), p(2), p(4)]);
    }

    #[test]
    fn follow_agrees_with_tree_analysis() {
        use redet_tree::TreeAnalysis;
        for input in [
            "(a b + b b? a)*",
            "(a* b a + b b)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(a0 + a1 + a2 + a3)*",
            "a? b? c? d?",
            "((a + b)* c)* d",
            "(x (a b)* y)*",
            "(a b){2,3} c",
        ] {
            let (e, _) = parse(input).unwrap();
            let analysis = TreeAnalysis::build(&e);
            let g = GlushkovAutomaton::build(&e);
            let m = g.num_positions();
            for p in 0..m {
                for q in 0..m {
                    let (p, q) = (PosId::from_index(p), PosId::from_index(q));
                    assert_eq!(
                        g.follow(p).binary_search(&q).is_ok(),
                        analysis.check_if_follow(p, q),
                        "{input}: follow({p:?},{q:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_content_is_quadratic() {
        // (a0 + … + a(m-1))*: every position follows every position, hence
        // Θ(m²) transitions — the blow-up motivating the paper.
        let m = 20;
        let expr = format!(
            "({})*",
            (0..m)
                .map(|i| format!("a{i}"))
                .collect::<Vec<_>>()
                .join(" + ")
        );
        let (g, _) = automaton(&expr);
        // m symbol positions each followed by m positions plus $, plus the
        // # row with m + 1 entries.
        assert!(g.num_transitions() >= m * m);
    }

    #[test]
    fn successor_detects_conflicts() {
        let (g, sigma) = automaton("(a* b a + b b)*");
        let b = sigma.lookup("b").unwrap();
        // From # both b-positions are reachable: non-deterministic.
        assert!(g.successor(g.begin(), b).is_err());
        let a = sigma.lookup("a").unwrap();
        assert!(g.successor(g.begin(), a).is_ok());
    }

    #[test]
    fn nullability_and_acceptance() {
        let (g, _) = automaton("(a b)*");
        assert!(g.nullable());
        assert!(g.can_end(PosId::from_index(2)));
        assert!(!g.can_end(PosId::from_index(1)));
        let (g, _) = automaton("a b");
        assert!(!g.nullable());
    }
}
