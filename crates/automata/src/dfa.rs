//! Matching with the determinized Glushkov automaton (the baseline matcher).
//!
//! For a deterministic expression the Glushkov automaton *is* a DFA (partial:
//! missing transitions mean rejection). After materializing, for every
//! position, a per-symbol transition table, matching takes `O(1)` expected
//! time per input symbol. The cost is the `O(σ|e|)` preprocessing — the
//! trade-off studied by experiment E8 and avoided by the matchers of
//! `redet-core`.

use crate::determinism::{glushkov_determinism, NonDeterminismWitness};
use crate::glushkov::GlushkovAutomaton;
use crate::matcher::PosStepper;
use redet_syntax::{Regex, Symbol};
use redet_tree::{ParseTree, PosId};
use std::collections::HashMap;

/// The baseline matcher: explicit per-state transition tables of the
/// Glushkov automaton of a deterministic expression.
#[derive(Clone, Debug)]
pub struct GlushkovDfaMatcher {
    /// `transitions[p][a]` — the unique `a`-labeled position following `p`.
    transitions: Vec<HashMap<Symbol, PosId>>,
    /// Whether position `p` can end a word (`$ ∈ Follow(p)`).
    accepting: Vec<bool>,
}

impl GlushkovDfaMatcher {
    /// Builds the matcher for `regex`.
    ///
    /// Returns the non-determinism witness if the expression is not
    /// deterministic (the DFA view would be ambiguous).
    pub fn build(regex: &Regex) -> Result<Self, NonDeterminismWitness> {
        Self::from_automaton(&GlushkovAutomaton::build(regex))
    }

    /// Builds the matcher from an already-built parse tree (e.g. the one
    /// owned by a shared `TreeAnalysis`), skipping the redundant parse-tree
    /// construction.
    pub fn from_tree(tree: &ParseTree) -> Result<Self, NonDeterminismWitness> {
        Self::from_automaton(&GlushkovAutomaton::from_tree(tree))
    }

    /// Builds the matcher from an existing Glushkov automaton.
    pub fn from_automaton(automaton: &GlushkovAutomaton) -> Result<Self, NonDeterminismWitness> {
        glushkov_determinism(automaton)?;
        let m = automaton.num_positions();
        let mut transitions = Vec::with_capacity(m);
        let mut accepting = Vec::with_capacity(m);
        for p in 0..m {
            let p = PosId::from_index(p);
            let mut row = HashMap::new();
            for &q in automaton.follow(p) {
                if let Some(sym) = automaton.symbol(q) {
                    row.insert(sym, q);
                }
            }
            transitions.push(row);
            accepting.push(automaton.can_end(p));
        }
        Ok(GlushkovDfaMatcher {
            transitions,
            accepting,
        })
    }

    /// Number of materialized transitions (`Θ(σ|e|)` worst case).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(HashMap::len).sum()
    }
}

impl PosStepper for GlushkovDfaMatcher {
    #[inline]
    fn begin(&self) -> PosId {
        PosId::from_index(0)
    }

    #[inline]
    fn advance(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        self.transitions[p.index()].get(&symbol).copied()
    }

    #[inline]
    fn can_end(&self, p: PosId) -> bool {
        self.accepting[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use redet_syntax::parse_with_alphabet;
    use redet_syntax::Alphabet;

    fn matcher(input: &str, sigma: &mut Alphabet) -> GlushkovDfaMatcher {
        let e = parse_with_alphabet(input, sigma).unwrap();
        GlushkovDfaMatcher::build(&e).unwrap()
    }

    fn word(sigma: &mut Alphabet, text: &str) -> Vec<Symbol> {
        text.split_whitespace().map(|t| sigma.intern(t)).collect()
    }

    #[test]
    fn example_2_1_language() {
        let mut sigma = Alphabet::new();
        let m = matcher("(a b + b (b?) a)*", &mut sigma);
        for accept in [
            "",
            "a b",
            "b a",
            "b b a",
            "a b b a",
            "b a a b",
            "a b a b b b a a b",
        ] {
            assert!(m.matches(&word(&mut sigma, accept)), "{accept:?}");
        }
        for reject in ["a", "b", "a a", "b b", "a b b", "b b b a", "a b a"] {
            assert!(!m.matches(&word(&mut sigma, reject)), "{reject:?}");
        }
    }

    #[test]
    fn figure1_language() {
        let mut sigma = Alphabet::new();
        let m = matcher("(c?((a b*)(a? c)))*(b a)", &mut sigma);
        for accept in [
            "b a",
            "a c b a",
            "c a c b a",
            "a b b b a c b a",
            "c a b c a b b a c b a",
        ] {
            assert!(m.matches(&word(&mut sigma, accept)), "{accept:?}");
        }
        for reject in ["", "a", "c b a c", "a c a", "b a b a"] {
            assert!(!m.matches(&word(&mut sigma, reject)), "{reject:?}");
        }
    }

    #[test]
    fn dtd_content_model() {
        let mut sigma = Alphabet::new();
        let m = matcher("(title (author author*)) (year + date)?", &mut sigma);
        assert!(m.matches(&word(&mut sigma, "title author")));
        assert!(m.matches(&word(&mut sigma, "title author author year")));
        assert!(m.matches(&word(&mut sigma, "title author date")));
        assert!(!m.matches(&word(&mut sigma, "title year")));
        assert!(!m.matches(&word(&mut sigma, "author title")));
        assert!(!m.matches(&word(&mut sigma, "title author year date")));
    }

    #[test]
    fn rejects_nondeterministic_expressions() {
        let (e, _) = redet_syntax::parse("(a* b a + b b)*").unwrap();
        assert!(GlushkovDfaMatcher::build(&e).is_err());
    }

    #[test]
    fn unknown_symbols_are_rejected() {
        let mut sigma = Alphabet::new();
        let m = matcher("a b", &mut sigma);
        let unknown = sigma.intern("zzz");
        assert!(!m.matches(&[unknown]));
    }

    #[test]
    fn streaming_interface() {
        use crate::matcher::{Session, Step};
        let mut sigma = Alphabet::new();
        let m = matcher("a (b c)*", &mut sigma);
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        let c = sigma.intern("c");
        let mut s = m.session();
        assert!(!s.accepts());
        assert_eq!(s.feed(a), Step::Advanced);
        assert!(s.accepts());
        assert_eq!(s.feed(b), Step::Advanced);
        assert!(!s.accepts());
        assert_eq!(s.feed(c), Step::Advanced);
        assert!(s.accepts());
        // A second `c` has no continuation: the witness names event 3.
        let step = s.feed(c);
        assert_eq!(step.witness().map(|w| (w.event, w.symbol)), Some((3, c)));
        assert!(!s.accepts());
    }
}
