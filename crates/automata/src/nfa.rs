//! Set-of-positions simulation of the Glushkov automaton.
//!
//! For arbitrary (possibly nondeterministic) expressions the classical way
//! to match is to maintain the set of positions reachable after the prefix
//! read so far. Each step costs up to `O(|e|·k)` where `k` bounds the number
//! of simultaneously active positions (Section 4.2 notes the `O(k²|w|)`
//! bound for nondeterministic k-occurrence expressions). This is the
//! testing oracle for every matcher in the workspace, because it implements
//! the language definition directly without any determinism assumption.

use crate::glushkov::GlushkovAutomaton;
use crate::matcher::Matcher;
use redet_syntax::{Regex, Symbol};
use redet_tree::PosId;

/// Matcher simulating the (possibly nondeterministic) Glushkov automaton
/// with sets of positions.
#[derive(Clone, Debug)]
pub struct NfaSimulationMatcher {
    automaton: GlushkovAutomaton,
}

/// Reusable cursor state for [`NfaSimulationMatcher::matches_with`]: the
/// current and next position sets. Create once, reuse across words — the
/// steady-state simulation loop then performs no allocation.
#[derive(Clone, Debug, Default)]
pub struct NfaScratch {
    current: Vec<PosId>,
    next: Vec<PosId>,
}

impl NfaScratch {
    /// Creates an empty scratch (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl NfaSimulationMatcher {
    /// Builds the matcher for `regex`.
    pub fn build(regex: &Regex) -> Self {
        NfaSimulationMatcher {
            automaton: GlushkovAutomaton::build(regex),
        }
    }

    /// Builds the matcher from an existing automaton.
    pub fn from_automaton(automaton: GlushkovAutomaton) -> Self {
        NfaSimulationMatcher { automaton }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &GlushkovAutomaton {
        &self.automaton
    }

    /// Like [`Matcher::matches`], but with caller-owned cursor buffers —
    /// compile-once/match-many loops reuse the scratch and allocate nothing
    /// in steady state.
    pub fn matches_with(&self, word: &[Symbol], scratch: &mut NfaScratch) -> bool {
        scratch.current.clear();
        scratch.current.push(self.automaton.begin());
        for &sym in word {
            scratch.next.clear();
            for &p in &scratch.current {
                for &q in self.automaton.follow(p) {
                    if self.automaton.symbol(q) == Some(sym) {
                        scratch.next.push(q);
                    }
                }
            }
            scratch.next.sort_unstable();
            scratch.next.dedup();
            if scratch.next.is_empty() {
                return false;
            }
            std::mem::swap(&mut scratch.current, &mut scratch.next);
        }
        scratch.current.iter().any(|&p| self.automaton.can_end(p))
    }
}

impl Matcher for NfaSimulationMatcher {
    /// The sorted set of currently active positions.
    type State = Vec<PosId>;

    fn start(&self) -> Vec<PosId> {
        vec![self.automaton.begin()]
    }

    fn step(&self, state: &Vec<PosId>, symbol: Symbol) -> Option<Vec<PosId>> {
        let mut next = Vec::new();
        for &p in state {
            for &q in self.automaton.follow(p) {
                if self.automaton.symbol(q) == Some(symbol) {
                    next.push(q);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        if next.is_empty() {
            None
        } else {
            Some(next)
        }
    }

    fn accepts(&self, state: &Vec<PosId>) -> bool {
        state.iter().any(|&p| self.automaton.can_end(p))
    }

    /// One scratch pair per word instead of one fresh set per symbol.
    fn matches(&self, word: &[Symbol]) -> bool {
        self.matches_with(word, &mut NfaScratch::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::GlushkovDfaMatcher;
    use redet_syntax::{parse_with_alphabet, Alphabet};

    fn word(sigma: &mut Alphabet, text: &str) -> Vec<Symbol> {
        text.split_whitespace().map(|t| sigma.intern(t)).collect()
    }

    #[test]
    fn nondeterministic_expression_language() {
        // e2 = (a*ba + bb)* from Example 2.1 is non-deterministic but its
        // language is perfectly well defined.
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a* b a + b b)*", &mut sigma).unwrap();
        let m = NfaSimulationMatcher::build(&e);
        for accept in [
            "",
            "b a",
            "a b a",
            "a a b a",
            "b b",
            "b b b a",
            "b a b b a a b a",
        ] {
            assert!(m.matches(&word(&mut sigma, accept)), "{accept:?}");
        }
        for reject in ["a", "b", "a b", "b a b", "a a a"] {
            assert!(!m.matches(&word(&mut sigma, reject)), "{reject:?}");
        }
    }

    #[test]
    fn agrees_with_dfa_on_deterministic_expressions() {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a b + b b? a)*", &mut sigma).unwrap();
        let dfa = GlushkovDfaMatcher::build(&e).unwrap();
        let nfa = NfaSimulationMatcher::build(&e);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        // Exhaustively compare on all words up to length 7.
        let alphabet = [a, b];
        let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
        for _ in 0..7 {
            let mut next = Vec::new();
            for w in &words {
                for &s in &alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            for w in &next {
                assert_eq!(dfa.matches(w), nfa.matches(w), "{w:?}");
            }
            words = next;
        }
    }

    #[test]
    fn ambiguous_one_or_more() {
        // a?a?a? … is nondeterministic-free but (a+a) is ambiguous; the set
        // simulation still answers membership correctly.
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a + a a)*", &mut sigma).unwrap();
        let m = NfaSimulationMatcher::build(&e);
        let a = sigma.lookup("a").unwrap();
        for len in 0..10 {
            let w = vec![a; len];
            assert!(m.matches(&w), "a^{len} should match (a + aa)*");
        }
    }
}
