//! Set-of-positions simulation of the Glushkov automaton.
//!
//! For arbitrary (possibly nondeterministic) expressions the classical way
//! to match is to maintain the set of positions reachable after the prefix
//! read so far. Each step costs up to `O(|e|·k)` where `k` bounds the number
//! of simultaneously active positions (Section 4.2 notes the `O(k²|w|)`
//! bound for nondeterministic k-occurrence expressions). This is the
//! testing oracle for every matcher in the workspace, because it implements
//! the language definition directly without any determinism assumption.
//!
//! The simulation exposes the same incremental [`Session`] interface as the
//! deterministic matchers; its sessions keep the current/next position sets
//! in an [`NfaScratch`] that callers recycle across words, so steady-state
//! matching performs no allocation.

use crate::glushkov::GlushkovAutomaton;
use crate::matcher::{Matcher, RejectWitness, Session, Step};
use redet_syntax::{Regex, Symbol};
use redet_tree::PosId;

/// Matcher simulating the (possibly nondeterministic) Glushkov automaton
/// with sets of positions.
#[derive(Clone, Debug)]
pub struct NfaSimulationMatcher {
    automaton: GlushkovAutomaton,
}

/// Reusable buffers for [`NfaSimulationMatcher`] sessions: the current and
/// next position sets. Create it once, recycle it across sessions — the
/// steady-state simulation loop then performs no allocation.
#[derive(Clone, Debug, Default)]
pub struct NfaScratch {
    current: Vec<PosId>,
    next: Vec<PosId>,
}

impl NfaScratch {
    /// Creates an empty scratch (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl NfaSimulationMatcher {
    /// Builds the matcher for `regex`.
    pub fn build(regex: &Regex) -> Self {
        NfaSimulationMatcher {
            automaton: GlushkovAutomaton::build(regex),
        }
    }

    /// Builds the matcher from an existing automaton.
    pub fn from_automaton(automaton: GlushkovAutomaton) -> Self {
        NfaSimulationMatcher { automaton }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &GlushkovAutomaton {
        &self.automaton
    }

    /// Resets `state` to the automaton's start configuration (the phantom
    /// `#` position). Together with [`Self::step`] and
    /// [`Self::state_accepts`] this is the *owned-state* stepping interface:
    /// the caller keeps the position sets (e.g. in a validator frame) and
    /// the matcher is looked up per step — no borrow ties the state to the
    /// matcher, which is what an `Arc`-owning document validator needs.
    pub fn reset(&self, state: &mut NfaScratch) {
        state.current.clear();
        state.next.clear();
        state.current.push(self.automaton.begin());
    }

    /// Advances the owned position set by one symbol. Returns `false` when
    /// no position survives — the word read so far (plus `symbol`) is not a
    /// prefix of any member word, and the state is left unchanged so the
    /// caller decides how to report it.
    #[inline]
    pub fn step(&self, state: &mut NfaScratch, symbol: Symbol) -> bool {
        let automaton = &self.automaton;
        state.next.clear();
        for &p in &state.current {
            for &q in automaton.follow(p) {
                if automaton.symbol(q) == Some(symbol) {
                    state.next.push(q);
                }
            }
        }
        state.next.sort_unstable();
        state.next.dedup();
        if state.next.is_empty() {
            return false;
        }
        std::mem::swap(&mut state.current, &mut state.next);
        true
    }

    /// Whether the owned position set contains an accepting position
    /// (`$ ∈ Follow(p)` for some live `p`).
    #[inline]
    pub fn state_accepts(&self, state: &NfaScratch) -> bool {
        state.current.iter().any(|&p| self.automaton.can_end(p))
    }
}

/// The suspended state of an [`NfaSession`]: the owned position sets plus
/// the event counter and sticky rejection witness, with no borrow of the
/// matcher. Park it per connection and pick the cursor back up later with
/// [`NfaSimulationMatcher::resume`] — the buffers travel with the state, so
/// suspend/resume cycles allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct NfaState {
    scratch: NfaScratch,
    events: usize,
    rejected: Option<RejectWitness>,
}

/// An incremental session over the set-of-positions simulation. Owns its
/// [`NfaScratch`] buffers for the duration of the word; recover them with
/// [`Session::into_scratch`].
#[derive(Debug)]
pub struct NfaSession<'m> {
    matcher: &'m NfaSimulationMatcher,
    scratch: NfaScratch,
    events: usize,
    rejected: Option<RejectWitness>,
}

impl NfaSession<'_> {
    /// Suspends the session into an owned [`NfaState`], dropping the borrow
    /// of the matcher. The state is only meaningful to the matcher that
    /// produced it.
    #[must_use]
    pub fn into_state(self) -> NfaState {
        NfaState {
            scratch: self.scratch,
            events: self.events,
            rejected: self.rejected,
        }
    }
}

impl Session for NfaSession<'_> {
    type Scratch = NfaScratch;

    fn feed(&mut self, symbol: Symbol) -> Step {
        if let Some(w) = self.rejected {
            return Step::Rejected(w);
        }
        if !self.matcher.step(&mut self.scratch, symbol) {
            let w = RejectWitness {
                event: self.events,
                symbol,
            };
            self.rejected = Some(w);
            return Step::Rejected(w);
        }
        self.events += 1;
        Step::Advanced
    }

    fn accepts(&self) -> bool {
        self.rejected.is_none() && self.matcher.state_accepts(&self.scratch)
    }

    fn events(&self) -> usize {
        self.events
    }

    fn rejection(&self) -> Option<RejectWitness> {
        self.rejected
    }

    fn into_scratch(self) -> NfaScratch {
        self.scratch
    }
}

impl NfaSimulationMatcher {
    /// Resumes a session suspended by [`NfaSession::into_state`]. Resuming
    /// a state on a different matcher than the one that produced it is a
    /// logic error: the position sets index the producing matcher's
    /// automaton.
    #[must_use]
    pub fn resume(&self, state: NfaState) -> NfaSession<'_> {
        NfaSession {
            matcher: self,
            scratch: state.scratch,
            events: state.events,
            rejected: state.rejected,
        }
    }
}

impl Matcher for NfaSimulationMatcher {
    type Scratch = NfaScratch;
    type Session<'m> = NfaSession<'m>;

    fn start(&self, mut scratch: NfaScratch) -> NfaSession<'_> {
        self.reset(&mut scratch);
        NfaSession {
            matcher: self,
            scratch,
            events: 0,
            rejected: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::GlushkovDfaMatcher;
    use redet_syntax::{parse_with_alphabet, Alphabet};

    fn word(sigma: &mut Alphabet, text: &str) -> Vec<Symbol> {
        text.split_whitespace().map(|t| sigma.intern(t)).collect()
    }

    #[test]
    fn nondeterministic_expression_language() {
        // e2 = (a*ba + bb)* from Example 2.1 is non-deterministic but its
        // language is perfectly well defined.
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a* b a + b b)*", &mut sigma).unwrap();
        let m = NfaSimulationMatcher::build(&e);
        for accept in [
            "",
            "b a",
            "a b a",
            "a a b a",
            "b b",
            "b b b a",
            "b a b b a a b a",
        ] {
            assert!(m.matches(&word(&mut sigma, accept)), "{accept:?}");
        }
        for reject in ["a", "b", "a b", "b a b", "a a a"] {
            assert!(!m.matches(&word(&mut sigma, reject)), "{reject:?}");
        }
    }

    #[test]
    fn agrees_with_dfa_on_deterministic_expressions() {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a b + b b? a)*", &mut sigma).unwrap();
        let dfa = GlushkovDfaMatcher::build(&e).unwrap();
        let nfa = NfaSimulationMatcher::build(&e);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        // Exhaustively compare on all words up to length 7.
        let alphabet = [a, b];
        let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
        for _ in 0..7 {
            let mut next = Vec::new();
            for w in &words {
                for &s in &alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            for w in &next {
                assert_eq!(dfa.matches(w), nfa.matches(w), "{w:?}");
            }
            words = next;
        }
    }

    #[test]
    fn ambiguous_one_or_more() {
        // a?a?a? … is nondeterministic-free but (a+a) is ambiguous; the set
        // simulation still answers membership correctly.
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a + a a)*", &mut sigma).unwrap();
        let m = NfaSimulationMatcher::build(&e);
        let a = sigma.lookup("a").unwrap();
        for len in 0..10 {
            let w = vec![a; len];
            assert!(m.matches(&w), "a^{len} should match (a + aa)*");
        }
    }

    #[test]
    fn sessions_recycle_the_scratch() {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("(a b)*", &mut sigma).unwrap();
        let m = NfaSimulationMatcher::build(&e);
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        let mut scratch = NfaScratch::new();
        for _ in 0..3 {
            let mut s = m.start(std::mem::take(&mut scratch));
            assert!(s.feed(a).is_advanced());
            assert!(s.feed(b).is_advanced());
            assert!(s.accepts());
            // Rejection is sticky and witnessed at the right event.
            assert_eq!(s.feed(b).witness().map(|w| w.event), Some(2));
            assert_eq!(s.rejection().map(|w| w.symbol), Some(b));
            scratch = s.into_scratch();
        }
    }
}
