//! Expansion of numeric occurrence indicators into plain regular operators.
//!
//! `e{i,j}` denotes `e·e·…·e` repeated between `i` and `j` times. For
//! *language* questions (matching, language sampling) counted expressions
//! can therefore be handled by unrolling:
//!
//! * `e{i,j}` with finite `j` becomes `e … e (e (e (…)?)?)?` — `i` mandatory
//!   copies followed by `j − i` nested optional copies;
//! * `e{i,∞}` becomes `e … e e*` — `i − 1` mandatory copies followed by a
//!   starred copy (`e{1,∞} = e e*`, the usual `+` closure).
//!
//! Note that unrolling is **only** language-preserving; it does *not*
//! preserve determinism in either direction (Section 3.3 discusses
//! `((a^{2..3}+b)^2)^2 b`, which is non-deterministic even though a suitable
//! unrolled expression is deterministic). The counting-aware determinism
//! test lives in `redet-core::counting`; this module exists for the matching
//! baselines and for workload generation.

use redet_syntax::Regex;

/// Rewrites every numeric occurrence indicator in `regex` into concatenation,
/// option and star. The result denotes the same language.
///
/// The size of the result is `O(|regex| · J)` where `J` is the largest finite
/// bound — exponential blow-up in the *binary encoding* of the bounds, which
/// is precisely why the counting determinism test of Section 3.3 works on
/// the un-expanded tree.
pub fn unroll_counting(regex: &Regex) -> Regex {
    match regex {
        Regex::Symbol(s) => Regex::Symbol(*s),
        Regex::Concat(l, r) => unroll_counting(l).then(unroll_counting(r)),
        Regex::Union(l, r) => unroll_counting(l).or(unroll_counting(r)),
        Regex::Optional(inner) => unroll_counting(inner).opt(),
        Regex::Star(inner) => unroll_counting(inner).star(),
        Regex::Repeat(inner, min, max) => {
            let inner = unroll_counting(inner);
            expand_repeat(&inner, *min, *max)
        }
    }
}

fn expand_repeat(inner: &Regex, min: u32, max: Option<u32>) -> Regex {
    match max {
        None => {
            // e{0,∞} = e*, e{i,∞} = e^(i-1) · e* · … actually e^i-1 · (e e*)
            // simplified to e^(i-1) concatenated with e e*? We emit
            // e … e (i-1 copies) followed by e e* only when i ≥ 1.
            if min == 0 {
                inner.clone().star()
            } else {
                let mut expr = inner.clone();
                for _ in 1..min {
                    expr = expr.then(inner.clone());
                }
                expr.then(inner.clone().star())
            }
        }
        Some(max) => {
            debug_assert!(min <= max && max >= 1, "invalid repeat bounds");
            // Optional tail: (e (e (…)?)?)? with max - min copies.
            let optional_copies = max - min;
            let mut tail: Option<Regex> = None;
            for _ in 0..optional_copies {
                tail = Some(match tail {
                    None => inner.clone().opt(),
                    Some(t) => inner.clone().then(t).opt(),
                });
            }
            if min == 0 {
                tail.expect("max ≥ 1 when min = 0")
            } else {
                let mut expr = inner.clone();
                for _ in 1..min {
                    expr = expr.then(inner.clone());
                }
                match tail {
                    None => expr,
                    Some(t) => expr.then(t),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::nfa::NfaSimulationMatcher;
    use redet_syntax::{parse_with_alphabet, Alphabet, Symbol};

    fn all_words(alphabet: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
        let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in alphabet {
                    let mut w2: Vec<Symbol> = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        words
    }

    fn check_same_language(counted: &str, expanded: &str) {
        let mut sigma = Alphabet::new();
        let e1 = parse_with_alphabet(counted, &mut sigma).unwrap();
        let e2 = parse_with_alphabet(expanded, &mut sigma).unwrap();
        let m1 = NfaSimulationMatcher::build(&unroll_counting(&e1));
        let m2 = NfaSimulationMatcher::build(&e2);
        let alphabet: Vec<Symbol> = sigma.symbols().collect();
        for w in all_words(&alphabet, 7) {
            assert_eq!(
                m1.matches(&w),
                m2.matches(&w),
                "{counted} vs {expanded} on {w:?}"
            );
        }
    }

    #[test]
    fn repeat_expansion_preserves_language() {
        check_same_language("a{2,4}", "a a a? a?");
        check_same_language("a{3}", "a a a");
        check_same_language("a{1,}", "a a*");
        check_same_language("a{2,}", "a a a*");
        check_same_language("(a b){2,2}", "a b a b");
        check_same_language("(a b){1,2} c", "a b (a b)? c");
        check_same_language("(a + b){1,3}", "(a + b) ((a + b) (a + b)?)?");
        check_same_language("a{0,2} b", "(a a?)? b");
    }

    #[test]
    fn unrolled_expression_is_counting_free() {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("((a{2,3} + b){2}){2} b", &mut sigma).unwrap();
        let unrolled = unroll_counting(&e);
        assert!(!unrolled.has_counting());
        assert!(e.has_counting());
    }

    #[test]
    fn size_grows_with_bounds() {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet("a{10,20}", &mut sigma).unwrap();
        let unrolled = unroll_counting(&e);
        assert!(unrolled.num_positions() == 20);
    }
}
