//! The quadratic baseline determinism test (Brüggemann-Klein).
//!
//! An expression is deterministic (one-unambiguous) iff its Glushkov
//! automaton is deterministic [Brüggemann-Klein 1993], i.e. no state has two
//! outgoing transitions with the same label leading to different states.
//! Checking this takes time proportional to the number of transitions,
//! `Θ(σ|e|)` in the worst case — this is the baseline the paper's Theorem
//! 3.5 improves to `O(|e|)`.

use crate::glushkov::GlushkovAutomaton;
use redet_syntax::Symbol;
use redet_tree::PosId;

/// Evidence that an expression is **not** deterministic: two distinct
/// positions with the same label that follow a common position.
///
/// In the SGML/DTD reading: after matching a prefix that ends at
/// `predecessor`, a parser seeing `symbol` cannot decide whether to move to
/// `first` or to `second`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonDeterminismWitness {
    /// The position both conflicting positions follow (`#` for conflicts in
    /// the `First` set).
    pub predecessor: PosId,
    /// The first conflicting position (smaller id).
    pub first: PosId,
    /// The second conflicting position (larger id).
    pub second: PosId,
    /// The shared label of the two conflicting positions.
    pub symbol: Symbol,
}

/// Tests determinism by inspecting every `Follow` list of the Glushkov
/// automaton. Returns a witness if the expression is non-deterministic.
///
/// Time: `O(#transitions)` with a per-symbol scratch table, i.e. `O(σ|e|)`
/// worst case — the baseline of experiment E1.
pub fn glushkov_determinism(automaton: &GlushkovAutomaton) -> Result<(), NonDeterminismWitness> {
    // Scratch table indexed by symbol: the position seen with that symbol in
    // the Follow list currently being scanned, together with the scan epoch
    // so the table does not need clearing between positions.
    let sigma = (0..automaton.num_positions())
        .filter_map(|p| automaton.symbol(PosId::from_index(p)))
        .map(|s| s.index() + 1)
        .max()
        .unwrap_or(0);
    let mut seen: Vec<(u32, PosId)> = vec![(u32::MAX, PosId::from_index(0)); sigma];

    for p in 0..automaton.num_positions() {
        let p = PosId::from_index(p);
        let epoch = p.index() as u32;
        for &q in automaton.follow(p) {
            let Some(sym) = automaton.symbol(q) else {
                continue; // the $ marker never conflicts
            };
            let slot = &mut seen[sym.index()];
            if slot.0 == epoch && slot.1 != q {
                let (first, second) = if slot.1 < q { (slot.1, q) } else { (q, slot.1) };
                return Err(NonDeterminismWitness {
                    predecessor: p,
                    first,
                    second,
                    symbol: sym,
                });
            }
            *slot = (epoch, q);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn check(input: &str) -> Result<(), NonDeterminismWitness> {
        let (e, _) = parse(input).unwrap();
        glushkov_determinism(&GlushkovAutomaton::build(&e))
    }

    #[test]
    fn paper_examples() {
        // Example 2.1: e1 deterministic, e2 not.
        assert!(check("(a b + b (b?) a)*").is_ok());
        assert!(check("(a* b a + b b)*").is_err());
        // Introduction: ab*b is ambiguous.
        assert!(check("a b* b").is_err());
        // Figure 1 expression is deterministic.
        assert!(check("(c?((a b*)(a? c)))*(b a)").is_ok());
        // Section 3.2 worked examples.
        assert!(check("(c (b? a?)) a").is_err());
        assert!(check("(c (a? b?)) a").is_err());
        assert!(check("(c (b? a)*) a").is_err());
        assert!(check("(c (b? a)) a").is_ok());
        assert!(check("(a (b? a))*").is_ok());
        assert!(check("(a (b? a?))*").is_err());
    }

    #[test]
    fn mixed_content_is_deterministic() {
        let expr = format!(
            "({})*",
            (0..50)
                .map(|i| format!("a{i}"))
                .collect::<Vec<_>>()
                .join(" + ")
        );
        assert!(check(&expr).is_ok());
        // With a duplicated symbol it becomes non-deterministic.
        let expr = format!(
            "({} + a7)*",
            (0..50)
                .map(|i| format!("a{i}"))
                .collect::<Vec<_>>()
                .join(" + ")
        );
        assert!(check(&expr).is_err());
    }

    #[test]
    fn witness_is_meaningful() {
        let (e, sigma) = parse("a b* b").unwrap();
        let g = GlushkovAutomaton::build(&e);
        let witness = glushkov_determinism(&g).unwrap_err();
        assert_eq!(witness.symbol, sigma.lookup("b").unwrap());
        assert_ne!(witness.first, witness.second);
        assert_eq!(g.symbol(witness.first), Some(witness.symbol));
        assert_eq!(g.symbol(witness.second), Some(witness.symbol));
        // Both really do follow the predecessor.
        assert!(g.follow(witness.predecessor).contains(&witness.first));
        assert!(g.follow(witness.predecessor).contains(&witness.second));
    }

    #[test]
    fn single_occurrence_expressions_are_deterministic() {
        for input in [
            "(title, author+, (year | date)?)",
            "a? b? c? d? e?",
            "(a + b)* (c + d)? e",
            "a (b (c (d e?)?)?)?",
        ] {
            assert!(check(input).is_ok(), "{input}");
        }
    }
}
