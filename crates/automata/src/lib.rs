//! Glushkov-automaton baselines.
//!
//! The paper improves on the classical approach to both problems it studies:
//!
//! * **Determinism testing** — the textbook method builds the Glushkov
//!   (position) automaton of `e` and checks that it is deterministic
//!   [Brüggemann-Klein 1993]; the automaton has `O(σ|e|)` transitions in the
//!   worst case, so the test is quadratic. This crate implements that
//!   baseline faithfully ([`GlushkovAutomaton`], [`glushkov_determinism`]).
//! * **Matching** — once the Glushkov automaton of a *deterministic*
//!   expression is built, matching a word takes constant time per symbol
//!   ([`GlushkovDfaMatcher`]); the preprocessing, however, is `O(σ|e|)`.
//!   For nondeterministic expressions the set-of-positions simulation
//!   ([`NfaSimulationMatcher`]) is the baseline.
//!
//! These are the comparison points for every experiment in `EXPERIMENTS.md`,
//! and the testing oracles for the linear-time algorithms in `redet-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod dfa;
pub mod glushkov;
pub mod matcher;
pub mod nfa;
pub mod unroll;

pub use determinism::{glushkov_determinism, NonDeterminismWitness};
pub use dfa::GlushkovDfaMatcher;
pub use glushkov::GlushkovAutomaton;
pub use matcher::{Matcher, PosSession, PosState, PosStepper, RejectWitness, Session, Step};
pub use nfa::{NfaScratch, NfaSession, NfaSimulationMatcher, NfaState};
pub use unroll::unroll_counting;
