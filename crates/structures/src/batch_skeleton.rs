//! Dynamic LCA-closed skeleta for batch matching (Section 4.4,
//! Theorem 4.12).
//!
//! The star-free batch matcher traverses the expression's positions once, in
//! document order, advancing "parked" words when the traversal reaches a
//! position that follows the position they are parked at. The naive layout —
//! a flat pending list per symbol, re-tested at every later position with
//! that symbol — touches each entry up to `k` times (`k` = occurrences of
//! the symbol). The paper instead keeps the pending entries of each symbol
//! in a *dynamic LCA-closed skeleton* so that every entry is touched `O(1)`
//! times.
//!
//! This module implements that structure as a chain-indexed union of
//! per-symbol group stacks:
//!
//! * The traversal's current leaf determines the **chain** — the root-to-leaf
//!   path of ancestors. Parked entries are grouped by the *lowest chain node
//!   above their own leaf*, which is exactly `LCA(parked, current)`; the
//!   nonempty groups of one symbol are threaded deepest-first along the
//!   chain (a stack). The set of group nodes is the LCA-closure of the
//!   parked leaves with the current traversal point — hence the name.
//! * Moving the traversal to the next leaf pops the chain nodes that are no
//!   longer ancestors; each popped node's groups merge `O(1)` into its
//!   parent's groups (linked-list concatenation), keeping the invariant.
//!   Total chain work over a traversal is `O(|e|)` because the leaf walk is
//!   a DFS: every tree edge is pushed and popped once.
//! * Reaching an `a`-position `p`, the candidate follow witnesses are the
//!   concatenation ancestors `v` of `p` with `p ∈ First(Rchild(v))` — by
//!   Lemma 2.3 a *contiguous* chain segment bounded above by
//!   `parent(pSupFirst(p))`. The `a`-stack is walked from its deepest group
//!   up to that boundary; every group at a candidate `v` is consumed whole:
//!   entries `x` with `pSupLast(x) ≼ Lchild(v)` advance (they satisfy
//!   `checkIfFollow(x, p)`), and the rest are *dropped*, because for every
//!   later position the LCA only moves up, so `Lchild` only rises further
//!   above their `pSupLast` — they can never advance (star-freedom: there is
//!   no iterating node to resurrect them). Either way the entry is touched
//!   exactly once here.
//!
//! Groups parked under a union branch (or a concatenation whose `First` test
//! fails for `p`) are skipped without touching their entries; such skips
//! cost `O(1)` per *group* per position and are the only deviation from the
//! paper's strict per-entry bound (see DESIGN.md). On the 1-ORE/CHARE
//! content models that motivate the theorem they do not occur at all, and
//! the batch bound is the paper's `O(|e| + Σ|wᵢ|)`.
//!
//! The structure is a reusable scratch arena: all state lives in flat `u32`
//! vectors that are recycled across batches, so steady-state matching
//! allocates nothing.

use redet_tree::flat::{FlatTables, NONE};

/// An entry parked in a skeleton: a word sitting at a position, waiting for
/// its next symbol. Entries form singly-linked lists inside [`Group`]s.
#[derive(Clone, Copy, Debug)]
struct Entry {
    /// The position the word is parked at.
    pos: u32,
    /// The caller's word index.
    word: u32,
    /// Next entry in the group, or [`NONE`].
    next: u32,
}

/// A group of entries sharing their symbol and their LCA with the current
/// traversal leaf.
#[derive(Clone, Copy, Debug)]
struct Group {
    /// The symbol the entries wait for.
    symbol: u32,
    /// The chain node the group sits at (`LCA(entry, current leaf)` for all
    /// entries), or [`NONE`] once the group has been consumed.
    node: u32,
    /// Head/tail of the entry list.
    head: u32,
    tail: u32,
    /// Next group at the same chain node (any symbol), or [`NONE`].
    next_at_node: u32,
    /// Next group of the same symbol higher up the chain, or [`NONE`].
    next_up: u32,
}

/// The dynamic LCA-closed skeleta of all symbols, plus the traversal chain.
///
/// Drive it left-to-right over the positions of a star-free expression:
///
/// 1. [`BatchSkeleta::begin`] once per batch;
/// 2. [`BatchSkeleta::park`] the first symbol of every word;
/// 3. for every position `p` (document order): [`BatchSkeleta::process`],
///    then [`BatchSkeleta::park`] the advanced words' next symbols.
#[derive(Clone, Debug, Default)]
pub struct BatchSkeleta {
    groups: Vec<Group>,
    entries: Vec<Entry>,
    /// Per tree node: head of its group list, or [`NONE`].
    node_head: Vec<u32>,
    /// Per symbol: deepest group of the symbol's chain stack, or [`NONE`].
    symbol_top: Vec<u32>,
    /// The current root-to-leaf chain (node ids, root first).
    chain: Vec<u32>,
    /// Scratch for building chain segments.
    path_buf: Vec<u32>,
    /// The leaf of the position most recently passed to
    /// [`BatchSkeleta::begin`]/[`BatchSkeleta::process`].
    cur_leaf: u32,
}

impl BatchSkeleta {
    /// Creates an empty structure (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the structure for a batch over a tree with `num_nodes` nodes
    /// and `num_symbols` symbols, positioning the traversal at `begin_pos`
    /// (the phantom `#`). Reuses all previous allocations.
    pub fn begin(
        &mut self,
        flat: &FlatTables,
        num_nodes: usize,
        num_symbols: usize,
        begin_pos: u32,
    ) {
        self.groups.clear();
        self.entries.clear();
        self.node_head.clear();
        self.node_head.resize(num_nodes, NONE);
        self.symbol_top.clear();
        self.symbol_top.resize(num_symbols, NONE);
        self.chain.clear();
        // Chain = path root → begin leaf.
        let mut n = flat.leaf(begin_pos);
        self.path_buf.clear();
        while n != NONE {
            self.path_buf.push(n);
            n = flat.parent_id(n);
        }
        while let Some(x) = self.path_buf.pop() {
            self.chain.push(x);
        }
        self.cur_leaf = flat.leaf(begin_pos);
    }

    /// Parks `word` at position `pos` (which must be the position whose
    /// leaf the traversal currently sits on), waiting for `symbol`.
    pub fn park(&mut self, symbol: u32, pos: u32, word: u32) {
        let eid = self.entries.len() as u32;
        self.entries.push(Entry {
            pos,
            word,
            next: NONE,
        });
        let top = self.symbol_top[symbol as usize];
        if top != NONE && self.groups[top as usize].node == self.cur_leaf {
            // Extend the existing group at the current leaf.
            let tail = self.groups[top as usize].tail;
            self.entries[tail as usize].next = eid;
            self.groups[top as usize].tail = eid;
            return;
        }
        let gid = self.groups.len() as u32;
        self.groups.push(Group {
            symbol,
            node: self.cur_leaf,
            head: eid,
            tail: eid,
            next_at_node: self.node_head[self.cur_leaf as usize],
            next_up: top,
        });
        self.node_head[self.cur_leaf as usize] = gid;
        self.symbol_top[symbol as usize] = gid;
    }

    /// Moves the traversal to position `pos` (document order, strictly after
    /// the previous one), pops the chain accordingly, and consumes every
    /// group whose node witnesses `checkIfFollow(entry, pos)` for entries
    /// waiting on `symbol`. The advanced words are appended to `advanced`;
    /// entries proven dead (doomed by their `pSupLast`) are dropped.
    pub fn process(&mut self, flat: &FlatTables, pos: u32, symbol: u32, advanced: &mut Vec<u32>) {
        let leaf = flat.leaf(pos);
        debug_assert!(
            leaf > self.cur_leaf,
            "positions must be processed left to right"
        );

        // Pop chain nodes that are not ancestors of the new leaf, merging
        // their groups into their parents.
        while {
            let top = *self.chain.last().expect("chain contains the root");
            !flat.is_ancestor_ids(top, leaf)
        } {
            self.pop_and_merge();
        }
        // Push the path from the old chain top down to the new leaf.
        let anchor = *self.chain.last().expect("chain contains the root");
        self.path_buf.clear();
        let mut n = leaf;
        while n != anchor {
            self.path_buf.push(n);
            n = flat.parent_id(n);
            debug_assert!(n != NONE, "anchor is an ancestor of the leaf");
        }
        while let Some(x) = self.path_buf.pop() {
            self.chain.push(x);
        }
        self.cur_leaf = leaf;

        // Candidate walk: the concatenation ancestors v with
        // p ∈ First(Rchild(v)) lie between parent(pSupFirst(p)) and
        // parent(leaf); in preorder that zone is v ≥ parent(pSupFirst(p)).
        let boundary = flat.psf(pos);
        let zone_lo = flat.parent_id(boundary);
        debug_assert!(zone_lo != NONE, "R1: pSupFirst of a position has a parent");

        let mut prev = NONE;
        let mut g = self.symbol_top[symbol as usize];
        while g != NONE {
            let group = self.groups[g as usize];
            let v = group.node;
            if v < zone_lo {
                // Strictly above the zone: the First test fails here and at
                // every higher group — stop without touching them.
                break;
            }
            let r = flat.concat_rchild(v);
            let candidate = r != NONE && leaf >= r && flat.is_ancestor_ids(boundary, r);
            if candidate {
                // Consume the whole group: v = LCA(entry, pos) for each of
                // its entries, so checkIfFollow reduces to the pSupLast test
                // against Lchild(v) = v + 1.
                let mut e = group.head;
                while e != NONE {
                    let entry = self.entries[e as usize];
                    if flat.is_ancestor_ids(flat.psl(entry.pos), v + 1) {
                        advanced.push(entry.word);
                    }
                    e = entry.next;
                }
                // Unlink from the symbol stack; the node list forgets the
                // group lazily (skipped at pop time via `node == NONE`).
                if prev == NONE {
                    self.symbol_top[symbol as usize] = group.next_up;
                } else {
                    self.groups[prev as usize].next_up = group.next_up;
                }
                self.groups[g as usize].node = NONE;
            } else {
                prev = g;
            }
            g = group.next_up;
        }
    }

    /// Pops the deepest chain node, merging its groups into its parent.
    fn pop_and_merge(&mut self) {
        let v = self
            .chain
            .pop()
            .expect("pop_and_merge needs a non-root top");
        let parent = *self.chain.last().expect("the root is never popped");
        let mut g = self.node_head[v as usize];
        self.node_head[v as usize] = NONE;
        while g != NONE {
            let next_at_node = self.groups[g as usize].next_at_node;
            if self.groups[g as usize].node != NONE {
                let symbol = self.groups[g as usize].symbol;
                let up = self.groups[g as usize].next_up;
                debug_assert_eq!(
                    self.symbol_top[symbol as usize], g,
                    "a group at the deepest chain node is its symbol's stack top"
                );
                if up != NONE && self.groups[up as usize].node == parent {
                    // O(1) list concatenation into the parent's group.
                    let (head, tail) = (self.groups[g as usize].head, self.groups[g as usize].tail);
                    let up_head = self.groups[up as usize].head;
                    self.entries[tail as usize].next = up_head;
                    self.groups[up as usize].head = head;
                    self.symbol_top[symbol as usize] = up;
                } else {
                    // Re-home the group at the parent node.
                    self.groups[g as usize].node = parent;
                    self.groups[g as usize].next_at_node = self.node_head[parent as usize];
                    self.node_head[parent as usize] = g;
                }
            }
            g = next_at_node;
        }
    }

    /// Number of groups created since the last [`BatchSkeleta::begin`]
    /// (diagnostics for tests: bounds the extra group-skip work).
    pub fn groups_created(&self) -> usize {
        self.groups.len()
    }

    /// Number of entries parked since the last [`BatchSkeleta::begin`].
    pub fn entries_parked(&self) -> usize {
        self.entries.len()
    }
}
