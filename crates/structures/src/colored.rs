//! Lowest colored ancestor queries (Section 4.1).
//!
//! The determinism test of Section 3 assigns *colors* (alphabet symbols) to
//! internal nodes of the parse tree: a node gets color `a` when an
//! `a`-labeled position has its `pSupFirst` pointer just below it. The
//! matcher of Theorem 4.2 then needs, for a position `p` and a symbol `a`,
//! the **lowest ancestor of `p` with color `a`**.
//!
//! The paper uses the method-lookup structure of Muthukrishnan & Müller
//! \[23\], which answers such queries in `O(log log |e|)` expected time after
//! linear preprocessing. This implementation exploits the laminar structure
//! of subtree intervals:
//!
//! * per color, the colored nodes are kept sorted by preorder number; the
//!   query first finds the colored node `v` with the largest preorder
//!   `≤ pre(p)` (a predecessor query — binary search or [`VebSet`],
//!   selectable via [`PredecessorBackend`]);
//! * every colored ancestor of `p` is then an ancestor-or-self of `v`, so
//!   the answer is the nearest node on `v`'s same-color ancestor chain whose
//!   subtree interval still contains `p` — found with binary lifting over
//!   precomputed same-color parent pointers.
//!
//! Queries therefore cost `O(log k_a)` (`k_a` = number of `a`-colored
//! nodes), which is `O(log |e|)` worst case; see DESIGN.md for why this
//! substitution does not affect any qualitative claim reproduced in
//! EXPERIMENTS.md.

use crate::veb::VebSet;
use redet_syntax::Symbol;
use redet_tree::{NodeId, ParseTree};

/// Which predecessor structure the per-color search uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PredecessorBackend {
    /// Binary search over a sorted array of preorder numbers.
    #[default]
    BinarySearch,
    /// A van Emde Boas set per color (`O(log log |e|)` predecessor).
    Veb,
}

/// Per-color data: colored nodes sorted by preorder, same-color parent
/// pointers and binary-lifting tables.
#[derive(Clone, Debug)]
struct ColorClass {
    /// Colored nodes of this color, sorted by preorder id.
    nodes: Vec<NodeId>,
    /// `parent[i]` — index (into `nodes`) of the nearest strict ancestor of
    /// `nodes[i]` with the same color, or `u32::MAX`.
    parent: Vec<u32>,
    /// Binary lifting table: `up[k][i]` = 2^k-th same-color ancestor of
    /// `nodes[i]` (`u32::MAX` when it does not exist).
    up: Vec<Vec<u32>>,
    /// Optional vEB set over the preorder numbers of `nodes`.
    veb: Option<VebSet>,
}

/// The lowest-colored-ancestor structure over a [`ParseTree`].
#[derive(Clone, Debug)]
pub struct ColoredAncestors {
    classes: Vec<Option<ColorClass>>,
    backend: PredecessorBackend,
    total_assignments: usize,
}

impl ColoredAncestors {
    /// Builds the structure from a list of `(node, color)` assignments,
    /// using binary-search predecessor queries.
    pub fn build(tree: &ParseTree, assignments: &[(NodeId, Symbol)]) -> Self {
        Self::build_with_backend(tree, assignments, PredecessorBackend::BinarySearch)
    }

    /// Builds the structure with an explicit predecessor backend.
    pub fn build_with_backend(
        tree: &ParseTree,
        assignments: &[(NodeId, Symbol)],
        backend: PredecessorBackend,
    ) -> Self {
        let num_colors = assignments
            .iter()
            .map(|(_, c)| c.index() + 1)
            .max()
            .unwrap_or(0);
        let mut per_color: Vec<Vec<NodeId>> = vec![Vec::new(); num_colors];
        for &(node, color) in assignments {
            per_color[color.index()].push(node);
        }

        let classes = per_color
            .into_iter()
            .map(|mut nodes| {
                if nodes.is_empty() {
                    return None;
                }
                nodes.sort_unstable();
                nodes.dedup();
                Some(ColorClass::build(tree, nodes, backend))
            })
            .collect();

        ColoredAncestors {
            classes,
            backend,
            total_assignments: assignments.len(),
        }
    }

    /// The predecessor backend in use.
    pub fn backend(&self) -> PredecessorBackend {
        self.backend
    }

    /// Total number of color assignments the structure was built from.
    pub fn num_assignments(&self) -> usize {
        self.total_assignments
    }

    /// The lowest ancestor-or-self of `node` carrying `color`, if any.
    pub fn lowest_colored_ancestor(
        &self,
        tree: &ParseTree,
        node: NodeId,
        color: Symbol,
    ) -> Option<NodeId> {
        let class = self.classes.get(color.index())?.as_ref()?;
        class.query(tree, node)
    }

    /// Reference implementation climbing the parent chain; `O(depth)` per
    /// query. Used by tests and available for diagnostics.
    pub fn lowest_colored_ancestor_naive(
        &self,
        tree: &ParseTree,
        node: NodeId,
        color: Symbol,
    ) -> Option<NodeId> {
        let class = self.classes.get(color.index())?.as_ref()?;
        let mut cur = Some(node);
        while let Some(x) = cur {
            if class.nodes.binary_search(&x).is_ok() {
                return Some(x);
            }
            cur = tree.parent(x);
        }
        None
    }
}

impl ColorClass {
    fn build(tree: &ParseTree, nodes: Vec<NodeId>, backend: PredecessorBackend) -> Self {
        let k = nodes.len();
        // Same-color parent pointers via a stack sweep in preorder: the
        // nearest strict ancestor with the same color is the nearest
        // still-open interval on the stack.
        let mut parent = vec![u32::MAX; k];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..k {
            while let Some(&top) = stack.last() {
                if tree.is_strict_ancestor(nodes[top], nodes[i]) {
                    break;
                }
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                parent[i] = top as u32;
            }
            stack.push(i);
        }

        // Binary lifting table over the same-color parent pointers.
        let levels = (usize::BITS - k.leading_zeros()) as usize;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels.max(1));
        up.push(parent.clone());
        for level in 1..levels.max(1) {
            let prev = &up[level - 1];
            let row: Vec<u32> = (0..k)
                .map(|i| {
                    let mid = prev[i];
                    if mid == u32::MAX {
                        u32::MAX
                    } else {
                        prev[mid as usize]
                    }
                })
                .collect();
            up.push(row);
        }

        let veb = match backend {
            PredecessorBackend::BinarySearch => None,
            PredecessorBackend::Veb => {
                let max = nodes.last().map(|n| n.index()).unwrap_or(0);
                let mut set = VebSet::with_capacity(max);
                for n in &nodes {
                    set.insert(n.index() as u32);
                }
                Some(set)
            }
        };

        ColorClass {
            nodes,
            parent,
            up,
            veb,
        }
    }

    /// Index (into `self.nodes`) of the colored node with the largest
    /// preorder `≤ pre(node)`, if any.
    fn predecessor_index(&self, node: NodeId) -> Option<usize> {
        match &self.veb {
            Some(set) => {
                let pre = set.predecessor(node.index() as u32)?;
                Some(
                    self.nodes
                        .binary_search(&NodeId::from_index(pre as usize))
                        .expect("vEB content mirrors the node list"),
                )
            }
            None => {
                let idx = self.nodes.partition_point(|&v| v <= node);
                idx.checked_sub(1)
            }
        }
    }

    fn query(&self, tree: &ParseTree, node: NodeId) -> Option<NodeId> {
        let mut idx = self.predecessor_index(node)?;
        if tree.is_ancestor(self.nodes[idx], node) {
            return Some(self.nodes[idx]);
        }
        // Every colored ancestor of `node` is an ancestor of nodes[idx]:
        // climb its same-color chain to the first interval containing
        // `node`. Containment is monotone along the chain, so binary
        // lifting finds the lowest such ancestor.
        for level in (0..self.up.len()).rev() {
            let next = self.up[level][idx];
            if next != u32::MAX && !tree.is_ancestor(self.nodes[next as usize], node) {
                idx = next as usize;
            }
        }
        let final_parent = self.parent[idx];
        if final_parent == u32::MAX {
            return None;
        }
        let candidate = self.nodes[final_parent as usize];
        tree.is_ancestor(candidate, node).then_some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::{parse, Symbol};
    use redet_tree::ParseTree;

    /// Deterministic pseudo-random coloring of a tree.
    fn random_coloring(tree: &ParseTree, colors: usize, seed: u64) -> Vec<(NodeId, Symbol)> {
        let mut state = seed;
        let mut out = Vec::new();
        for n in tree.node_ids() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Color roughly half the nodes, possibly with several colors.
            for c in 0..colors {
                if (state >> (c * 7)) & 0b11 == 0 {
                    out.push((n, Symbol::from_index(c)));
                }
            }
        }
        out
    }

    fn check_against_naive(input: &str, colors: usize, seed: u64, backend: PredecessorBackend) {
        let (e, _) = parse(input).unwrap();
        let tree = ParseTree::build(&e);
        let assignments = random_coloring(&tree, colors, seed);
        let structure = ColoredAncestors::build_with_backend(&tree, &assignments, backend);
        for n in tree.node_ids() {
            for c in 0..colors {
                let color = Symbol::from_index(c);
                assert_eq!(
                    structure.lowest_colored_ancestor(&tree, n, color),
                    structure.lowest_colored_ancestor_naive(&tree, n, color),
                    "query({n:?}, color {c}) on {input} (seed {seed}, {backend:?})"
                );
            }
        }
    }

    #[test]
    fn agrees_with_naive_climb() {
        for input in [
            "(a b + b b? a)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7)*",
            "a (b (c (d (e (f (g h))))))",
            "((((a b) c) d) e) f g h",
            "a? b? c? d? e? f? g? h?",
        ] {
            for seed in 0..5 {
                check_against_naive(input, 3, seed, PredecessorBackend::BinarySearch);
                check_against_naive(input, 3, seed, PredecessorBackend::Veb);
            }
        }
    }

    #[test]
    fn empty_and_unknown_colors() {
        let (e, _) = parse("a b c").unwrap();
        let tree = ParseTree::build(&e);
        let structure = ColoredAncestors::build(&tree, &[]);
        assert_eq!(
            structure.lowest_colored_ancestor(&tree, tree.root(), Symbol::from_index(0)),
            None
        );
        let structure = ColoredAncestors::build(&tree, &[(tree.root(), Symbol::from_index(1))]);
        assert_eq!(
            structure.lowest_colored_ancestor(&tree, tree.expr_root(), Symbol::from_index(0)),
            None,
            "color with no assignments"
        );
        assert_eq!(
            structure.lowest_colored_ancestor(&tree, tree.expr_root(), Symbol::from_index(7)),
            None,
            "color beyond the table"
        );
    }

    #[test]
    fn self_color_is_found() {
        let (e, _) = parse("(a b) (c d)").unwrap();
        let tree = ParseTree::build(&e);
        let color = Symbol::from_index(0);
        let node = tree.expr_root();
        let structure = ColoredAncestors::build(&tree, &[(node, color)]);
        assert_eq!(
            structure.lowest_colored_ancestor(&tree, node, color),
            Some(node),
            "a colored node is its own lowest colored ancestor"
        );
    }

    #[test]
    fn deep_chain_queries() {
        // A long left-leaning chain exercises the binary lifting.
        let expr = (0..60)
            .map(|i| format!("x{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let (e, _) = parse(&expr).unwrap();
        let tree = ParseTree::build(&e);
        // Color every third node on the root path.
        let mut assignments = Vec::new();
        let color = Symbol::from_index(0);
        let mut cur = Some(tree.expr_root());
        let mut i = 0usize;
        while let Some(n) = cur {
            if i % 3 == 0 {
                assignments.push((n, color));
            }
            cur = tree.lchild(n);
            i += 1;
        }
        let structure = ColoredAncestors::build(&tree, &assignments);
        for n in tree.node_ids() {
            assert_eq!(
                structure.lowest_colored_ancestor(&tree, n, color),
                structure.lowest_colored_ancestor_naive(&tree, n, color),
                "node {n:?}"
            );
        }
    }
}
