//! A van Emde Boas set over a bounded integer universe.
//!
//! The lowest-colored-ancestor structure of Muthukrishnan & Müller (cited as
//! \[23\] in the paper) answers predecessor queries in `O(log log u)` time by
//! recursing on the square root of the universe. [`VebSet`] implements the
//! classical recursive structure: a set of integers from `0..2^bits`
//! supporting `insert`, `remove`, `contains`, `successor` and `predecessor`,
//! all in `O(log bits) = O(log log u)` time.
//!
//! Small universes (≤ 64) bottom out in a single machine word, which keeps
//! the recursion shallow and the constants reasonable.

/// A set of integers from a bounded universe with `O(log log u)` predecessor
/// and successor queries.
///
/// ```
/// use redet_structures::VebSet;
///
/// let mut set = VebSet::with_capacity(1000);
/// set.insert(17);
/// set.insert(4);
/// set.insert(900);
/// assert_eq!(set.predecessor(16), Some(4));
/// assert_eq!(set.predecessor(17), Some(17));
/// assert_eq!(set.strict_successor(17), Some(900));
/// assert_eq!(set.successor(18), Some(900));
/// assert_eq!(set.strict_successor(900), None);
/// ```
#[derive(Clone, Debug)]
pub enum VebSet {
    /// Universe of at most 64 elements: a bitmask.
    Leaf {
        /// Bitmask of present elements.
        bits: u64,
    },
    /// Recursive node splitting the universe into `√u` clusters of `√u`.
    Node {
        /// Number of bits of the lower half (cluster-internal index).
        low_bits: u32,
        /// Minimum element, stored out-of-band (not in any cluster).
        min: Option<u32>,
        /// Maximum element (also present in its cluster, unless equal min).
        max: Option<u32>,
        /// Summary structure over non-empty cluster indices.
        summary: Box<VebSet>,
        /// The clusters; allocated lazily.
        clusters: Vec<Option<Box<VebSet>>>,
    },
}

impl VebSet {
    /// Creates an empty set whose universe is large enough for values
    /// `0..=max_value`.
    pub fn with_capacity(max_value: usize) -> Self {
        let bits = usize::BITS - max_value.leading_zeros();
        Self::with_universe_bits(bits.max(1))
    }

    /// Creates an empty set over the universe `0..2^bits`.
    pub fn with_universe_bits(bits: u32) -> Self {
        if bits <= 6 {
            VebSet::Leaf { bits: 0 }
        } else {
            let low_bits = bits / 2;
            let high_bits = bits - low_bits;
            VebSet::Node {
                low_bits,
                min: None,
                max: None,
                summary: Box::new(VebSet::with_universe_bits(high_bits)),
                clusters: (0..(1usize << high_bits)).map(|_| None).collect(),
            }
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            VebSet::Leaf { bits } => *bits == 0,
            VebSet::Node { min, .. } => min.is_none(),
        }
    }

    /// The smallest element, if any.
    pub fn min(&self) -> Option<u32> {
        match self {
            VebSet::Leaf { bits } => {
                if *bits == 0 {
                    None
                } else {
                    Some(bits.trailing_zeros())
                }
            }
            VebSet::Node { min, .. } => *min,
        }
    }

    /// The largest element, if any.
    pub fn max(&self) -> Option<u32> {
        match self {
            VebSet::Leaf { bits } => {
                if *bits == 0 {
                    None
                } else {
                    Some(63 - bits.leading_zeros())
                }
            }
            VebSet::Node { max, .. } => *max,
        }
    }

    #[inline]
    fn split(&self, x: u32) -> (usize, u32) {
        match self {
            VebSet::Node { low_bits, .. } => ((x >> low_bits) as usize, x & ((1 << low_bits) - 1)),
            VebSet::Leaf { .. } => unreachable!("split on leaf"),
        }
    }

    /// Inserts `x`. Returns whether it was newly inserted.
    pub fn insert(&mut self, x: u32) -> bool {
        match self {
            VebSet::Leaf { bits } => {
                debug_assert!(x < 64, "value outside leaf universe");
                let mask = 1u64 << x;
                let newly = *bits & mask == 0;
                *bits |= mask;
                newly
            }
            VebSet::Node {
                low_bits,
                min,
                max,
                summary,
                clusters,
            } => {
                let mut x = x;
                match min {
                    None => {
                        *min = Some(x);
                        *max = Some(x);
                        return true;
                    }
                    Some(m) if x == *m => return false,
                    Some(m) if x < *m => {
                        // The old minimum moves into the clusters.
                        std::mem::swap(&mut x, m);
                    }
                    _ => {}
                }
                if Some(x) > *max {
                    *max = Some(x);
                }
                let high = (x >> *low_bits) as usize;
                let low = x & ((1u32 << *low_bits) - 1);
                let cluster = clusters[high]
                    .get_or_insert_with(|| Box::new(VebSet::with_universe_bits(*low_bits)));
                if cluster.is_empty() {
                    summary.insert(high as u32);
                }
                cluster.insert(low)
            }
        }
    }

    /// Removes `x`. Returns whether it was present.
    pub fn remove(&mut self, x: u32) -> bool {
        match self {
            VebSet::Leaf { bits } => {
                if x >= 64 {
                    return false;
                }
                let mask = 1u64 << x;
                let present = *bits & mask != 0;
                *bits &= !mask;
                present
            }
            VebSet::Node {
                low_bits,
                min,
                max,
                summary,
                clusters,
            } => {
                let Some(current_min) = *min else {
                    return false;
                };
                let mut x = x;
                let was_min = x == current_min;
                if was_min {
                    // Pull the new minimum out of the clusters.
                    match summary.min() {
                        None => {
                            *min = None;
                            *max = None;
                            return true;
                        }
                        Some(first_cluster) => {
                            let cluster_min = clusters[first_cluster as usize]
                                .as_ref()
                                .and_then(|c| c.min())
                                .expect("summary points at a non-empty cluster");
                            let new_min = (first_cluster << *low_bits) | cluster_min;
                            *min = Some(new_min);
                            x = new_min; // now remove it from its cluster
                        }
                    }
                }
                let high = (x >> *low_bits) as usize;
                let low = x & ((1u32 << *low_bits) - 1);
                let removed = match clusters[high].as_mut() {
                    Some(cluster) => {
                        let r = cluster.remove(low);
                        if cluster.is_empty() {
                            summary.remove(high as u32);
                        }
                        r
                    }
                    None => false,
                };
                if !removed && !was_min {
                    return false;
                }
                // If the element we deleted from the clusters was the
                // maximum, recompute it (when `was_min`, the deleted element
                // is the old minimum, which cannot be the maximum unless the
                // set had a single element — handled above).
                if !was_min && Some(x) == *max {
                    *max = match summary.max() {
                        None => *min,
                        Some(last_cluster) => {
                            let cluster_max = clusters[last_cluster as usize]
                                .as_ref()
                                .and_then(|c| c.max())
                                .expect("summary points at a non-empty cluster");
                            Some((last_cluster << *low_bits) | cluster_max)
                        }
                    };
                }
                true
            }
        }
    }

    /// Whether `x` is in the set.
    pub fn contains(&self, x: u32) -> bool {
        match self {
            VebSet::Leaf { bits } => x < 64 && bits & (1u64 << x) != 0,
            VebSet::Node {
                min, max, clusters, ..
            } => {
                if Some(x) == *min || Some(x) == *max {
                    return true;
                }
                if min.map_or(true, |m| x < m) || max.map_or(true, |m| x > m) {
                    return false;
                }
                let (high, low) = self.split(x);
                clusters[high].as_ref().is_some_and(|c| c.contains(low))
            }
        }
    }

    /// The largest element `≤ x`, if any.
    pub fn predecessor(&self, x: u32) -> Option<u32> {
        if self.contains(x) {
            return Some(x);
        }
        self.strict_predecessor(x)
    }

    /// The largest element `< x`, if any.
    pub fn strict_predecessor(&self, x: u32) -> Option<u32> {
        match self {
            VebSet::Leaf { bits } => {
                if x == 0 {
                    return None;
                }
                let below = if x >= 64 {
                    *bits
                } else {
                    bits & ((1u64 << x) - 1)
                };
                if below == 0 {
                    None
                } else {
                    Some(63 - below.leading_zeros())
                }
            }
            VebSet::Node {
                low_bits,
                min,
                max,
                summary,
                clusters,
            } => {
                let m = (*min)?;
                if x <= m {
                    return None;
                }
                if let Some(mx) = *max {
                    if x > mx {
                        return Some(mx);
                    }
                }
                let (high, low) = self.split(x);
                // Inside x's own cluster?
                if let Some(cluster) = clusters[high].as_ref() {
                    if let Some(cluster_min) = cluster.min() {
                        if low > cluster_min {
                            let p = cluster
                                .strict_predecessor(low)
                                .expect("min < low implies a strict predecessor");
                            return Some(((high as u32) << *low_bits) | p);
                        }
                    }
                }
                // Otherwise the maximum of the previous non-empty cluster.
                match summary.strict_predecessor(high as u32) {
                    Some(prev_cluster) => {
                        let cluster_max = clusters[prev_cluster as usize]
                            .as_ref()
                            .and_then(|c| c.max())
                            .expect("summary points at a non-empty cluster");
                        Some((prev_cluster << *low_bits) | cluster_max)
                    }
                    None => Some(m),
                }
            }
        }
    }

    /// The smallest element `≥ x`, if any.
    pub fn successor(&self, x: u32) -> Option<u32> {
        if self.contains(x) {
            return Some(x);
        }
        self.strict_successor(x)
    }

    /// The smallest element `> x`, if any.
    pub fn strict_successor(&self, x: u32) -> Option<u32> {
        match self {
            VebSet::Leaf { bits } => {
                if x >= 63 {
                    return None;
                }
                let above = bits & !((1u64 << (x + 1)) - 1);
                if above == 0 {
                    None
                } else {
                    Some(above.trailing_zeros())
                }
            }
            VebSet::Node {
                low_bits,
                min,
                max,
                summary,
                clusters,
            } => {
                let m = (*min)?;
                if x < m {
                    return Some(m);
                }
                if let Some(mx) = *max {
                    if x >= mx {
                        return None;
                    }
                }
                let (high, low) = self.split(x);
                if let Some(cluster) = clusters[high].as_ref() {
                    if let Some(cluster_max) = cluster.max() {
                        if low < cluster_max {
                            let s = cluster
                                .strict_successor(low)
                                .expect("max > low implies a strict successor");
                            return Some(((high as u32) << *low_bits) | s);
                        }
                    }
                }
                match summary.strict_successor(high as u32) {
                    Some(next_cluster) => {
                        let cluster_min = clusters[next_cluster as usize]
                            .as_ref()
                            .and_then(|c| c.min())
                            .expect("summary points at a non-empty cluster");
                        Some((next_cluster << *low_bits) | cluster_min)
                    }
                    None => *max,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn reference_ops(universe: u32, seed: u64, steps: usize) {
        let mut veb = VebSet::with_capacity(universe as usize);
        let mut reference: BTreeSet<u32> = BTreeSet::new();
        let mut state = seed;
        for step in 0..steps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 32) as u32) % (universe + 1);
            match state % 3 {
                0 => {
                    assert_eq!(veb.insert(x), reference.insert(x), "insert {x} at {step}");
                }
                1 => {
                    assert_eq!(veb.remove(x), reference.remove(&x), "remove {x} at {step}");
                }
                _ => {}
            }
            assert_eq!(veb.contains(x), reference.contains(&x), "contains {x}");
            assert_eq!(
                veb.predecessor(x),
                reference.range(..=x).next_back().copied(),
                "pred {x} at step {step}"
            );
            assert_eq!(
                veb.strict_predecessor(x),
                reference.range(..x).next_back().copied(),
                "strict pred {x}"
            );
            assert_eq!(
                veb.successor(x),
                reference.range(x..).next().copied(),
                "succ {x}"
            );
            assert_eq!(
                veb.strict_successor(x),
                reference.range(x + 1..).next().copied(),
                "strict succ {x}"
            );
            assert_eq!(veb.min(), reference.iter().next().copied());
            assert_eq!(veb.max(), reference.iter().next_back().copied());
            assert_eq!(veb.is_empty(), reference.is_empty());
        }
    }

    #[test]
    fn small_universe_leaf_only() {
        reference_ops(63, 1, 4000);
        reference_ops(7, 2, 2000);
    }

    #[test]
    fn medium_universe() {
        reference_ops(1000, 3, 6000);
        reference_ops(4095, 4, 6000);
    }

    #[test]
    fn large_sparse_universe() {
        reference_ops(1_000_000, 5, 4000);
    }

    #[test]
    fn empty_set_queries() {
        let set = VebSet::with_capacity(100);
        assert!(set.is_empty());
        assert_eq!(set.min(), None);
        assert_eq!(set.max(), None);
        assert_eq!(set.predecessor(50), None);
        assert_eq!(set.successor(50), None);
        assert!(!set.contains(0));
    }

    #[test]
    fn boundary_values() {
        let mut set = VebSet::with_capacity(255);
        set.insert(0);
        set.insert(255);
        assert!(set.contains(0));
        assert!(set.contains(255));
        assert_eq!(set.predecessor(254), Some(0));
        assert_eq!(set.successor(1), Some(255));
        assert_eq!(set.strict_predecessor(0), None);
        assert_eq!(set.strict_successor(255), None);
        set.remove(0);
        assert_eq!(set.min(), Some(255));
        set.remove(255);
        assert!(set.is_empty());
    }
}
