//! Data-structure substrates used by the linear-time algorithms.
//!
//! The paper relies on three auxiliary data structures besides LCA:
//!
//! * **lazy arrays** (Section 4.3) — associative arrays with constant-time
//!   initialization, assignment, lookup and reset, used to store the `h`
//!   function of the path-decomposition matcher: [`LazyArray`];
//! * **van Emde Boas predecessor structures** (\[23\], via
//!   Muthukrishnan & Müller) — the engine behind `O(log log)` lowest
//!   colored ancestor queries: [`VebSet`];
//! * **lowest colored ancestor** queries (Section 4.1) — given a node
//!   coloring of the parse tree, find the lowest ancestor of a position that
//!   carries a given color: [`ColoredAncestors`].
//!
//! `ColoredAncestors` offers two backends (plain binary search and
//! vEB-assisted predecessor search); see `DESIGN.md` for the complexity
//! discussion of this substitution.
//!
//! On top of these, [`BatchSkeleta`] implements the paper's **dynamic
//! LCA-closed skeleta** (Section 4.4): the per-symbol pending structures
//! that let the star-free batch matcher touch every parked word `O(1)`
//! times, reaching the `O(|e| + Σ|wᵢ|)` bound of Theorem 4.12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch_skeleton;
pub mod colored;
pub mod lazy_array;
pub mod veb;

pub use batch_skeleton::BatchSkeleta;
pub use colored::{ColoredAncestors, PredecessorBackend};
pub use lazy_array::LazyArray;
pub use veb::VebSet;
