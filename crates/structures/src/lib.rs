//! Data-structure substrates used by the linear-time algorithms.
//!
//! The paper relies on three auxiliary data structures besides LCA:
//!
//! * **lazy arrays** (Section 4.3) — associative arrays with constant-time
//!   initialization, assignment, lookup and reset, used to store the `h`
//!   function of the path-decomposition matcher: [`LazyArray`];
//! * **van Emde Boas predecessor structures** ([23], via
//!   Muthukrishnan & Müller) — the engine behind `O(log log)` lowest
//!   colored ancestor queries: [`VebSet`];
//! * **lowest colored ancestor** queries (Section 4.1) — given a node
//!   coloring of the parse tree, find the lowest ancestor of a position that
//!   carries a given color: [`ColoredAncestors`].
//!
//! `ColoredAncestors` offers two backends (plain binary search and
//! vEB-assisted predecessor search); see `DESIGN.md` for the complexity
//! discussion of this substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colored;
pub mod lazy_array;
pub mod veb;

pub use colored::{ColoredAncestors, PredecessorBackend};
pub use lazy_array::LazyArray;
pub use veb::VebSet;
