//! Lazy arrays: associative arrays with O(1) reset (Section 4.3).
//!
//! The paper describes the folklore data structure providing constant-time
//! initialization, assignment and lookup over a key universe `{0, …, N−1}`:
//! a value array `A`, a counter `C` of active keys, and two arrays `B` and
//! `F` which together certify whether a key has been assigned since the last
//! reset (`k` is active iff `1 ≤ B[k] ≤ C` and `F[B[k]] = k`).
//!
//! The trick in the original formulation is that `A`, `B`, `F` may be left
//! *uninitialized*, making initialization O(1). Safe Rust has no
//! uninitialized reads, so this implementation pays a one-time `O(N)`
//! allocation cost at construction (the paper itself notes that in practice
//! hash maps are a perfectly good substitute); the operationally important
//! property — **O(1) `clear`**, unmatched by hash maps — is preserved
//! faithfully, and all other operations are O(1) worst case with no hashing.

/// An associative array over the key universe `0..capacity` with
/// constant-time assignment, lookup and reset.
///
/// ```
/// use redet_structures::LazyArray;
///
/// let mut h: LazyArray<&str> = LazyArray::new(8);
/// h.set(3, "three");
/// assert_eq!(h.get(3), Some(&"three"));
/// assert_eq!(h.get(4), None);
/// h.clear(); // O(1)
/// assert_eq!(h.get(3), None);
/// ```
#[derive(Clone, Debug)]
pub struct LazyArray<T> {
    /// Values (only meaningful for active keys).
    values: Vec<Option<T>>,
    /// `back[k]` — index into `active` claimed by key `k`.
    back: Vec<u32>,
    /// `active[i]` — the key that claims slot `i` (for `i < count`).
    active: Vec<u32>,
    /// Number of active keys since the last reset.
    count: u32,
}

impl<T> LazyArray<T> {
    /// Creates a lazy array over the key universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        LazyArray {
            values: (0..capacity).map(|_| None).collect(),
            back: vec![0; capacity],
            active: vec![0; capacity],
            count: 0,
        }
    }

    /// The size of the key universe.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of keys assigned since the last reset.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no key is currently assigned.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    fn is_active(&self, key: usize) -> bool {
        let b = self.back[key];
        b < self.count && self.active[b as usize] == key as u32
    }

    /// Assigns `value` to `key`.
    ///
    /// # Panics
    /// Panics if `key ≥ capacity`.
    pub fn set(&mut self, key: usize, value: T) {
        if !self.is_active(key) {
            self.back[key] = self.count;
            self.active[self.count as usize] = key as u32;
            self.count += 1;
        }
        self.values[key] = Some(value);
    }

    /// The value assigned to `key` since the last reset, if any.
    #[inline]
    pub fn get(&self, key: usize) -> Option<&T> {
        if key < self.values.len() && self.is_active(key) {
            self.values[key].as_ref()
        } else {
            None
        }
    }

    /// Removes and returns the value assigned to `key`, if any.
    ///
    /// The key keeps its activity slot (the structure is append-only until
    /// the next [`Self::clear`]); a subsequent `get` returns `None`.
    pub fn take(&mut self, key: usize) -> Option<T> {
        if key < self.values.len() && self.is_active(key) {
            self.values[key].take()
        } else {
            None
        }
    }

    /// Forgets all assignments in constant time.
    #[inline]
    pub fn clear(&mut self) {
        self.count = 0;
    }

    /// Iterates over the currently assigned `(key, value)` pairs in
    /// assignment order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.active[..self.count as usize]
            .iter()
            .filter_map(move |&k| self.values[k as usize].as_ref().map(|v| (k as usize, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn basic_set_get() {
        let mut arr = LazyArray::new(10);
        assert_eq!(arr.get(0), None);
        arr.set(0, 42);
        arr.set(9, 7);
        assert_eq!(arr.get(0), Some(&42));
        assert_eq!(arr.get(9), Some(&7));
        assert_eq!(arr.get(5), None);
        assert_eq!(arr.len(), 2);
        arr.set(0, 43);
        assert_eq!(arr.get(0), Some(&43));
        assert_eq!(arr.len(), 2, "re-assignment does not grow the active set");
    }

    #[test]
    fn clear_is_logical_reset() {
        let mut arr = LazyArray::new(4);
        arr.set(1, "x");
        arr.set(2, "y");
        arr.clear();
        assert!(arr.is_empty());
        for k in 0..4 {
            assert_eq!(arr.get(k), None);
        }
        // Stale slots from before the reset must not resurrect values.
        arr.set(3, "z");
        assert_eq!(arr.get(1), None);
        assert_eq!(arr.get(2), None);
        assert_eq!(arr.get(3), Some(&"z"));
    }

    #[test]
    fn take_removes_a_single_key() {
        let mut arr = LazyArray::new(4);
        arr.set(2, 5);
        assert_eq!(arr.take(2), Some(5));
        assert_eq!(arr.get(2), None);
        assert_eq!(arr.take(2), None);
        assert_eq!(arr.take(0), None);
    }

    #[test]
    fn iter_yields_active_entries() {
        let mut arr = LazyArray::new(6);
        arr.set(4, 'a');
        arr.set(1, 'b');
        arr.set(4, 'c');
        let entries: Vec<_> = arr.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(entries, vec![(4, 'c'), (1, 'b')]);
    }

    #[test]
    fn behaves_like_a_hash_map_under_random_ops() {
        // Deterministic pseudo-random mixed workload compared against a
        // HashMap reference, across several resets.
        let mut arr: LazyArray<u64> = LazyArray::new(64);
        let mut reference: HashMap<usize, u64> = HashMap::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for step in 0..10_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 32) as usize % 64;
            match state % 5 {
                0..=2 => {
                    arr.set(key, step);
                    reference.insert(key, step);
                }
                3 => {
                    assert_eq!(arr.take(key), reference.remove(&key));
                }
                _ => {
                    if state % 97 == 0 {
                        arr.clear();
                        reference.clear();
                    }
                }
            }
            assert_eq!(arr.get(key), reference.get(&key), "step {step}");
            assert!(arr.len() >= reference.len());
        }
    }

    #[test]
    #[should_panic]
    fn out_of_universe_key_panics() {
        let mut arr = LazyArray::new(3);
        arr.set(3, 1);
    }
}
