//! Determinism of expressions with numeric occurrence indicators
//! (Section 3.3).
//!
//! XML Schema content models extend regular expressions with counters
//! `e{i,j}`. Determinism is then defined on *positions*: the expression is
//! deterministic if for every word there is at most one position that can
//! be reached after reading it. Counters interact subtly with this notion:
//!
//! * `(ab){2,2} a (b + d)` **is** deterministic — after a `b` the counter
//!   value dictates whether the iteration repeats or exits, so the two
//!   `a`-successors are never simultaneously reachable;
//! * `(ab){1,2} a` is **not** — after `ab` the iteration may or may not
//!   repeat, and both continuations read `a`;
//! * `((a{2,3} + b){2}){2} b` is **not** — the inner *flexible* counter lets
//!   the same word be split into different iteration counts
//!   (Kilpeläinen & Tuhkanen's example, quoted by the paper).
//!
//! Following the paper's sketch, the test hinges on **flexibility**: only
//! flexible iterations can create conflicts between re-entering an
//! iteration and leaving it. Our implementation classifies an iteration as
//! flexible when (a) its bounds allow different counts (`i < j` or
//! unbounded), or (b) its bounds are rigid but its body is nullable or the
//! iteration boundary can "blend" (some `Last` position of the body is
//! followed, *inside* the body, by a `First` position of the body through
//! flexible structure only). Rigid, non-flexible counters are then erased —
//! they never contribute conflicting follow edges — and the ordinary
//! linear-time determinism test of Theorem 3.5 runs on the rewritten
//! expression (which has exactly the same positions). The exact
//! characterization of \[19\] (Theorem 5.5) was not available to this
//! reproduction; DESIGN.md records this approximation, which agrees with
//! every example discussed in the paper and with a brute-force
//! configuration-exploration oracle on the test suite.

use crate::determinism::{check_determinism, NonDeterminism, NonDeterminismKind};
use redet_automata::{glushkov_determinism, GlushkovAutomaton};
use redet_syntax::Regex;
use redet_tree::TreeAnalysis;

/// Decides determinism of a regular expression with numeric occurrence
/// indicators (Section 3.3).
///
/// Counting-free expressions take the ordinary Theorem 3.5 path, so this
/// entry point is safe to use for every expression.
pub fn check_counting_determinism(regex: &Regex) -> Result<(), NonDeterminism> {
    let rewritten = erase_rigid_counters(regex);
    if rewritten.has_counting() {
        // Flexible counters remain: they iterate like `∗` but are not
        // nullable, which violates an invariant the skeleton-based test
        // relies on (in the paper's grammar every iterating node is
        // nullable). For these expressions we fall back to checking the
        // Glushkov automaton of the rewritten expression directly — the
        // `O(σ|e|)` bound of Kilpeläinen [18] rather than the paper's
        // `O(|e|)`; see DESIGN.md for this documented gap.
        let automaton = GlushkovAutomaton::build(&rewritten);
        return glushkov_determinism(&automaton).map_err(|w| NonDeterminism {
            kind: NonDeterminismKind::ConflictingNext,
            symbol: w.symbol,
            first: w.first,
            second: w.second,
        });
    }
    let analysis = TreeAnalysis::build(&rewritten);
    check_determinism(&analysis).map(|_| ())
}

/// Rewrites the expression by removing rigid, non-flexible numeric
/// occurrence indicators (keeping a single copy of the body). The rewritten
/// expression has the same positions in the same order, and its
/// position-based determinism coincides with that of the counted original
/// under the flexibility analysis described in the module documentation.
pub fn erase_rigid_counters(regex: &Regex) -> Regex {
    match regex {
        Regex::Symbol(s) => Regex::Symbol(*s),
        Regex::Concat(l, r) => erase_rigid_counters(l).then(erase_rigid_counters(r)),
        Regex::Union(l, r) => erase_rigid_counters(l).or(erase_rigid_counters(r)),
        Regex::Optional(inner) => erase_rigid_counters(inner).opt(),
        Regex::Star(inner) => erase_rigid_counters(inner).star(),
        Regex::Repeat(inner, min, max) => {
            let body = erase_rigid_counters(inner);
            let rigid = matches!(max, Some(m) if *m == *min);
            if !rigid {
                // Flexible by bounds: the iteration genuinely repeats an
                // indeterminate number of times.
                return Regex::Repeat(Box::new(body), *min, *max);
            }
            if *min <= 1 {
                // {0,0} is rejected by normalization, {1,1} is the identity.
                return body;
            }
            if rigid_body_is_flexible(&body) {
                Regex::Repeat(Box::new(body), *min, *max)
            } else {
                body
            }
        }
    }
}

/// Whether a rigid iteration over `body` still behaves flexibly: the body
/// is nullable (the counter value is not determined by the input), or an
/// iteration boundary can blend (a `Last` position of the body is followed
/// within the body by a `First` position of the body).
fn rigid_body_is_flexible(body: &Regex) -> bool {
    if body.nullable() {
        return true;
    }
    let analysis = TreeAnalysis::build(body);
    let tree = analysis.tree();
    let props = analysis.props();
    let root = tree.expr_root();
    let first = props.first_set(tree, root);
    let last = props.last_set(tree, root);
    last.iter()
        .any(|&p| first.iter().any(|&q| analysis.check_if_follow(p, q)))
}

/// Computes the flexibility verdict for every numeric occurrence indicator
/// in the expression, in preorder of the `{i,j}` nodes. Exposed for
/// diagnostics and experiments.
pub fn flexibility_report(regex: &Regex) -> Vec<bool> {
    let mut out = Vec::new();
    fn go(regex: &Regex, out: &mut Vec<bool>) -> Regex {
        match regex {
            Regex::Symbol(s) => Regex::Symbol(*s),
            Regex::Concat(l, r) => {
                let l = go(l, out);
                let r = go(r, out);
                l.then(r)
            }
            Regex::Union(l, r) => {
                let l = go(l, out);
                let r = go(r, out);
                l.or(r)
            }
            Regex::Optional(inner) => go(inner, out).opt(),
            Regex::Star(inner) => go(inner, out).star(),
            Regex::Repeat(inner, min, max) => {
                let flexible_by_bounds = !matches!(max, Some(m) if *m == *min);
                // Record before recursing so the report is in preorder.
                let slot = out.len();
                out.push(false);
                let body = go(inner, out);
                let flexible = flexible_by_bounds
                    || (*min >= 2 && rigid_body_is_flexible(&erase_rigid_counters(&body)));
                out[slot] = flexible;
                Regex::Repeat(Box::new(body), *min, *max)
            }
        }
    }
    let _ = go(regex, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::{unroll_counting, GlushkovAutomaton};
    use redet_syntax::{parse, Symbol};
    use redet_tree::PosId;
    use std::collections::{BTreeSet, VecDeque};

    /// Brute-force oracle for position-based determinism of counted
    /// expressions: mark every position with a fresh symbol, unroll the
    /// counters (copies share the original position identity), and explore
    /// the subset construction of the resulting Glushkov automaton. The
    /// expression is non-deterministic iff some reachable subset contains
    /// two states carrying different original positions.
    fn brute_force_deterministic(input: &str) -> bool {
        let (e, _) = parse(input).unwrap();
        // Mark positions with fresh symbols 0, 1, 2, …
        let mut counter = 0usize;
        fn mark(e: &Regex, counter: &mut usize) -> Regex {
            match e {
                Regex::Symbol(_) => {
                    let s = Regex::Symbol(Symbol::from_index(*counter));
                    *counter += 1;
                    s
                }
                Regex::Concat(l, r) => mark(l, counter).then(mark(r, counter)),
                Regex::Union(l, r) => mark(l, counter).or(mark(r, counter)),
                Regex::Optional(i) => mark(i, counter).opt(),
                Regex::Star(i) => mark(i, counter).star(),
                Regex::Repeat(i, lo, hi) => mark(i, counter).repeat(*lo, *hi),
            }
        }
        let marked = mark(&e, &mut counter);
        let original_positions = e.positions();
        // The original label of each marked symbol.
        let label_of: Vec<Symbol> = original_positions.clone();

        let unrolled = unroll_counting(&marked);
        let nfa = GlushkovAutomaton::build(&unrolled);

        // Subset exploration over *original* symbols.
        let start: BTreeSet<PosId> = [nfa.begin()].into_iter().collect();
        let mut seen = BTreeSet::new();
        seen.insert(start.clone());
        let mut queue = VecDeque::from([start]);
        let alphabet: BTreeSet<Symbol> = label_of.iter().copied().collect();
        while let Some(subset) = queue.pop_front() {
            // Check: all states (other than # / $) must agree on the
            // original position they represent… per input symbol.
            for &a in &alphabet {
                let mut next = BTreeSet::new();
                let mut reached_positions: BTreeSet<usize> = BTreeSet::new();
                for &s in &subset {
                    for &t in nfa.follow(s) {
                        if let Some(marked_sym) = nfa.symbol(t) {
                            let original_position = marked_sym.index();
                            if label_of[original_position] == a {
                                next.insert(t);
                                reached_positions.insert(original_position);
                            }
                        }
                    }
                }
                if reached_positions.len() > 1 {
                    return false;
                }
                if !next.is_empty() && !seen.contains(&next) {
                    seen.insert(next.clone());
                    queue.push_back(next);
                    if seen.len() > 20_000 {
                        panic!("brute force exploded on {input}");
                    }
                }
            }
        }
        true
    }

    fn linear(input: &str) -> bool {
        let (e, _) = parse(input).unwrap();
        check_counting_determinism(&e).is_ok()
    }

    #[test]
    fn paper_section_3_3_examples() {
        assert!(
            linear("(a b){2,2} a (b + d)"),
            "(ab)^{{2..2}}a(b+d) is deterministic"
        );
        assert!(
            !linear("(a b){1,2} a"),
            "(ab)^{{1..2}}a is not deterministic"
        );
        assert!(!linear("((a{2,3} + b){2}){2} b"), "Kilpeläinen–Tuhkanen e5");
    }

    #[test]
    fn agrees_with_brute_force_oracle() {
        let cases = [
            "(a b){2,2} a (b + d)",
            "(a b){1,2} a",
            "((a{2,3} + b){2}){2} b",
            "((a{2,3} + b){2}){2} d",
            "(a{1,2} b){2} a",
            "(a{2} b){3} a",
            "(a{2,4}) b",
            "a{2,4} a",
            "a{3} a",
            "(a b){5} c",
            "(a? b){2} a",
            "((a b){2} c){2} a",
            "(a{2}){3} b",
            "(a{2,3}){2} b",
            "(a + b){2} (a + c)",
            "(a + b){1,3} c",
            "(a b?){2} b",
            "(a b?){2} a",
            "x (a b){2,2} a (b + d)",
            "(a{2} + b) a",
        ];
        for input in cases {
            assert_eq!(
                linear(input),
                brute_force_deterministic(input),
                "linear counting test disagrees with the oracle on {input}"
            );
        }
    }

    #[test]
    fn counting_free_expressions_take_the_normal_path() {
        assert!(linear("(a b + b (b?) a)*"));
        assert!(!linear("(a* b a + b b)*"));
        assert!(!linear("a b* b"));
    }

    #[test]
    fn flexibility_report_matches_expectations() {
        let (e, _) = parse("((a{2,3} + b){2}){2} b").unwrap();
        // All three counters are flexible: the innermost by bounds, the two
        // rigid ones by blending through it.
        assert_eq!(flexibility_report(&e), vec![true, true, true]);

        let (e, _) = parse("(a{1,2} b){2} a").unwrap();
        // The outer rigid counter is *not* flexible: each iteration ends
        // with the mandatory b.
        assert_eq!(flexibility_report(&e), vec![false, true]);

        let (e, _) = parse("(a b){2,2} c").unwrap();
        assert_eq!(flexibility_report(&e), vec![false]);

        let (e, _) = parse("(a? b?){3} c").unwrap();
        // Nullable body ⇒ flexible despite rigid bounds.
        assert_eq!(flexibility_report(&e), vec![true]);
    }

    #[test]
    fn erasure_preserves_positions() {
        let (e, _) = parse("((a{2,3} + b){2}){2} b (c d){4}").unwrap();
        let rewritten = erase_rigid_counters(&e);
        assert_eq!(e.positions(), rewritten.positions());
    }
}
