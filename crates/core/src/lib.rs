//! Linear-time determinism testing and efficient matching of deterministic
//! regular expressions.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Deterministic Regular Expressions in Linear Time"* (Groz, Maneth,
//! Staworko — PODS 2012):
//!
//! * [`determinism`] — the `O(|e|)` determinism test (Theorem 3.5), built on
//!   per-symbol *skeleta* of the parse tree ([`skeleton`]) and the color /
//!   witness assignment of Section 3.1;
//! * [`counting`] — the extension to numeric occurrence indicators
//!   (Section 3.3);
//! * [`matcher`] — the matching algorithms of Section 4:
//!   lowest-colored-ancestor matching (Theorem 4.2), `k`-occurrence matching
//!   (Theorem 4.3), path-decomposition matching (Theorem 4.10), and
//!   star-free multi-word matching (Theorem 4.12);
//! * [`pipeline`] — the staged compiler (intern + parse → normalize →
//!   analyze → certify) producing the shared [`CompiledAnalysis`] artifact
//!   every matcher is constructed from;
//! * [`DeterministicRegex`] — a thin facade over the pipeline that picks a
//!   matching strategy and validates words;
//! * [`bytescan`] — dependency-free `memchr`-style SWAR byte search, the
//!   bulk-skip primitive behind the streaming byte tokenizer in
//!   `redet-schema`.
//!
//! The Glushkov-automaton baselines these algorithms are measured against
//! live in `redet-automata`; the shared parse-tree machinery (LCA,
//! `checkIfFollow`, `SupFirst`/`SupLast`) lives in `redet-tree`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytescan;
pub mod counting;
pub mod determinism;
pub mod diagnostics;
pub mod facade;
pub mod matcher;
pub mod pipeline;
pub mod skeleton;

pub use counting::{check_counting_determinism, flexibility_report};
pub use determinism::{
    check_determinism, DeterminismCertificate, NonDeterminism, NonDeterminismKind,
};
pub use diagnostics::{Code, ConflictWitness, Diagnostic, DocLocation};
pub use facade::{DeterministicRegex, MatchScratch, MatchSession, MatchState, MatchStrategy};
pub use matcher::colored::ColoredAncestorMatcher;
pub use matcher::kocc::KOccurrenceMatcher;
pub use matcher::pathdecomp::PathDecompositionMatcher;
pub use matcher::starfree::{BatchScratch, StarFreeMatcher};
pub use matcher::{PositionMatcher, TransitionSim};
pub use pipeline::{CompiledAnalysis, Pipeline};
pub use skeleton::{ColorAssignment, Skeleta, Skeleton};
