//! The path-decomposition matcher (Section 4.3, Theorem 4.10).
//!
//! The parse tree is partitioned into vertical paths. A node starts a new
//! path (is *top-most*) when it is the root, a `SupLast` or `SupFirst` node,
//! a nullable right child, or the right child of a union. For every
//! position `p`, `h(top(p), lab(p)) = p` aggregates the "where could a
//! symbol continue" information at the top of the path just left of
//! `pSupFirst(p)` — Lemma 4.5 shows that determinism makes this aggregation
//! collision-free.
//!
//! Transition simulation (`FindNext`, Algorithm 3) climbs from the current
//! position towards its `pSupLast` node following precomputed `nexttop`
//! pointers, testing the `h` entry at every hop with `checkIfFollow`, and
//! finally looks into `First(parent(pSupLast(p)))`. The potential-function
//! argument of Lemma 4.9 bounds the number of hops per input symbol by
//! `O(c_e)` amortized, where `c_e` is the maximal depth of alternating union
//! and concatenation operators (at most 4 in real-world DTDs).

use crate::matcher::TransitionSim;
use redet_syntax::Symbol;
use redet_tree::{NodeId, NodeKind, PosId, TreeAnalysis};
use std::collections::HashMap;
use std::sync::Arc;

/// Error raised while building the path decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathDecompositionError {
    /// Two positions collided in `h`, which by Lemma 4.5 cannot happen for
    /// deterministic expressions.
    Collision {
        /// The first colliding position.
        first: PosId,
        /// The second colliding position.
        second: PosId,
    },
    /// The expression contains numeric occurrence indicators; the path
    /// decomposition invariants (Lemmas 4.5 and 4.7) are stated for the
    /// `∗`-only grammar of Section 2, so counted expressions must be
    /// unrolled first (the facade does this automatically).
    CountingNotSupported,
}

impl std::fmt::Display for PathDecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathDecompositionError::Collision { first, second } => write!(
                f,
                "path decomposition collision between positions {first:?} and {second:?}: the expression is not deterministic"
            ),
            PathDecompositionError::CountingNotSupported => write!(
                f,
                "numeric occurrence indicators must be unrolled before path-decomposition matching"
            ),
        }
    }
}

impl std::error::Error for PathDecompositionError {}

/// Transition simulation via a path decomposition of the parse tree
/// (Theorem 4.10).
#[derive(Clone, Debug)]
pub struct PathDecompositionMatcher {
    analysis: Arc<TreeAnalysis>,
    /// Whether each node is the top-most node of its path.
    is_top: Vec<bool>,
    /// `f[m]` — the `nexttop` value applicable to the children of `m`
    /// (so `nexttop(n) = f[parent(n)]`).
    next_top_of_children: Vec<NodeId>,
    /// `h(top-most node, symbol) → position` (hash-backed, as the paper
    /// recommends for practice).
    h: HashMap<(NodeId, Symbol), PosId>,
    /// The paper's `c_e` for this expression.
    plus_depth: usize,
}

impl PathDecompositionMatcher {
    /// Builds the matcher from the shared pipeline artifact, reusing its
    /// parse-tree analysis.
    pub fn from_compiled(
        compiled: &crate::pipeline::CompiledAnalysis,
    ) -> Result<Self, PathDecompositionError> {
        Self::new(compiled.analysis().clone())
    }

    /// Builds the matcher in `O(|e|)` time.
    pub fn new(analysis: Arc<TreeAnalysis>) -> Result<Self, PathDecompositionError> {
        let tree = analysis.tree();
        let props = analysis.props();
        let n = tree.num_nodes();

        // Counters must be unrolled first, and native `e+` is rejected too:
        // the path/`nexttop`/`h` invariants (Lemmas 4.5–4.9) are proven for
        // the `∗`-only grammar of Section 2, where every iterating node is
        // nullable — a non-nullable iterator breaks the top-most node
        // classification (cross-validation catches real misses). The facade
        // routes `e+` expressions to the k-occurrence or colored-ancestor
        // matchers instead, which handle plus natively.
        if tree
            .node_ids()
            .any(|node| matches!(tree.kind(node), NodeKind::Repeat(_, _)))
        {
            return Err(PathDecompositionError::CountingNotSupported);
        }

        // 1. The path decomposition: top-most nodes.
        let mut is_top = vec![false; n];
        for node in tree.node_ids() {
            let top = match tree.parent(node) {
                None => true,
                Some(parent) => {
                    props.sup_last(node)
                        || props.sup_first(node)
                        || (tree.rchild(parent) == Some(node)
                            && (props.nullable(node) || tree.kind(parent) == NodeKind::Union))
                }
            };
            is_top[node.index()] = top;
        }

        // 2. Path tops and the nexttop pointers, in one top-down sweep.
        //    For every node m we compute
        //      t[m]    — the top of m's path,
        //      flag[m] — whether m's path contains a non-nullable ·-labeled
        //                ancestor-or-self of m (within the path),
        //      fb[m]   — the fallback value f(parent(t[m])),
        //    and derive f[m], the nexttop value for children of m.
        let mut path_top = vec![NodeId::from_index(0); n];
        let mut flag = vec![false; n];
        let mut fallback = vec![NodeId::from_index(0); n];
        let mut f = vec![NodeId::from_index(0); n];
        for node in tree.node_ids() {
            let idx = node.index();
            let non_nullable_concat = tree.kind(node) == NodeKind::Concat && !props.nullable(node);
            match tree.parent(node) {
                None => {
                    path_top[idx] = node;
                    flag[idx] = non_nullable_concat;
                    fallback[idx] = node;
                }
                Some(parent) => {
                    if is_top[idx] {
                        path_top[idx] = node;
                        flag[idx] = non_nullable_concat;
                        fallback[idx] = f[parent.index()];
                    } else {
                        path_top[idx] = path_top[parent.index()];
                        flag[idx] = flag[parent.index()] || non_nullable_concat;
                        fallback[idx] = fallback[parent.index()];
                    }
                }
            }
            let top = path_top[idx];
            let stop_here = tree.parent(top).is_none()
                || props.sup_last(top)
                || props.sup_first(top)
                || flag[idx];
            f[idx] = if stop_here { top } else { fallback[idx] };
        }

        // 3. The aggregated candidate table h(top(p), lab(p)) = p.
        let mut h = HashMap::with_capacity(tree.num_positions());
        for (pos, sym) in tree.symbol_positions() {
            let leaf = tree.pos_node(pos);
            let sup_first = props
                .p_sup_first(leaf)
                .expect("alphabet positions have a pSupFirst node");
            let parent = tree
                .parent(sup_first)
                .expect("pSupFirst nodes have parents");
            let left_sibling = tree
                .lchild(parent)
                .expect("parents of SupFirst nodes are concatenations");
            let top = path_top[left_sibling.index()];
            if let Some(&other) = h.get(&(top, sym)) {
                return Err(PathDecompositionError::Collision {
                    first: other,
                    second: pos,
                });
            }
            h.insert((top, sym), pos);
        }

        let plus_depth = plus_depth_of_tree(&analysis);

        Ok(PathDecompositionMatcher {
            analysis,
            is_top,
            next_top_of_children: f,
            h,
            plus_depth,
        })
    }

    /// `nexttop(n)` — the next aggregation point above `n`.
    fn next_top(&self, n: NodeId) -> Option<NodeId> {
        let parent = self.analysis.tree().parent(n)?;
        Some(self.next_top_of_children[parent.index()])
    }

    /// The paper's `c_e`: the maximal depth of alternating union and
    /// concatenation operators (the amortized per-symbol cost).
    pub fn plus_depth(&self) -> usize {
        self.plus_depth
    }

    /// Number of paths in the decomposition (diagnostics / experiments).
    pub fn num_paths(&self) -> usize {
        self.is_top.iter().filter(|&&t| t).count()
    }

    fn h_follow(&self, node: NodeId, symbol: Symbol, p: PosId) -> Option<PosId> {
        let q = *self.h.get(&(node, symbol))?;
        self.analysis.check_if_follow(p, q).then_some(q)
    }
}

impl TransitionSim for PathDecompositionMatcher {
    fn analysis(&self) -> &TreeAnalysis {
        &self.analysis
    }

    /// `FindNext` (Algorithm 3).
    fn find_next(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        let tree = self.analysis.tree();
        let props = self.analysis.props();
        let leaf = tree.pos_node(p);
        let sup_last = props.p_sup_last(leaf)?;

        // Lines 1–5: climb the jump sequence until pSupLast(p), testing the
        // aggregated candidates along the way.
        let mut x = leaf;
        while x != sup_last {
            if let Some(q) = self.h_follow(x, symbol, p) {
                return Some(q);
            }
            match self.next_top(x) {
                Some(next) if next != x => x = next,
                _ => break, // defensive: reached the root
            }
        }
        // Line 6–7: the candidate at pSupLast(p) itself.
        if let Some(q) = self.h_follow(x, symbol, p) {
            return Some(q);
        }

        // Lines 8–14: look into First(parent(pSupLast(p))).
        let parent_x = tree.parent(x)?;
        let y = props.p_sup_first(parent_x)?;
        let q = if props.nullable(y) {
            self.next_top(y)
                .and_then(|target| self.h.get(&(target, symbol)).copied())
        } else {
            let parent_y = tree.parent(y)?;
            let left_sibling = tree.lchild(parent_y)?;
            self.h.get(&(left_sibling, symbol)).copied()
        };
        q.filter(|&q| self.analysis.check_if_follow(p, q))
    }
}

/// Computes `c_e` directly from the parse tree (alternation depth of unions
/// and concatenations along root-to-leaf paths, unary operators being
/// transparent).
fn plus_depth_of_tree(analysis: &TreeAnalysis) -> usize {
    let tree = analysis.tree();
    // `ctx[n]` — the kind of the nearest binary ancestor-or-self of n
    // (unary operators are transparent); `depth[n]` — number of
    // alternations between · and + blocks on the path from the root to n.
    let mut ctx: Vec<Option<NodeKind>> = vec![None; tree.num_nodes()];
    let mut depth = vec![0usize; tree.num_nodes()];
    let mut best = 0;
    for node in tree.node_ids() {
        let own = tree.kind(node);
        let (parent_ctx, parent_depth) = tree
            .parent(node)
            .map(|p| (ctx[p.index()], depth[p.index()]))
            .unwrap_or((None, 0));
        let (c, d) = match own {
            NodeKind::Union | NodeKind::Concat => {
                if parent_ctx == Some(own) {
                    (Some(own), parent_depth)
                } else {
                    (Some(own), parent_depth + 1)
                }
            }
            _ => (parent_ctx, parent_depth),
        };
        ctx[node.index()] = c;
        depth[node.index()] = d;
        best = best.max(d);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::{assert_agrees_with_baseline, DETERMINISTIC_EXPRESSIONS};
    use crate::matcher::PositionMatcher;
    use redet_automata::Matcher;
    use redet_syntax::parse_with_alphabet;

    fn build(e: &redet_syntax::Regex) -> PathDecompositionMatcher {
        PathDecompositionMatcher::new(Arc::new(TreeAnalysis::build(e))).expect("deterministic")
    }

    #[test]
    fn agrees_with_glushkov_dfa() {
        for input in DETERMINISTIC_EXPRESSIONS {
            let (e, _) = redet_syntax::parse(input).unwrap();
            if e.has_plus() {
                // Native `e+` is outside the `∗`-only grammar the path
                // decomposition is proven for; the matcher rejects it.
                continue;
            }
            assert_agrees_with_baseline(input, 5, |e| PositionMatcher::new(build(e)));
        }
    }

    #[test]
    fn rejects_native_plus() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(a b)+, c", &mut sigma).unwrap();
        assert_eq!(
            PathDecompositionMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap_err(),
            PathDecompositionError::CountingNotSupported
        );
    }

    #[test]
    fn long_words_on_figure1() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(c?((a b*)(a? c)))*(b a)", &mut sigma).unwrap();
        let m = PositionMatcher::new(build(&e));
        let baseline = redet_automata::GlushkovDfaMatcher::build(&e).unwrap();
        let word = |text: &str| -> Vec<Symbol> {
            text.split_whitespace()
                .map(|t| sigma.lookup(t).unwrap())
                .collect()
        };
        for text in [
            "b a",
            "c a c b a",
            "a b b b a c a b c b a",
            "c a b c a b b a c c a c b a",
            "a c a c a c a c a c b a",
            "a b b b b b b b a c b a",
            "c a b b c a c b a b a",
        ] {
            let w = word(text);
            assert_eq!(m.matches(&w), baseline.matches(&w), "{text:?}");
        }
    }

    #[test]
    fn decomposition_statistics() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(a + b)* (c + d)? e", &mut sigma).unwrap();
        let m = build(&e);
        assert!(m.num_paths() >= 1);
        assert!(m.num_paths() <= TreeAnalysis::build(&e).tree().num_nodes());
        assert_eq!(m.plus_depth(), 2);
    }

    #[test]
    fn deep_alternation_still_correct() {
        // c_e grows with nesting; correctness must not depend on it.
        let mut expr = String::from("a0");
        for i in 1..10 {
            expr = format!("(b{i} + {expr} c{i})");
        }
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet(&expr, &mut sigma).unwrap();
        let m = PositionMatcher::new(build(&e));
        let baseline = redet_automata::GlushkovDfaMatcher::build(&e).unwrap();
        // The single accepted "all-nested" word.
        let mut word = Vec::new();
        word.push(sigma.lookup("a0").unwrap());
        for i in 1..10 {
            word.push(sigma.lookup(&format!("c{i}")).unwrap());
        }
        assert!(baseline.matches(&word));
        assert!(m.matches(&word));
        assert_eq!(
            m.matches(&[sigma.lookup("b3").unwrap()]),
            baseline.matches(&[sigma.lookup("b3").unwrap()])
        );
    }
}
