//! The lowest-colored-ancestor matcher (Section 4.1, Theorem 4.2).
//!
//! The linear-time determinism test colors the parent of every `pSupFirst`
//! node with the labels of the positions "starting" there, and stores at
//! most three candidate positions per colored node and color: `Witness`,
//! `FirstPos` and `Next`. By Lemma 3.3, the `a`-labeled position following
//! `p` (if any) is one of the three candidates stored at the **lowest
//! ancestor of `p` with color `a`** — so transition simulation is one
//! lowest-colored-ancestor query plus at most three `checkIfFollow` tests.

use crate::determinism::DeterminismCertificate;
use crate::matcher::TransitionSim;
use redet_structures::{ColoredAncestors, PredecessorBackend};
use redet_syntax::Symbol;
use redet_tree::{PosId, TreeAnalysis};
use std::sync::Arc;

/// Transition simulation via lowest colored ancestor queries (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct ColoredAncestorMatcher {
    analysis: Arc<TreeAnalysis>,
    certificate: Arc<DeterminismCertificate>,
    colored: ColoredAncestors,
}

/// Error raised when the pipeline artifact carries no determinism
/// certificate — counted expressions are certified by the counting test of
/// Section 3.3, which produces no colors/skeleta, so the colored-ancestor
/// matcher cannot be built for them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissingCertificate;

impl std::fmt::Display for MissingCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the compiled expression carries no determinism certificate (counted expressions do not)"
        )
    }
}

impl std::error::Error for MissingCertificate {}

impl ColoredAncestorMatcher {
    /// Builds the matcher from the shared pipeline artifact, reusing its
    /// parse-tree analysis and the certificate computed by the determinism
    /// test — the only additional preprocessing is the colored-ancestor
    /// structure.
    pub fn from_compiled(
        compiled: &crate::pipeline::CompiledAnalysis,
    ) -> Result<Self, MissingCertificate> {
        let certificate = compiled.certificate().ok_or(MissingCertificate)?.clone();
        Ok(Self::new(compiled.analysis().clone(), certificate))
    }

    /// Builds the matcher from the determinism certificate (which already
    /// contains the colors and skeleta — the only additional preprocessing
    /// is the colored-ancestor structure).
    pub fn new(analysis: Arc<TreeAnalysis>, certificate: Arc<DeterminismCertificate>) -> Self {
        Self::with_backend(analysis, certificate, PredecessorBackend::BinarySearch)
    }

    /// Builds the matcher with an explicit predecessor backend for the
    /// colored-ancestor structure.
    pub fn with_backend(
        analysis: Arc<TreeAnalysis>,
        certificate: Arc<DeterminismCertificate>,
        backend: PredecessorBackend,
    ) -> Self {
        let colored = ColoredAncestors::build_with_backend(
            analysis.tree(),
            &certificate.colors().node_colors(),
            backend,
        );
        ColoredAncestorMatcher {
            analysis,
            certificate,
            colored,
        }
    }

    /// The underlying colored-ancestor structure (exposed for experiments).
    pub fn colored_ancestors(&self) -> &ColoredAncestors {
        &self.colored
    }
}

impl TransitionSim for ColoredAncestorMatcher {
    fn analysis(&self) -> &TreeAnalysis {
        &self.analysis
    }

    fn find_next(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        let tree = self.analysis.tree();
        let leaf = tree.pos_node(p);
        // Lemma 3.3: the a-labeled follower is stored at the lowest ancestor
        // of p with color a.
        let node = self.colored.lowest_colored_ancestor(tree, leaf, symbol)?;
        let skeleton = self.certificate.skeleta().get(symbol)?;
        let entry = skeleton.find(node)?;
        [entry.witness, entry.first_pos, entry.next]
            .into_iter()
            .flatten()
            .find(|&q| self.analysis.check_if_follow(p, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinism::check_determinism;
    use crate::matcher::testutil::{assert_agrees_with_baseline, DETERMINISTIC_EXPRESSIONS};
    use crate::matcher::PositionMatcher;
    use redet_syntax::parse_with_alphabet;

    fn build(e: &redet_syntax::Regex, backend: PredecessorBackend) -> ColoredAncestorMatcher {
        let analysis = Arc::new(TreeAnalysis::build(e));
        let certificate = Arc::new(check_determinism(&analysis).expect("deterministic"));
        ColoredAncestorMatcher::with_backend(analysis, certificate, backend)
    }

    #[test]
    fn agrees_with_glushkov_dfa_binary_search() {
        for input in DETERMINISTIC_EXPRESSIONS {
            assert_agrees_with_baseline(input, 5, |e| {
                PositionMatcher::new(build(e, PredecessorBackend::BinarySearch))
            });
        }
    }

    #[test]
    fn agrees_with_glushkov_dfa_veb() {
        for input in DETERMINISTIC_EXPRESSIONS {
            assert_agrees_with_baseline(input, 4, |e| {
                PositionMatcher::new(build(e, PredecessorBackend::Veb))
            });
        }
    }

    #[test]
    fn example_4_1_transition_simulation() {
        // "Consider the expression in Figure 1, position p3, and the symbol
        // c. [...] it is p5 that follows p3. [...] Now, at position p5 we
        // read the next symbol a. [...] This time it is FirstPos(n3, a) = p2
        // that follows p5."
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(c?((a b*)(a? c)))*(b a)", &mut sigma).unwrap();
        let m = build(&e, PredecessorBackend::BinarySearch);
        let c = sigma.lookup("c").unwrap();
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        assert_eq!(
            m.find_next(PosId::from_index(3), c),
            Some(PosId::from_index(5))
        );
        assert_eq!(
            m.find_next(PosId::from_index(5), a),
            Some(PosId::from_index(2))
        );
        // And the final (b a) factor is reachable from p5 as well.
        assert_eq!(
            m.find_next(PosId::from_index(5), b),
            Some(PosId::from_index(6))
        );
        // d is not in the alphabet of e0 at all.
        let d = sigma.intern("d");
        assert_eq!(m.find_next(PosId::from_index(5), d), None);
    }
}
