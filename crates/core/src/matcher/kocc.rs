//! The bounded-occurrence matcher (Section 4.2, Theorem 4.3).
//!
//! If every symbol occurs at most `k` times in the expression, transition
//! simulation only needs to run the constant-time `checkIfFollow` test of
//! Theorem 2.4 against the (at most `k`) candidate positions carrying the
//! input symbol. Matching a word `w` therefore costs `O(k·|w|)` after the
//! `O(|e|)` parse-tree preprocessing — linear for the 1-ORE/CHARE
//! expressions that dominate real-world schemas.
//!
//! The candidate scan is flat-table work end to end: the per-symbol
//! position lists live in the parse tree's CSR index (one offsets array and
//! one positions array — two loads yield the slice), and every candidate is
//! tested with [`redet_tree::FlatTables::follow_ids`], which performs one
//! leaf-pair LCA lookup plus a few interval comparisons over dense preorder
//! arrays. No per-query allocation, hashing or pointer chasing.

use crate::matcher::TransitionSim;
use redet_syntax::Symbol;
use redet_tree::{PosId, TreeAnalysis};
use std::sync::Arc;

/// Transition simulation scanning the per-symbol position lists
/// (Theorem 4.3).
#[derive(Clone, Debug)]
pub struct KOccurrenceMatcher {
    analysis: Arc<TreeAnalysis>,
}

impl KOccurrenceMatcher {
    /// Builds the matcher. Preprocessing is the shared `O(|e|)` parse-tree
    /// analysis — nothing else is materialized.
    pub fn new(analysis: Arc<TreeAnalysis>) -> Self {
        KOccurrenceMatcher { analysis }
    }

    /// Builds the matcher from the shared pipeline artifact, reusing its
    /// parse-tree analysis.
    pub fn from_compiled(compiled: &crate::pipeline::CompiledAnalysis) -> Self {
        Self::new(compiled.analysis().clone())
    }

    /// The maximal number of candidate positions inspected per input symbol
    /// (the `k` of the `O(|e| + k|w|)` bound).
    pub fn max_occurrences(&self) -> usize {
        let tree = self.analysis.tree();
        (0..tree.num_symbols())
            .map(|i| tree.positions_of_symbol(Symbol::from_index(i)).len())
            .max()
            .unwrap_or(0)
    }
}

impl TransitionSim for KOccurrenceMatcher {
    fn analysis(&self) -> &TreeAnalysis {
        &self.analysis
    }

    #[inline]
    fn find_next(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        let flat = self.analysis.flat();
        let pid = p.index() as u32;
        self.analysis
            .tree()
            .positions_of_symbol(symbol)
            .iter()
            .copied()
            .find(|&q| flat.follow_ids(pid, q.index() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::{assert_agrees_with_baseline, DETERMINISTIC_EXPRESSIONS};
    use crate::matcher::PositionMatcher;
    use redet_syntax::parse_with_alphabet;

    #[test]
    fn agrees_with_glushkov_dfa() {
        for input in DETERMINISTIC_EXPRESSIONS {
            assert_agrees_with_baseline(input, 5, |e| {
                PositionMatcher::new(KOccurrenceMatcher::new(Arc::new(TreeAnalysis::build(e))))
            });
        }
    }

    #[test]
    fn reports_k() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(a b + b b? a)*", &mut sigma).unwrap();
        let m = KOccurrenceMatcher::new(Arc::new(TreeAnalysis::build(&e)));
        assert_eq!(m.max_occurrences(), 3);
        let e = parse_with_alphabet("(title, author, year?)", &mut sigma).unwrap();
        let m = KOccurrenceMatcher::new(Arc::new(TreeAnalysis::build(&e)));
        assert_eq!(m.max_occurrences(), 1);
    }

    #[test]
    fn streaming_example_4_1_prefix() {
        // Figure 1 expression; follow the prefix of Example 4.1: from p3
        // reading c goes to p5, then reading a goes to p2.
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(c?((a b*)(a? c)))*(b a)", &mut sigma).unwrap();
        let analysis = Arc::new(TreeAnalysis::build(&e));
        let m = KOccurrenceMatcher::new(analysis);
        let c = sigma.lookup("c").unwrap();
        let a = sigma.lookup("a").unwrap();
        let p3 = PosId::from_index(3);
        let p5 = m.find_next(p3, c).unwrap();
        assert_eq!(p5, PosId::from_index(5));
        let p2 = m.find_next(p5, a).unwrap();
        assert_eq!(p2, PosId::from_index(2));
    }

    #[test]
    fn unknown_symbols_never_follow() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("a b", &mut sigma).unwrap();
        let zzz = sigma.intern("zzz");
        let analysis = Arc::new(TreeAnalysis::build(&e));
        let m = KOccurrenceMatcher::new(analysis.clone());
        assert_eq!(m.find_next(analysis.tree().begin_pos(), zzz), None);
    }
}
