//! The star-free (multi-word) matcher (Section 4.4, Theorem 4.12).
//!
//! In a star-free expression a position can only be followed by positions
//! further to the right in the parse tree (document order), so a single word
//! can be matched by one forward sweep over the positions. The interesting
//! case is matching **many** words `w₁, …, w_N` simultaneously: the paper
//! performs *one* traversal of the expression's positions, maintaining for
//! every symbol `a` the "pending" words that currently sit at some position
//! and expect to read `a` next; when the traversal reaches an `a`-labeled
//! position `p`, exactly the pending entries whose position is followed by
//! `p` advance.
//!
//! The pending entries are kept in the **dynamic LCA-closed skeleta** of
//! [`redet_structures::BatchSkeleta`]: per symbol, the entries are grouped
//! by their LCA with the traversal point, and a group is only ever touched
//! when its node proves or refutes `checkIfFollow` for *all* of its entries
//! at once — each entry is touched `O(1)` times, giving the paper's
//! `O(|e| + Σ|wᵢ|)` bound. The previous flat-list formulation (re-testing
//! every pending entry at each later position with the same label,
//! `O(|e| + k·Σ|wᵢ|)`) is retained as [`StarFreeMatcher::match_words_flat`]
//! — it is the cross-validation reference for the skeleton and the baseline
//! the E7 experiment compares against.
//!
//! Batch matching through [`StarFreeMatcher::match_words_with`] reuses a
//! caller-owned [`BatchScratch`], so compile-once/match-many loops allocate
//! nothing in steady state.

use crate::matcher::TransitionSim;
use redet_structures::BatchSkeleta;
use redet_syntax::Symbol;
use redet_tree::{PosId, TreeAnalysis};
use std::sync::Arc;

/// Error raised when the expression contains a star (or an unbounded
/// numeric repetition), for which the forward-sweep invariants do not hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotStarFree;

impl std::fmt::Display for NotStarFree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the expression contains an iterating operator; the star-free matcher does not apply"
        )
    }
}

impl std::error::Error for NotStarFree {}

/// Reusable scratch state for [`StarFreeMatcher::match_words_with`]: the
/// dynamic skeleta plus per-word cursors. Create it once, reuse it across
/// batches — steady-state batch matching then performs no allocation.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    skeleta: BatchSkeleta,
    /// Per word: index of the next symbol to read.
    cursor: Vec<u32>,
    /// Words advanced at the current position (drained every position).
    advanced: Vec<u32>,
}

impl BatchScratch {
    /// Creates an empty scratch (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Matcher for star-free deterministic expressions (Theorem 4.12), with a
/// batch entry point that matches many words in a single traversal of the
/// expression.
#[derive(Clone, Debug)]
pub struct StarFreeMatcher {
    analysis: Arc<TreeAnalysis>,
}

impl StarFreeMatcher {
    /// Builds the matcher from the shared pipeline artifact, reusing its
    /// parse-tree analysis.
    pub fn from_compiled(
        compiled: &crate::pipeline::CompiledAnalysis,
    ) -> Result<Self, NotStarFree> {
        Self::new(compiled.analysis().clone())
    }

    /// Builds the matcher; fails if the expression contains `∗` or `{i,∞}`.
    pub fn new(analysis: Arc<TreeAnalysis>) -> Result<Self, NotStarFree> {
        let tree = analysis.tree();
        let star_free = tree.node_ids().all(|n| !tree.kind(n).is_iterating());
        if !star_free {
            return Err(NotStarFree);
        }
        Ok(StarFreeMatcher { analysis })
    }

    /// Matches every word of `words` in a single left-to-right traversal of
    /// the expression's positions, allocating fresh scratch state.
    ///
    /// For compile-once/match-many loops prefer
    /// [`StarFreeMatcher::match_words_with`], which reuses the scratch.
    pub fn match_words<W: AsRef<[Symbol]>>(&self, words: &[W]) -> Vec<bool> {
        let mut scratch = BatchScratch::new();
        let mut results = Vec::new();
        self.match_words_with(words, &mut scratch, &mut results);
        results
    }

    /// Matches every word of `words` in one traversal (Theorem 4.12),
    /// reusing `scratch` and writing one result per word into `results`.
    /// After warm-up no allocations are performed.
    pub fn match_words_with<W: AsRef<[Symbol]>>(
        &self,
        words: &[W],
        scratch: &mut BatchScratch,
        results: &mut Vec<bool>,
    ) {
        let tree = self.analysis.tree();
        let flat = self.analysis.flat();
        let num_symbols = tree.num_symbols();
        results.clear();
        results.resize(words.len(), false);
        scratch.cursor.clear();
        scratch.cursor.resize(words.len(), 0);
        scratch
            .skeleta
            .begin(flat, tree.num_nodes(), num_symbols, 0);

        // Initialization: every word starts at the phantom # position p0.
        let expr_nullable = self.analysis.expr_nullable();
        for (i, word) in words.iter().enumerate() {
            match word.as_ref().first() {
                None => results[i] = expr_nullable,
                Some(&sym) if sym.index() < num_symbols => {
                    scratch.skeleta.park(sym.index() as u32, 0, i as u32);
                }
                // Unknown symbols can never be read: the word stays
                // unmatched (results[i] remains false).
                Some(_) => {}
            }
        }

        // One traversal of the expression's alphabet positions in document
        // order; the skeleta hand back exactly the words whose parked
        // position is followed by p.
        for (p, sym) in tree.symbol_positions() {
            let pid = p.index() as u32;
            scratch.advanced.clear();
            scratch
                .skeleta
                .process(flat, pid, sym.index() as u32, &mut scratch.advanced);
            for &w in &scratch.advanced {
                let word = words[w as usize].as_ref();
                scratch.cursor[w as usize] += 1;
                let d = scratch.cursor[w as usize] as usize;
                if d == word.len() {
                    results[w as usize] = flat.can_end(pid);
                } else {
                    let next_sym = word[d];
                    if next_sym.index() < num_symbols {
                        scratch.skeleta.park(next_sym.index() as u32, pid, w);
                    }
                }
            }
        }
    }

    /// The flat-list reference implementation (`O(|e| + k·Σ|wᵢ|)`): each
    /// symbol's pending entries live in a plain vector and are re-tested at
    /// every later position with that label. Kept as the cross-validation
    /// oracle for the skeleton and as the E7 comparison baseline.
    pub fn match_words_flat<W: AsRef<[Symbol]>>(&self, words: &[W]) -> Vec<bool> {
        let tree = self.analysis.tree();
        let num_symbols = tree.num_symbols();
        let mut results = vec![false; words.len()];
        // Per word: the index of the next symbol to read.
        let mut cursor = vec![0usize; words.len()];
        // Per symbol: pending entries (position reached, words parked there).
        let mut pending: Vec<Vec<(PosId, Vec<usize>)>> = vec![Vec::new(); num_symbols];
        // Parks deferred to the end of each bucket scan (the next symbol may
        // be the bucket being scanned).
        let mut parks: Vec<(usize, usize)> = Vec::new();

        // Initialization: every word starts at the phantom # position.
        let begin = tree.begin_pos();
        for (i, word) in words.iter().enumerate() {
            let word = word.as_ref();
            match word.first() {
                None => results[i] = self.analysis.expr_nullable(),
                Some(&sym) => {
                    if sym.index() < num_symbols {
                        park(&mut pending[sym.index()], begin, i);
                    }
                }
            }
        }

        // One traversal of the expression's alphabet positions in document
        // order. Star-freedom guarantees follow-edges only go rightwards.
        // Still-pending entries are compacted in place (no reallocation, no
        // per-step re-push churn).
        for (p, sym) in tree.symbol_positions() {
            let bucket = &mut pending[sym.index()];
            let mut kept = 0usize;
            for idx in 0..bucket.len() {
                let q = bucket[idx].0;
                if !self.analysis.check_if_follow(q, p) {
                    // Not followed by p; the entry stays pending for a later
                    // position with the same label.
                    bucket.swap(kept, idx);
                    kept += 1;
                    continue;
                }
                // The parked words consume `sym` and move to position p.
                for word_index in bucket[idx].1.drain(..) {
                    let word = words[word_index].as_ref();
                    cursor[word_index] += 1;
                    let d = cursor[word_index];
                    if d == word.len() {
                        results[word_index] = self.analysis.can_end_at(p);
                    } else {
                        let next_sym = word[d];
                        if next_sym.index() < num_symbols {
                            parks.push((next_sym.index(), word_index));
                        }
                    }
                }
            }
            bucket.truncate(kept);
            for (s, word_index) in parks.drain(..) {
                park(&mut pending[s], p, word_index);
            }
        }
        results
    }
}

/// Adds `word_index` to the entry of `position` in a bucket, creating the
/// entry if needed (entries are naturally sorted by document order because
/// positions are processed left to right).
fn park(bucket: &mut Vec<(PosId, Vec<usize>)>, position: PosId, word_index: usize) {
    if let Some(last) = bucket.last_mut() {
        if last.0 == position {
            last.1.push(word_index);
            return;
        }
    }
    bucket.push((position, vec![word_index]));
}

impl TransitionSim for StarFreeMatcher {
    fn analysis(&self) -> &TreeAnalysis {
        &self.analysis
    }

    /// Single-word transition simulation: scan forward from `p` (document
    /// order) — in a star-free expression every follower lies to the right,
    /// so over a whole word the scans add up to one pass over the positions.
    fn find_next(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        let tree = self.analysis.tree();
        let m = tree.num_positions();
        ((p.index() + 1)..m)
            .map(PosId::from_index)
            .find(|&q| tree.symbol_at(q) == Some(symbol) && self.analysis.check_if_follow(p, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::{assert_agrees_with_baseline, expression_and_words};
    use crate::matcher::PositionMatcher;
    use redet_automata::{GlushkovDfaMatcher, Matcher};
    use redet_syntax::parse_with_alphabet;

    const STAR_FREE_EXPRESSIONS: &[&str] = &[
        "a",
        "a b",
        "a + b",
        "a? b? c?",
        "(title, author, (year | date)?)",
        "(a + b c) (d + e)",
        "((a + b) + (c + d)) e",
        "a (b (c (d (e f)?)?)?)?",
        "(a b + b (b?) a) c",
        "(a + b) (a + b)",
        "(a?) (b?) (c?) (d?)",
        "(x + y?) (z + w) q?",
    ];

    #[test]
    fn single_word_agrees_with_baseline() {
        for input in STAR_FREE_EXPRESSIONS {
            assert_agrees_with_baseline(input, 5, |e| {
                PositionMatcher::new(
                    StarFreeMatcher::new(Arc::new(TreeAnalysis::build(e))).unwrap(),
                )
            });
        }
    }

    #[test]
    fn multi_word_agrees_with_baseline_and_flat_reference() {
        for input in STAR_FREE_EXPRESSIONS {
            let (e, _, words) = expression_and_words(input, 5);
            let baseline = GlushkovDfaMatcher::build(&e).unwrap();
            let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
            let expected: Vec<bool> = words.iter().map(|w| baseline.matches(w)).collect();
            assert_eq!(matcher.match_words(&words), expected, "{input} (skeleton)");
            assert_eq!(matcher.match_words_flat(&words), expected, "{input} (flat)");
        }
    }

    #[test]
    fn scratch_is_reusable_across_batches() {
        let (e, _, words) = expression_and_words("(a + b c) (d + e)", 4);
        let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
        let mut scratch = BatchScratch::new();
        let mut results = Vec::new();
        let expected = matcher.match_words(&words);
        for _ in 0..3 {
            matcher.match_words_with(&words, &mut scratch, &mut results);
            assert_eq!(results, expected);
        }
        // A different (smaller) batch through the same scratch.
        let half = &words[..words.len() / 2];
        matcher.match_words_with(half, &mut scratch, &mut results);
        assert_eq!(results, expected[..words.len() / 2]);
    }

    #[test]
    fn example_4_11() {
        // e = #(((a + ba)(c?))(d?b))$ with words w1 = bcdb, w2 = acdba,
        // w3 = acb, w4 = bada: only w3 matches.
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("((a + b a)(c?))(d? b)", &mut sigma).unwrap();
        let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
        let word = |text: &str| -> Vec<Symbol> {
            text.chars()
                .map(|c| sigma.lookup(&c.to_string()).unwrap())
                .collect()
        };
        let words = vec![word("bcdb"), word("acdba"), word("acb"), word("bada")];
        assert_eq!(matcher.match_words(&words), vec![false, false, true, false]);
        assert_eq!(
            matcher.match_words_flat(&words),
            vec![false, false, true, false]
        );
    }

    #[test]
    fn rejects_starred_expressions() {
        let mut sigma = redet_syntax::Alphabet::new();
        for input in ["(a b)*", "a{2,} b", "(a + b)* c"] {
            let e = parse_with_alphabet(input, &mut sigma).unwrap();
            assert!(
                StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).is_err(),
                "{input}"
            );
        }
        // Bounded repetitions still iterate (their follow edges go
        // leftwards), so the forward-sweep matcher rejects them as well;
        // the facade unrolls them first.
        let e = parse_with_alphabet("a{2,4} b", &mut sigma).unwrap();
        assert!(StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).is_err());
    }

    #[test]
    fn empty_word_and_empty_batch() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("a? b?", &mut sigma).unwrap();
        let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
        let empty: Vec<Vec<Symbol>> = vec![];
        assert!(matcher.match_words(&empty).is_empty());
        let words = vec![Vec::new(), vec![sigma.lookup("a").unwrap()]];
        assert_eq!(matcher.match_words(&words), vec![true, true]);
    }

    #[test]
    fn unknown_symbols_fail_gracefully() {
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("a b", &mut sigma).unwrap();
        let zzz = sigma.intern("zzz");
        let a = sigma.lookup("a").unwrap();
        let b = sigma.lookup("b").unwrap();
        let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
        assert_eq!(
            matcher.match_words(&[vec![zzz], vec![a, zzz], vec![a, b]]),
            vec![false, false, true]
        );
    }

    #[test]
    fn large_batch_of_words() {
        // Many words against a CHARE-like star-free content model.
        let mut sigma = redet_syntax::Alphabet::new();
        let e = parse_with_alphabet("(a + b) (c + d)? (e + f) g?", &mut sigma).unwrap();
        let matcher = StarFreeMatcher::new(Arc::new(TreeAnalysis::build(&e))).unwrap();
        let baseline = GlushkovDfaMatcher::build(&e).unwrap();
        let alphabet: Vec<Symbol> = sigma.symbols().collect();
        // Deterministic pseudo-random words.
        let mut state = 0xfeedfaceu64;
        let mut words = Vec::new();
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let len = (state >> 60) as usize % 6;
            let mut w = Vec::with_capacity(len);
            for j in 0..len {
                let pick = ((state >> (j * 8)) as usize) % alphabet.len();
                w.push(alphabet[pick]);
            }
            words.push(w);
        }
        let expected: Vec<bool> = words.iter().map(|w| baseline.matches(w)).collect();
        assert_eq!(matcher.match_words(&words), expected);
        assert_eq!(matcher.match_words_flat(&words), expected);
        assert!(expected.iter().any(|&x| x), "some random word should match");
    }
}
