//! The matching algorithms of Section 4.
//!
//! All matchers share the same skeleton: matching is *transition
//! simulation* over positions of the marked expression. The matcher state
//! is the current position (initially the phantom `#`); reading a symbol
//! `a` moves to the unique `a`-labeled position that follows the current
//! one (unique because the expression is deterministic); the word is
//! accepted when the phantom `$` follows the final position. What differs
//! between the algorithms — and what the paper's theorems are about — is
//! how fast `find_next(p, a)` can be answered and how much preprocessing it
//! needs:
//!
//! | matcher | preprocessing | per symbol | theorem |
//! |---------|---------------|------------|---------|
//! | [`kocc::KOccurrenceMatcher`] | `O(\|e\|)` | `O(k)` | 4.3 |
//! | [`pathdecomp::PathDecompositionMatcher`] | `O(\|e\|)` | amortized `O(c_e)` | 4.10 |
//! | [`colored::ColoredAncestorMatcher`] | `O(\|e\|)` | `O(log \|e\|)`¹ | 4.2 |
//! | [`starfree::StarFreeMatcher`] | `O(\|e\|)` | amortized `O(1)`² | 4.12 |
//! | Glushkov DFA (`redet-automata`) | `O(σ\|e\|)` | `O(1)` | baseline |
//!
//! ¹ the paper obtains `O(log log |e|)` with the structure of \[23\]; see
//!   DESIGN.md for the substitution.
//! ² the multi-word entry point matches several words in one traversal of
//!   the expression, holding the pending words in dynamic LCA-closed
//!   skeleta (`redet_structures::BatchSkeleta`) so each is touched `O(1)`
//!   times — the `O(|e| + Σ|wᵢ|)` bound of Theorem 4.12.

pub mod colored;
pub mod kocc;
pub mod pathdecomp;
pub mod starfree;

use redet_automata::PosStepper;
use redet_syntax::Symbol;
use redet_tree::{PosId, TreeAnalysis};

/// A transition-simulation procedure: given the current position and an
/// input symbol, find the unique following position with that label.
pub trait TransitionSim {
    /// The preprocessed parse tree the simulation runs on.
    fn analysis(&self) -> &TreeAnalysis;

    /// The position labeled `symbol` that follows `p`, or `None` if the
    /// symbol cannot be read at this point.
    fn find_next(&self, p: PosId, symbol: Symbol) -> Option<PosId>;
}

/// Adapter turning any [`TransitionSim`] into a streaming
/// [`redet_automata::Matcher`] with incremental sessions (Section 4:
/// "matching a word w against e′ is straightforward: begin with position #,
/// use the transition simulation procedure iteratively, and finally test if
/// the position obtained after processing the last symbol of w is followed
/// by $"). The session state is a single position, so sessions need no
/// scratch and cost nothing to open.
#[derive(Clone, Debug)]
pub struct PositionMatcher<T> {
    sim: T,
}

impl<T: TransitionSim> PositionMatcher<T> {
    /// Wraps a transition simulation.
    pub fn new(sim: T) -> Self {
        PositionMatcher { sim }
    }

    /// The wrapped transition simulation.
    pub fn sim(&self) -> &T {
        &self.sim
    }

    /// Unwraps the transition simulation.
    pub fn into_inner(self) -> T {
        self.sim
    }
}

impl<T: TransitionSim> PosStepper for PositionMatcher<T> {
    #[inline]
    fn begin(&self) -> PosId {
        self.sim.analysis().tree().begin_pos()
    }

    #[inline]
    fn advance(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        self.sim.find_next(p, symbol)
    }

    #[inline]
    fn can_end(&self, p: PosId) -> bool {
        self.sim.analysis().can_end_at(p)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for matcher tests: every matcher is compared against
    //! the Glushkov DFA baseline on the same expressions and words.

    use redet_automata::{GlushkovDfaMatcher, Matcher};
    use redet_syntax::{parse_with_alphabet, Alphabet, Regex, Symbol};

    /// Deterministic expressions exercising all structural features.
    pub const DETERMINISTIC_EXPRESSIONS: &[&str] = &[
        "a",
        "a b",
        "a + b",
        "a? b? c?",
        "(a b)*",
        "(a b + b (b?) a)*",
        "(c?((a b*)(a? c)))*(b a)",
        "(c (b? a)) a",
        "(a (b? a))*",
        "(title, (author author*), (year | date)?)",
        "(a + b)* ",
        "(a0 + a1 + a2 + a3 + a4)*",
        "(a + b c) (d + e)",
        "((a + b) + (c + d)) e",
        "(a (b + c (d + e)))*",
        "x (a? b)* c",
        "((a b)* (c d)*)*",
        "a (b (c (d (e f)?)?)?)?",
        "(a? (b? (c? (d? e?))))*",
        "(a + b (a + b))*",
        "(chapter (section (para)* )* )? appendix",
        // Native one-or-more (DTD-style postfix plus).
        "(a b)+",
        "(a b)+, c",
        "(title, author+, (year | date)?)",
        "(a, b+, c)+, d",
        "(x, (a b)+, y)+",
    ];

    /// Parses an expression and produces sample words: all short words over
    /// the expression's alphabet (exhaustive up to `max_len`).
    pub fn expression_and_words(
        input: &str,
        max_len: usize,
    ) -> (Regex, Alphabet, Vec<Vec<Symbol>>) {
        let mut sigma = Alphabet::new();
        let e = parse_with_alphabet(input, &mut sigma).unwrap();
        let alphabet: Vec<Symbol> = sigma.symbols().collect();
        let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
        let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in &alphabet {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        (e, sigma, words)
    }

    /// Asserts that `matcher` agrees with the Glushkov DFA baseline on all
    /// words up to the given length.
    pub fn assert_agrees_with_baseline<M: Matcher>(
        input: &str,
        max_len: usize,
        matcher: impl Fn(&Regex) -> M,
    ) {
        let (e, _, words) = expression_and_words(input, max_len);
        let baseline = GlushkovDfaMatcher::build(&e).expect("test expressions are deterministic");
        let m = matcher(&e);
        for w in &words {
            assert_eq!(
                m.matches(w),
                baseline.matches(w),
                "{input} disagrees with the baseline on {w:?}"
            );
        }
    }
}
