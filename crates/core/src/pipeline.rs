//! The staged compilation pipeline and its shared artifact.
//!
//! Every algorithm in this workspace consumes the same `O(|e|)`
//! preprocessing: the interned alphabet, the normalized AST, the parse tree
//! with its LCA/`SupFirst`/`SupLast` machinery ([`TreeAnalysis`]), and — for
//! counting-free expressions — the determinism certificate with its colors
//! and per-symbol skeleta. Before this module existed each matcher (and each
//! benchmark) re-derived parts of that preprocessing on its own, multiplying
//! the paper's linear bound by the number of consumers.
//!
//! [`Pipeline`] runs the stages exactly once per expression:
//!
//! 1. **intern + parse** — symbols are interned into dense `u32` ids by the
//!    pipeline-owned [`Alphabet`] (shared across all content models of a
//!    schema), the textual syntax is parsed, and the byte span of every
//!    position is recorded so diagnostics can point back into the source;
//! 2. **normalize** — the structural restrictions (R2)/(R3) are enforced so
//!    the parse tree is linear in the number of positions, and the
//!    structural statistics ([`ExprStats`]) are computed;
//! 3. **analyze** — the parse tree is built, wrapped into `(# e′) $` (R1),
//!    and preprocessed for constant-time `checkIfFollow` (Theorem 2.4);
//! 4. **certify** — the linear-time determinism test (Theorem 3.5, or its
//!    counting extension of Section 3.3) runs; for counting-free expressions
//!    the certificate (colors + skeleta) is retained because the
//!    lowest-colored-ancestor matcher reuses it; for counted expressions the
//!    language-preserving unrolled simulation is built here, once.
//!
//! Failures at any stage surface as structured [`Diagnostic`]s with stable
//! codes, byte spans, and — for determinism conflicts — the witness
//! positions the certifier computes.
//!
//! The result is an immutable [`CompiledAnalysis`] behind an `Arc`. All five
//! matchers — k-occurrence, path decomposition, lowest colored ancestor,
//! star-free, and the Glushkov DFA baseline — are constructed *from* this
//! artifact (see the `from_compiled` constructors) without re-running any
//! stage, so switching matching strategies on an already-compiled expression
//! costs only the strategy's own preprocessing.

use crate::counting::check_counting_determinism;
use crate::determinism::{check_determinism, DeterminismCertificate, NonDeterminism};
use crate::diagnostics::{Code, ConflictWitness, Diagnostic};
use redet_automata::NfaSimulationMatcher;
use redet_syntax::{
    normalize, parse_spanned_with_alphabet, Alphabet, ExprStats, Regex, Span, Symbol,
};
use redet_tree::TreeAnalysis;
use std::sync::Arc;

/// The immutable, shareable result of running an expression through the
/// pipeline: everything the matchers, the benchmarks and the facade need,
/// computed exactly once.
///
/// `CompiledAnalysis` is handed around behind an [`Arc`]; cloning the handle
/// is free and thread-safe, so one compiled schema can serve many validator
/// threads.
///
/// ```
/// use redet_core::pipeline::CompiledAnalysis;
///
/// let compiled = CompiledAnalysis::compile("(a b + b b? a)*").unwrap();
/// assert!(!compiled.stats().star_free);
/// assert_eq!(compiled.alphabet().len(), 2);
/// assert!(compiled.certificate().is_some());
/// ```
#[derive(Debug)]
pub struct CompiledAnalysis {
    alphabet: Alphabet,
    regex: Regex,
    stats: ExprStats,
    analysis: Arc<TreeAnalysis>,
    certificate: Option<Arc<DeterminismCertificate>>,
    /// For counted expressions: the set-of-positions simulation of the
    /// unrolled (language-preserving) expression, built once here because
    /// unrolling does not preserve determinism and every strategy falls back
    /// to it.
    counted_simulation: Option<Arc<NfaSimulationMatcher>>,
    /// The source text the expression was compiled from, when it came in as
    /// text (diagnostics quote it).
    source: Option<String>,
    /// Byte span of every alphabet position, in position order, when the
    /// expression was compiled from text.
    spans: Option<Vec<Span>>,
}

impl CompiledAnalysis {
    /// Runs the full pipeline on a textual content model with a fresh
    /// alphabet. Equivalent to `Pipeline::new().compile(input)`.
    pub fn compile(input: &str) -> Result<Arc<Self>, Diagnostic> {
        Pipeline::new().compile(input)
    }

    /// Runs the normalize → analyze → certify stages on an already-parsed
    /// AST and its alphabet.
    pub fn from_regex(regex: Regex, alphabet: Alphabet) -> Result<Arc<Self>, Diagnostic> {
        Self::from_parts(regex, alphabet, None, None)
    }

    fn from_parts(
        regex: Regex,
        alphabet: Alphabet,
        source: Option<String>,
        spans: Option<Vec<Span>>,
    ) -> Result<Arc<Self>, Diagnostic> {
        // Stage 2: normalization (R2/R3) and structural statistics.
        let regex = normalize(regex)?;
        let stats = ExprStats::of(&regex);

        // Stage 3: the shared parse-tree analysis (Theorem 2.4).
        let analysis = Arc::new(TreeAnalysis::build(&regex));

        // Stage 4: determinism certification. The counting-aware test
        // subsumes the plain one; counting-free expressions keep the
        // certificate because the colored-ancestor matcher reuses it.
        let (certificate, counted_simulation) = if stats.counting {
            if let Err(conflict) = check_counting_determinism(&regex) {
                return Err(diagnose_conflict(&conflict, &alphabet, spans.as_deref()));
            }
            // Unrolling rewrites counters into unions/concatenations of
            // optionals and can reintroduce (R2)/(R3) violations (e.g. for
            // a nullable counted body); re-normalize before building the
            // simulation's parse tree.
            let unrolled = normalize(redet_automata::unroll_counting(&regex))?;
            let sim = Arc::new(NfaSimulationMatcher::build(&unrolled));
            (None, Some(sim))
        } else {
            match check_determinism(&analysis) {
                Ok(cert) => (Some(Arc::new(cert)), None),
                Err(conflict) => {
                    return Err(diagnose_conflict(&conflict, &alphabet, spans.as_deref()));
                }
            }
        };

        Ok(Arc::new(CompiledAnalysis {
            alphabet,
            regex,
            stats,
            analysis,
            certificate,
            counted_simulation,
            source,
            spans,
        }))
    }

    /// The interned alphabet of the expression — the single source of truth
    /// for the string ↔ symbol mapping.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The normalized abstract syntax tree.
    #[inline]
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// Structural statistics (`k`, `c_e`, star-freedom, σ, …).
    #[inline]
    pub fn stats(&self) -> &ExprStats {
        &self.stats
    }

    /// The preprocessed parse tree (Theorem 2.4 queries and friends).
    #[inline]
    pub fn analysis(&self) -> &Arc<TreeAnalysis> {
        &self.analysis
    }

    /// The determinism certificate (colors and skeleta), when the expression
    /// is counting-free.
    #[inline]
    pub fn certificate(&self) -> Option<&Arc<DeterminismCertificate>> {
        self.certificate.as_ref()
    }

    /// The cached unrolled-expression simulation, when the expression uses
    /// numeric occurrence indicators.
    #[inline]
    pub fn counted_simulation(&self) -> Option<&Arc<NfaSimulationMatcher>> {
        self.counted_simulation.as_ref()
    }

    /// The source text this expression was compiled from, when it came in
    /// as text.
    #[inline]
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// The source byte span of tree position `p` (phantom markers and
    /// AST-built expressions have none).
    pub fn pos_span(&self, p: redet_tree::PosId) -> Option<Span> {
        span_of_position(self.spans.as_deref(), p)
    }

    /// Interns-free conversion of a word of element names into symbols.
    /// Returns `None` as soon as a name is not part of the alphabet — such a
    /// word cannot be a member of any content model over this alphabet.
    pub fn to_symbols(&self, word: &[&str]) -> Option<Vec<Symbol>> {
        word.iter().map(|name| self.alphabet.lookup(name)).collect()
    }
}

/// Maps a tree position to its source span: tree position `i` (1-based,
/// after the phantom `#`) was written at `spans[i - 1]`. The single home of
/// that offset convention.
fn span_of_position(spans: Option<&[Span]>, p: redet_tree::PosId) -> Option<Span> {
    p.index()
        .checked_sub(1)
        .and_then(|i| spans?.get(i))
        .copied()
}

/// Enriches the certifier's conflict witness into a [`Diagnostic`]: symbol
/// names from the alphabet, source spans from the parser's position map.
pub(crate) fn diagnose_conflict(
    conflict: &NonDeterminism,
    alphabet: &Alphabet,
    spans: Option<&[Span]>,
) -> Diagnostic {
    let name = alphabet.name(conflict.symbol).to_owned();
    let first_span = span_of_position(spans, conflict.first);
    let second_span = span_of_position(spans, conflict.second);
    let message = format!(
        "content model is not deterministic: two '{name}'-labeled positions can \
         follow a common position, so a one-pass parser reading '{name}' would \
         not know which occurrence to take"
    );
    let mut diag = Diagnostic::new(Code::NotDeterministic, message).with_witness(ConflictWitness {
        kind: conflict.kind,
        symbol: conflict.symbol,
        symbol_name: name,
        first: conflict.first,
        second: conflict.second,
        first_span,
        second_span,
    });
    if let Some(span) = second_span.or(first_span) {
        diag = diag.with_span(span);
    }
    diag
}

/// The staged compiler driver.
///
/// A `Pipeline` owns the schema-wide [`Alphabet`], so compiling several
/// content models of the same schema through one pipeline interns every
/// element name exactly once and gives all models a consistent dense symbol
/// space:
///
/// ```
/// use redet_core::pipeline::Pipeline;
///
/// let mut pipeline = Pipeline::new();
/// let book = pipeline.compile("(title, author+, year?)").unwrap();
/// let article = pipeline.compile("(title, author+, journal)").unwrap();
/// // "title" means the same symbol in both models.
/// assert_eq!(
///     book.alphabet().lookup("title"),
///     article.alphabet().lookup("title"),
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    alphabet: Alphabet,
}

impl Pipeline {
    /// Creates a pipeline with an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline seeded with an existing alphabet (e.g. the element
    /// names of a schema, interned up front).
    pub fn with_alphabet(alphabet: Alphabet) -> Self {
        Pipeline { alphabet }
    }

    /// The symbols interned so far across all compiled models.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Interns `name` into the pipeline's alphabet ahead of any model that
    /// mentions it. Pre-interning every element name of a schema gives all
    /// models a complete symbol space regardless of declaration order.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.alphabet.intern(name)
    }

    /// Runs all four stages on a textual content model, producing the shared
    /// artifact. Symbols are interned into the pipeline's alphabet; the
    /// artifact holds a snapshot of the alphabet as of this compilation.
    pub fn compile(&mut self, input: &str) -> Result<Arc<CompiledAnalysis>, Diagnostic> {
        // Stage 1: intern + parse, keeping per-position source spans.
        let (regex, spans) = parse_spanned_with_alphabet(input, &mut self.alphabet)?;
        CompiledAnalysis::from_parts(
            regex,
            self.alphabet.clone(),
            Some(input.to_owned()),
            Some(spans),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_carries_all_stages() {
        let compiled = CompiledAnalysis::compile("(a b + b b? a)*").unwrap();
        assert_eq!(compiled.alphabet().len(), 2);
        assert_eq!(compiled.stats().max_occurrences, 3);
        assert!(compiled.certificate().is_some());
        assert!(compiled.counted_simulation().is_none());
        assert!(compiled.analysis().tree().num_positions() >= 5);
        assert_eq!(compiled.source(), Some("(a b + b b? a)*"));
    }

    #[test]
    fn counted_expressions_cache_the_unrolled_simulation() {
        let compiled = CompiledAnalysis::compile("(a b){2,4} c").unwrap();
        assert!(compiled.stats().counting);
        assert!(compiled.certificate().is_none());
        assert!(compiled.counted_simulation().is_some());
    }

    #[test]
    fn nondeterministic_models_are_rejected_with_witness_spans() {
        let diag = CompiledAnalysis::compile("(a* b a + b b)*").unwrap_err();
        assert_eq!(diag.code(), Code::NotDeterministic);
        let witness = diag
            .witness()
            .expect("determinism conflicts carry a witness");
        assert_eq!(witness.symbol_name, "b");
        // Both spans point at 'b' occurrences in the source.
        for span in [witness.first_span.unwrap(), witness.second_span.unwrap()] {
            assert_eq!(&"(a* b a + b b)*"[span.start..span.end], "b");
        }
    }

    #[test]
    fn parse_and_syntax_errors_become_diagnostics() {
        assert_eq!(
            CompiledAnalysis::compile("(a b").unwrap_err().code(),
            Code::Parse
        );
        assert_eq!(
            CompiledAnalysis::compile("a{0,0}").unwrap_err().code(),
            Code::Syntax
        );
    }

    #[test]
    fn nullable_counted_bodies_unroll_to_normal_form() {
        // `(a?){2,3}` unrolls into optionals over nullable bodies; the
        // pipeline must re-normalize before building the simulation's parse
        // tree (this used to panic the (R2)/(R3) assertion).
        let compiled = CompiledAnalysis::compile("(a?){2,3}").unwrap();
        assert!(compiled.counted_simulation().is_some());
    }

    #[test]
    fn pipeline_shares_the_alphabet_across_models() {
        let mut pipeline = Pipeline::new();
        let first = pipeline.compile("(title, author+)").unwrap();
        let second = pipeline.compile("(author, title?)").unwrap();
        assert_eq!(
            first.alphabet().lookup("author"),
            second.alphabet().lookup("author")
        );
        // The earlier artifact's snapshot does not see later symbols.
        let mut pipeline = Pipeline::new();
        let small = pipeline.compile("a").unwrap();
        pipeline.compile("a b").unwrap();
        assert_eq!(small.alphabet().len(), 1);
        // Unless the names were pre-interned, which a schema builder does.
        let mut pipeline = Pipeline::new();
        pipeline.intern("a");
        pipeline.intern("b");
        let seeded = pipeline.compile("a").unwrap();
        assert_eq!(seeded.alphabet().len(), 2);
    }

    #[test]
    fn position_spans_map_back_into_the_source() {
        let source = "(title, author+, (year | date)?)";
        let compiled = CompiledAnalysis::compile(source).unwrap();
        let tree = compiled.analysis().tree();
        // Positions 1..=m are the alphabet positions in source order.
        let author = redet_tree::PosId::from_index(2);
        let span = compiled.pos_span(author).unwrap();
        assert_eq!(&source[span.start..span.end], "author");
        // Phantom markers have no span.
        assert_eq!(compiled.pos_span(tree.begin_pos()), None);
    }

    #[test]
    fn to_symbols_rejects_unknown_names() {
        let compiled = CompiledAnalysis::compile("(title, author+)").unwrap();
        assert!(compiled.to_symbols(&["title", "author"]).is_some());
        assert!(compiled.to_symbols(&["title", "intruder"]).is_none());
    }
}
