//! The staged compilation pipeline and its shared artifact.
//!
//! Every algorithm in this workspace consumes the same `O(|e|)`
//! preprocessing: the interned alphabet, the normalized AST, the parse tree
//! with its LCA/`SupFirst`/`SupLast` machinery ([`TreeAnalysis`]), and — for
//! counting-free expressions — the determinism certificate with its colors
//! and per-symbol skeleta. Before this module existed each matcher (and each
//! benchmark) re-derived parts of that preprocessing on its own, multiplying
//! the paper's linear bound by the number of consumers.
//!
//! [`Pipeline`] runs the stages exactly once per expression:
//!
//! 1. **intern + parse** — symbols are interned into dense `u32` ids by the
//!    pipeline-owned [`Alphabet`] (shared across all content models of a
//!    schema), and the textual syntax is parsed;
//! 2. **normalize** — the structural restrictions (R2)/(R3) are enforced so
//!    the parse tree is linear in the number of positions, and the
//!    structural statistics ([`ExprStats`]) are computed;
//! 3. **analyze** — the parse tree is built, wrapped into `(# e′) $` (R1),
//!    and preprocessed for constant-time `checkIfFollow` (Theorem 2.4);
//! 4. **certify** — the linear-time determinism test (Theorem 3.5, or its
//!    counting extension of Section 3.3) runs; for counting-free expressions
//!    the certificate (colors + skeleta) is retained because the
//!    lowest-colored-ancestor matcher reuses it; for counted expressions the
//!    language-preserving unrolled simulation is built here, once.
//!
//! The result is an immutable [`CompiledAnalysis`] behind an `Arc`. All five
//! matchers — k-occurrence, path decomposition, lowest colored ancestor,
//! star-free, and the Glushkov DFA baseline — are constructed *from* this
//! artifact (see the `from_compiled` constructors) without re-running any
//! stage, so switching matching strategies on an already-compiled expression
//! costs only the strategy's own preprocessing.

use crate::counting::check_counting_determinism;
use crate::determinism::{check_determinism, DeterminismCertificate, NonDeterminism};
use redet_automata::NfaSimulationMatcher;
use redet_syntax::{normalize, parse_with_alphabet, Alphabet, ExprStats, Regex, Symbol};
use redet_tree::TreeAnalysis;
use std::fmt;
use std::sync::Arc;

/// Errors produced while compiling a content model.
#[derive(Debug)]
pub enum RegexError {
    /// The textual syntax could not be parsed.
    Parse(redet_syntax::ParseError),
    /// The expression is structurally invalid (e.g. `a{3,1}`).
    Syntax(redet_syntax::SyntaxError),
    /// The expression is not deterministic (not one-unambiguous), with a
    /// witness explaining why — the same diagnostic an XML schema processor
    /// would report for a non-deterministic content model.
    NotDeterministic(NonDeterminism),
    /// The requested strategy does not apply to this expression (e.g.
    /// star-free matching for an expression containing `∗`).
    StrategyNotApplicable(&'static str),
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Parse(e) => write!(f, "{e}"),
            RegexError::Syntax(e) => write!(f, "{e}"),
            RegexError::NotDeterministic(e) => write!(f, "{e}"),
            RegexError::StrategyNotApplicable(why) => {
                write!(f, "requested matching strategy does not apply: {why}")
            }
        }
    }
}

impl std::error::Error for RegexError {}

impl From<redet_syntax::ParseError> for RegexError {
    fn from(e: redet_syntax::ParseError) -> Self {
        RegexError::Parse(e)
    }
}

impl From<redet_syntax::SyntaxError> for RegexError {
    fn from(e: redet_syntax::SyntaxError) -> Self {
        RegexError::Syntax(e)
    }
}

impl From<NonDeterminism> for RegexError {
    fn from(e: NonDeterminism) -> Self {
        RegexError::NotDeterministic(e)
    }
}

/// The immutable, shareable result of running an expression through the
/// pipeline: everything the matchers, the benchmarks and the facade need,
/// computed exactly once.
///
/// `CompiledAnalysis` is handed around behind an [`Arc`]; cloning the handle
/// is free and thread-safe, so one compiled schema can serve many validator
/// threads.
///
/// ```
/// use redet_core::pipeline::CompiledAnalysis;
///
/// let compiled = CompiledAnalysis::compile("(a b + b b? a)*").unwrap();
/// assert!(!compiled.stats().star_free);
/// assert_eq!(compiled.alphabet().len(), 2);
/// assert!(compiled.certificate().is_some());
/// ```
#[derive(Debug)]
pub struct CompiledAnalysis {
    alphabet: Alphabet,
    regex: Regex,
    stats: ExprStats,
    analysis: Arc<TreeAnalysis>,
    certificate: Option<Arc<DeterminismCertificate>>,
    /// For counted expressions: the set-of-positions simulation of the
    /// unrolled (language-preserving) expression, built once here because
    /// unrolling does not preserve determinism and every strategy falls back
    /// to it.
    counted_simulation: Option<Arc<NfaSimulationMatcher>>,
}

impl CompiledAnalysis {
    /// Runs the full pipeline on a textual content model with a fresh
    /// alphabet. Equivalent to `Pipeline::new().compile(input)`.
    pub fn compile(input: &str) -> Result<Arc<Self>, RegexError> {
        Pipeline::new().compile(input)
    }

    /// Runs the normalize → analyze → certify stages on an already-parsed
    /// AST and its alphabet.
    pub fn from_regex(regex: Regex, alphabet: Alphabet) -> Result<Arc<Self>, RegexError> {
        // Stage 2: normalization (R2/R3) and structural statistics.
        let regex = normalize(regex)?;
        let stats = ExprStats::of(&regex);

        // Stage 3: the shared parse-tree analysis (Theorem 2.4).
        let analysis = Arc::new(TreeAnalysis::build(&regex));

        // Stage 4: determinism certification. The counting-aware test
        // subsumes the plain one; counting-free expressions keep the
        // certificate because the colored-ancestor matcher reuses it.
        let (certificate, counted_simulation) = if stats.counting {
            check_counting_determinism(&regex)?;
            let unrolled = redet_automata::unroll_counting(&regex);
            let sim = Arc::new(NfaSimulationMatcher::build(&unrolled));
            (None, Some(sim))
        } else {
            let cert = Arc::new(check_determinism(&analysis)?);
            (Some(cert), None)
        };

        Ok(Arc::new(CompiledAnalysis {
            alphabet,
            regex,
            stats,
            analysis,
            certificate,
            counted_simulation,
        }))
    }

    /// The interned alphabet of the expression — the single source of truth
    /// for the string ↔ symbol mapping.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The normalized abstract syntax tree.
    #[inline]
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// Structural statistics (`k`, `c_e`, star-freedom, σ, …).
    #[inline]
    pub fn stats(&self) -> &ExprStats {
        &self.stats
    }

    /// The preprocessed parse tree (Theorem 2.4 queries and friends).
    #[inline]
    pub fn analysis(&self) -> &Arc<TreeAnalysis> {
        &self.analysis
    }

    /// The determinism certificate (colors and skeleta), when the expression
    /// is counting-free.
    #[inline]
    pub fn certificate(&self) -> Option<&Arc<DeterminismCertificate>> {
        self.certificate.as_ref()
    }

    /// The cached unrolled-expression simulation, when the expression uses
    /// numeric occurrence indicators.
    #[inline]
    pub fn counted_simulation(&self) -> Option<&Arc<NfaSimulationMatcher>> {
        self.counted_simulation.as_ref()
    }

    /// Interns-free conversion of a word of element names into symbols.
    /// Returns `None` as soon as a name is not part of the alphabet — such a
    /// word cannot be a member of any content model over this alphabet.
    pub fn to_symbols(&self, word: &[&str]) -> Option<Vec<Symbol>> {
        word.iter().map(|name| self.alphabet.lookup(name)).collect()
    }
}

/// The staged compiler driver.
///
/// A `Pipeline` owns the schema-wide [`Alphabet`], so compiling several
/// content models of the same schema through one pipeline interns every
/// element name exactly once and gives all models a consistent dense symbol
/// space:
///
/// ```
/// use redet_core::pipeline::Pipeline;
///
/// let mut pipeline = Pipeline::new();
/// let book = pipeline.compile("(title, author+, year?)").unwrap();
/// let article = pipeline.compile("(title, author+, journal)").unwrap();
/// // "title" means the same symbol in both models.
/// assert_eq!(
///     book.alphabet().lookup("title"),
///     article.alphabet().lookup("title"),
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    alphabet: Alphabet,
}

impl Pipeline {
    /// Creates a pipeline with an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline seeded with an existing alphabet (e.g. the element
    /// names of a schema, interned up front).
    pub fn with_alphabet(alphabet: Alphabet) -> Self {
        Pipeline { alphabet }
    }

    /// The symbols interned so far across all compiled models.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Runs all four stages on a textual content model, producing the shared
    /// artifact. Symbols are interned into the pipeline's alphabet; the
    /// artifact holds a snapshot of the alphabet as of this compilation.
    pub fn compile(&mut self, input: &str) -> Result<Arc<CompiledAnalysis>, RegexError> {
        // Stage 1: intern + parse.
        let regex = parse_with_alphabet(input, &mut self.alphabet)?;
        CompiledAnalysis::from_regex(regex, self.alphabet.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_carries_all_stages() {
        let compiled = CompiledAnalysis::compile("(a b + b b? a)*").unwrap();
        assert_eq!(compiled.alphabet().len(), 2);
        assert_eq!(compiled.stats().max_occurrences, 3);
        assert!(compiled.certificate().is_some());
        assert!(compiled.counted_simulation().is_none());
        assert!(compiled.analysis().tree().num_positions() >= 5);
    }

    #[test]
    fn counted_expressions_cache_the_unrolled_simulation() {
        let compiled = CompiledAnalysis::compile("(a b){2,4} c").unwrap();
        assert!(compiled.stats().counting);
        assert!(compiled.certificate().is_none());
        assert!(compiled.counted_simulation().is_some());
    }

    #[test]
    fn nondeterministic_models_are_rejected_at_certification() {
        match CompiledAnalysis::compile("(a* b a + b b)*") {
            Err(RegexError::NotDeterministic(_)) => {}
            other => panic!("expected a determinism error, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_shares_the_alphabet_across_models() {
        let mut pipeline = Pipeline::new();
        let first = pipeline.compile("(title, author+)").unwrap();
        let second = pipeline.compile("(author, title?)").unwrap();
        assert_eq!(
            first.alphabet().lookup("author"),
            second.alphabet().lookup("author")
        );
        // The earlier artifact's snapshot does not see later symbols.
        let mut pipeline = Pipeline::new();
        let small = pipeline.compile("a").unwrap();
        pipeline.compile("a b").unwrap();
        assert_eq!(small.alphabet().len(), 1);
    }

    #[test]
    fn to_symbols_rejects_unknown_names() {
        let compiled = CompiledAnalysis::compile("(title, author+)").unwrap();
        assert!(compiled.to_symbols(&["title", "author"]).is_some());
        assert!(compiled.to_symbols(&["title", "intruder"]).is_none());
    }
}
