//! High-level entry point: a thin driver over the compilation [`Pipeline`]
//! that picks a matching algorithm and validates words.
//!
//! All the heavy lifting — interning, parsing, normalization, the shared
//! parse-tree analysis, determinism certification — happens once in the
//! pipeline and is captured in an [`Arc<CompiledAnalysis>`]; this module
//! only chooses a strategy and builds the (cheap) strategy-specific
//! structures on top of the artifact. Consequently, switching strategies on
//! an already-compiled expression ([`DeterministicRegex::with_strategy`])
//! never re-parses or re-analyzes.

use crate::matcher::colored::ColoredAncestorMatcher;
use crate::matcher::kocc::KOccurrenceMatcher;
use crate::matcher::pathdecomp::PathDecompositionMatcher;
use crate::matcher::starfree::StarFreeMatcher;
use crate::matcher::PositionMatcher;
use crate::pipeline::CompiledAnalysis;
pub use crate::pipeline::RegexError;
use redet_automata::{GlushkovDfaMatcher, Matcher, NfaSimulationMatcher};
use redet_syntax::{Alphabet, ExprStats, Regex};
use redet_tree::TreeAnalysis;
use std::fmt;
use std::sync::Arc;

/// Which transition-simulation algorithm backs a compiled expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Pick automatically from the expression's structural statistics
    /// (star-free → Theorem 4.12; small `k` → Theorem 4.3; small
    /// alternation depth → Theorem 4.10; otherwise Theorem 4.2).
    #[default]
    Auto,
    /// The star-free forward sweep (Theorem 4.12).
    StarFree,
    /// The bounded-occurrence scan (Theorem 4.3).
    KOccurrence,
    /// The path-decomposition matcher (Theorem 4.10).
    PathDecomposition,
    /// The lowest-colored-ancestor matcher (Theorem 4.2).
    ColoredAncestor,
    /// The Glushkov DFA baseline (`O(σ|e|)` preprocessing).
    GlushkovDfa,
}

enum MatcherImpl {
    StarFree(PositionMatcher<StarFreeMatcher>),
    KOccurrence(PositionMatcher<KOccurrenceMatcher>),
    PathDecomposition(PositionMatcher<PathDecompositionMatcher>),
    ColoredAncestor(PositionMatcher<ColoredAncestorMatcher>),
    GlushkovDfa(GlushkovDfaMatcher),
    /// Counted expressions are matched by simulating the Glushkov automaton
    /// of the (language-preserving) unrolled expression, because unrolling
    /// does not preserve determinism. The simulation is built once by the
    /// pipeline and shared.
    CountedNfa(Arc<NfaSimulationMatcher>),
}

/// A compiled deterministic regular expression (content model): parsing,
/// normalization, the linear-time determinism check of Theorem 3.5, and a
/// matching algorithm chosen from Section 4.
///
/// ```
/// use redet_core::DeterministicRegex;
///
/// let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
/// assert!(model.matches(&["title", "author", "author", "year"]));
/// assert!(!model.matches(&["title", "year"]));
///
/// // Non-deterministic content models are rejected with a witness.
/// assert!(DeterministicRegex::compile("(a* b a + b b)*").is_err());
/// ```
pub struct DeterministicRegex {
    compiled: Arc<CompiledAnalysis>,
    strategy: MatchStrategy,
    matcher: MatcherImpl,
}

impl DeterministicRegex {
    /// Parses, normalizes, checks determinism and prepares a matcher,
    /// selecting the algorithm automatically.
    pub fn compile(input: &str) -> Result<Self, RegexError> {
        Self::compile_with(input, MatchStrategy::Auto)
    }

    /// Like [`Self::compile`] with an explicit matching strategy.
    pub fn compile_with(input: &str, strategy: MatchStrategy) -> Result<Self, RegexError> {
        Self::from_compiled(CompiledAnalysis::compile(input)?, strategy)
    }

    /// Compiles an already-built AST (sharing an alphabet with other content
    /// models of the same schema).
    pub fn from_regex(regex: Regex, alphabet: Alphabet) -> Result<Self, RegexError> {
        Self::from_regex_with(regex, alphabet, MatchStrategy::Auto)
    }

    /// Like [`Self::from_regex`] with an explicit matching strategy.
    pub fn from_regex_with(
        regex: Regex,
        alphabet: Alphabet,
        strategy: MatchStrategy,
    ) -> Result<Self, RegexError> {
        Self::from_compiled(CompiledAnalysis::from_regex(regex, alphabet)?, strategy)
    }

    /// Attaches a matcher to a shared pipeline artifact. This is the only
    /// constructor that does real work, and the work is limited to the
    /// strategy-specific structures — the artifact already carries the
    /// parse-tree analysis and the determinism certificate.
    pub fn from_compiled(
        compiled: Arc<CompiledAnalysis>,
        strategy: MatchStrategy,
    ) -> Result<Self, RegexError> {
        let chosen = match strategy {
            MatchStrategy::Auto => Self::auto_strategy(compiled.stats()),
            other => other,
        };
        let matcher = Self::build_matcher(&compiled, chosen)?;
        Ok(DeterministicRegex {
            compiled,
            strategy: chosen,
            matcher,
        })
    }

    /// Re-targets the expression at a different matching strategy, sharing
    /// every stage of the compilation — no re-parse, no re-normalization, no
    /// re-analysis, no re-certification.
    pub fn with_strategy(&self, strategy: MatchStrategy) -> Result<Self, RegexError> {
        Self::from_compiled(self.compiled.clone(), strategy)
    }

    fn auto_strategy(stats: &ExprStats) -> MatchStrategy {
        if stats.counting {
            // Matching goes through the unrolled NFA regardless; report the
            // baseline strategy for transparency.
            MatchStrategy::GlushkovDfa
        } else if stats.star_free {
            MatchStrategy::StarFree
        } else if stats.max_occurrences <= 4 {
            MatchStrategy::KOccurrence
        } else if stats.plus_depth <= 8 && !stats.has_plus {
            // The path decomposition is proven for the `∗`-only grammar;
            // expressions with native `e+` take the colored-ancestor route.
            MatchStrategy::PathDecomposition
        } else {
            MatchStrategy::ColoredAncestor
        }
    }

    fn build_matcher(
        compiled: &Arc<CompiledAnalysis>,
        strategy: MatchStrategy,
    ) -> Result<MatcherImpl, RegexError> {
        if let Some(sim) = compiled.counted_simulation() {
            // Language-correct matching of counted expressions: the pipeline
            // already built the unrolled-expression simulation.
            return Ok(MatcherImpl::CountedNfa(sim.clone()));
        }
        Ok(match strategy {
            MatchStrategy::Auto => unreachable!("Auto is resolved before building"),
            MatchStrategy::StarFree => MatcherImpl::StarFree(PositionMatcher::new(
                StarFreeMatcher::from_compiled(compiled).map_err(|_| {
                    RegexError::StrategyNotApplicable(
                        "the expression contains an iterating operator",
                    )
                })?,
            )),
            MatchStrategy::KOccurrence => MatcherImpl::KOccurrence(PositionMatcher::new(
                KOccurrenceMatcher::from_compiled(compiled),
            )),
            MatchStrategy::PathDecomposition => {
                MatcherImpl::PathDecomposition(PositionMatcher::new(
                    PathDecompositionMatcher::from_compiled(compiled).map_err(|_| {
                        RegexError::StrategyNotApplicable("path decomposition preprocessing failed")
                    })?,
                ))
            }
            MatchStrategy::ColoredAncestor => MatcherImpl::ColoredAncestor(PositionMatcher::new(
                ColoredAncestorMatcher::from_compiled(compiled).map_err(|_| {
                    RegexError::StrategyNotApplicable(
                        "no determinism certificate is available for this expression",
                    )
                })?,
            )),
            MatchStrategy::GlushkovDfa => MatcherImpl::GlushkovDfa(
                GlushkovDfaMatcher::from_tree(compiled.analysis().tree()).map_err(|_| {
                    RegexError::StrategyNotApplicable("expression is not deterministic")
                })?,
            ),
        })
    }

    /// The shared compilation artifact backing this expression.
    pub fn compiled(&self) -> &Arc<CompiledAnalysis> {
        &self.compiled
    }

    /// The interned alphabet of the expression.
    pub fn alphabet(&self) -> &Alphabet {
        self.compiled.alphabet()
    }

    /// The normalized abstract syntax tree.
    pub fn regex(&self) -> &Regex {
        self.compiled.regex()
    }

    /// Structural statistics (`k`, `c_e`, star-freedom, σ, …).
    pub fn stats(&self) -> &ExprStats {
        self.compiled.stats()
    }

    /// The preprocessed parse tree (Theorem 2.4 queries and friends).
    pub fn analysis(&self) -> &TreeAnalysis {
        self.compiled.analysis()
    }

    /// The determinism certificate (colors and skeleta), when the expression
    /// is counting-free.
    pub fn certificate(&self) -> Option<&crate::determinism::DeterminismCertificate> {
        self.compiled.certificate().map(|c| c.as_ref())
    }

    /// The matching strategy in use.
    pub fn strategy(&self) -> MatchStrategy {
        self.strategy
    }

    /// Whether the word, given as element names, belongs to the content
    /// model. Unknown element names immediately reject.
    pub fn matches(&self, word: &[&str]) -> bool {
        match self.compiled.to_symbols(word) {
            Some(symbols) => self.matches_symbols(&symbols),
            None => false,
        }
    }

    /// Whether the word, given as interned symbols, belongs to the content
    /// model.
    pub fn matches_symbols(&self, word: &[redet_syntax::Symbol]) -> bool {
        match &self.matcher {
            MatcherImpl::StarFree(m) => m.matches(word),
            MatcherImpl::KOccurrence(m) => m.matches(word),
            MatcherImpl::PathDecomposition(m) => m.matches(word),
            MatcherImpl::ColoredAncestor(m) => m.matches(word),
            MatcherImpl::GlushkovDfa(m) => m.matches(word),
            MatcherImpl::CountedNfa(m) => m.matches(word),
        }
    }

    /// Validates a batch of words. Star-free expressions use the
    /// single-traversal multi-word algorithm of Theorem 4.12; other
    /// expressions fall back to word-by-word matching.
    pub fn matches_all<W: AsRef<[redet_syntax::Symbol]>>(&self, words: &[W]) -> Vec<bool> {
        if let MatcherImpl::StarFree(m) = &self.matcher {
            return m.sim().match_words(words);
        }
        words
            .iter()
            .map(|w| self.matches_symbols(w.as_ref()))
            .collect()
    }
}

impl fmt::Debug for DeterministicRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeterministicRegex")
            .field("strategy", &self.strategy)
            .field("stats", self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_match_dtd_model() {
        let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
        assert!(model.matches(&["title", "author"]));
        assert!(model.matches(&["title", "author", "author", "date"]));
        assert!(!model.matches(&["title"]));
        assert!(!model.matches(&["title", "author", "year", "date"]));
        assert!(!model.matches(&["title", "unknown-element"]));
    }

    #[test]
    fn rejects_nondeterministic_models() {
        for input in ["(a* b a + b b)*", "a b* b", "(a b){1,2} a"] {
            match DeterministicRegex::compile(input) {
                Err(RegexError::NotDeterministic(_)) => {}
                other => panic!("{input} should be rejected as non-deterministic, got {other:?}"),
            }
        }
    }

    #[test]
    fn strategy_selection() {
        let star_free = DeterministicRegex::compile("(a + b) (c + d)?").unwrap();
        assert_eq!(star_free.strategy(), MatchStrategy::StarFree);

        let small_k = DeterministicRegex::compile("(a b + b b? a)*").unwrap();
        assert_eq!(small_k.strategy(), MatchStrategy::KOccurrence);

        // Many occurrences of a (k = 5) with small alternation depth and a
        // star (so the star-free and k-occurrence strategies do not apply).
        let path = DeterministicRegex::compile(
            "(a x1 + b y1)(a x2 + b y2)(a x3 + b y3)(a x4 + b y4)(a x5 + b y5) r*",
        )
        .unwrap();
        assert_eq!(path.strategy(), MatchStrategy::PathDecomposition);
    }

    #[test]
    fn explicit_strategies_agree() {
        let input = "(c?((a b*)(a? c)))*(b a)";
        let words: Vec<Vec<&str>> = vec![
            vec!["b", "a"],
            vec!["a", "c", "b", "a"],
            vec!["c", "a", "c", "b", "a"],
            vec!["a", "b", "b", "a", "c", "b", "a"],
            vec!["a", "b"],
            vec![],
            vec!["c", "c"],
        ];
        let strategies = [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::ColoredAncestor,
            MatchStrategy::GlushkovDfa,
        ];
        let reference =
            DeterministicRegex::compile_with(input, MatchStrategy::GlushkovDfa).unwrap();
        for strategy in strategies {
            let model = DeterministicRegex::compile_with(input, strategy).unwrap();
            for w in &words {
                assert_eq!(
                    model.matches(w),
                    reference.matches(w),
                    "{strategy:?} on {w:?}"
                );
            }
        }
    }

    #[test]
    fn strategy_switching_shares_the_artifact() {
        let model = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
        let switched = model.with_strategy(MatchStrategy::ColoredAncestor).unwrap();
        // Same Arc: nothing upstream of matcher construction was redone.
        assert!(Arc::ptr_eq(model.compiled(), switched.compiled()));
        assert_eq!(switched.strategy(), MatchStrategy::ColoredAncestor);
        for w in [vec!["b", "a"], vec!["a", "c", "b", "a"], vec!["a", "b"]] {
            assert_eq!(model.matches(&w), switched.matches(&w), "{w:?}");
        }
        // And back through every strategy, still on the same artifact.
        for strategy in [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::GlushkovDfa,
            MatchStrategy::Auto,
        ] {
            let again = switched.with_strategy(strategy).unwrap();
            assert!(Arc::ptr_eq(model.compiled(), again.compiled()));
        }
    }

    #[test]
    fn dtd_plus_models_get_linear_matchers_and_a_certificate() {
        // `author+` used to classify the model as "counting", routing it to
        // the unrolled-NFA simulation with a misleading GlushkovDfa report.
        let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
        assert!(!model.stats().counting);
        assert_eq!(model.strategy(), MatchStrategy::KOccurrence);
        assert!(model.certificate().is_some(), "plus models are certified");
        assert!(model.matches(&["title", "author", "author", "author", "date"]));
        assert!(!model.matches(&["title", "date"]));
        // Every applicable strategy agrees on the plus model; the path
        // decomposition is proven for the `∗`-only grammar and reports
        // itself not applicable.
        let words: Vec<Vec<&str>> = vec![
            vec!["title", "author"],
            vec!["title", "author", "author", "year"],
            vec!["title"],
            vec!["author"],
            vec![],
        ];
        for strategy in [MatchStrategy::ColoredAncestor, MatchStrategy::GlushkovDfa] {
            let switched = model.with_strategy(strategy).unwrap();
            for w in &words {
                assert_eq!(switched.matches(w), model.matches(w), "{strategy:?} {w:?}");
            }
        }
        assert!(matches!(
            model.with_strategy(MatchStrategy::PathDecomposition),
            Err(RegexError::StrategyNotApplicable(_))
        ));
    }

    #[test]
    fn counted_expressions_match_their_true_language() {
        let model = DeterministicRegex::compile("(a b){2,2} a (b + d)").unwrap();
        assert!(model.matches(&["a", "b", "a", "b", "a", "d"]));
        assert!(model.matches(&["a", "b", "a", "b", "a", "b"]));
        // Only exactly two iterations are allowed.
        assert!(!model.matches(&["a", "b", "a", "d"]));
        assert!(!model.matches(&["a", "b", "a", "b", "a", "b", "a", "d"]));
    }

    #[test]
    fn star_free_batch_validation() {
        let model = DeterministicRegex::compile("(a + b) (c + d)? e?").unwrap();
        let sigma = model.alphabet();
        let to_word = |names: &[&str]| -> Vec<redet_syntax::Symbol> {
            names.iter().map(|n| sigma.lookup(n).unwrap()).collect()
        };
        let words = vec![
            to_word(&["a"]),
            to_word(&["a", "c", "e"]),
            to_word(&["b", "d"]),
            to_word(&["c"]),
            to_word(&["a", "e", "c"]),
        ];
        assert_eq!(
            model.matches_all(&words),
            vec![true, true, true, false, false]
        );
    }

    #[test]
    fn strategy_not_applicable_errors() {
        match DeterministicRegex::compile_with("(a b)*", MatchStrategy::StarFree) {
            Err(RegexError::StrategyNotApplicable(_)) => {}
            other => panic!("expected StrategyNotApplicable, got {other:?}"),
        }
    }

    #[test]
    fn normalization_is_applied() {
        let model = DeterministicRegex::compile("((a?)*)?").unwrap();
        assert!(model.matches(&[]));
        assert!(model.matches(&["a", "a", "a"]));
        assert!(model.stats().nullable);
    }

    #[test]
    fn invalid_syntax_is_reported() {
        assert!(matches!(
            DeterministicRegex::compile("(a b"),
            Err(RegexError::Parse(_))
        ));
        assert!(matches!(
            DeterministicRegex::compile("a{0,0}"),
            Err(RegexError::Syntax(_))
        ));
    }
}
