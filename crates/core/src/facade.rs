//! High-level entry point: a thin driver over the compilation
//! [`Pipeline`](crate::pipeline::Pipeline) that picks a matching algorithm
//! and validates words — in whole-word form or incrementally through
//! [`MatchSession`] cursors.
//!
//! All the heavy lifting — interning, parsing, normalization, the shared
//! parse-tree analysis, determinism certification — happens once in the
//! pipeline and is captured in an [`Arc<CompiledAnalysis>`]; this module
//! only chooses a strategy and builds the (cheap) strategy-specific
//! structures on top of the artifact. Consequently, switching strategies on
//! an already-compiled expression ([`DeterministicRegex::with_strategy`])
//! never re-parses or re-analyzes.
//!
//! # Incremental sessions
//!
//! [`DeterministicRegex::start`] opens a cursor that consumes a word one
//! symbol at a time — the shape a streaming document validator needs:
//!
//! ```
//! use redet_core::DeterministicRegex;
//! use redet_automata::Step;
//!
//! let model = DeterministicRegex::compile("(title, author+, year?)").unwrap();
//! let title = model.alphabet().lookup("title").unwrap();
//! let author = model.alphabet().lookup("author").unwrap();
//!
//! let mut session = model.start();
//! assert!(session.feed(title).is_advanced());
//! assert!(session.feed(author).is_advanced());
//! assert!(session.accepts());
//! // `title` cannot appear again: rejection carries the event index, and
//! // by determinism no extension of the prefix can ever be accepted.
//! let witness = session.feed(title).witness().unwrap();
//! assert_eq!(witness.event, 2);
//! ```

use crate::diagnostics::{Code, Diagnostic};
use crate::matcher::colored::ColoredAncestorMatcher;
use crate::matcher::kocc::KOccurrenceMatcher;
use crate::matcher::pathdecomp::{PathDecompositionError, PathDecompositionMatcher};
use crate::matcher::starfree::StarFreeMatcher;
use crate::matcher::PositionMatcher;
use crate::pipeline::CompiledAnalysis;
use redet_automata::{
    GlushkovDfaMatcher, Matcher, NfaScratch, NfaSession, NfaSimulationMatcher, NfaState,
    PosSession, PosState, PosStepper, RejectWitness, Session, Step,
};
use redet_syntax::{Alphabet, ExprStats, Regex, Symbol};
use redet_tree::{PosId, TreeAnalysis};
use std::fmt;
use std::sync::Arc;

/// Which transition-simulation algorithm backs a compiled expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Pick automatically from the expression's structural statistics
    /// (star-free → Theorem 4.12; small `k` → Theorem 4.3; small
    /// alternation depth → Theorem 4.10; otherwise Theorem 4.2; counted
    /// expressions → the unrolled simulation).
    #[default]
    Auto,
    /// The star-free forward sweep (Theorem 4.12).
    StarFree,
    /// The bounded-occurrence scan (Theorem 4.3).
    KOccurrence,
    /// The path-decomposition matcher (Theorem 4.10).
    PathDecomposition,
    /// The lowest-colored-ancestor matcher (Theorem 4.2).
    ColoredAncestor,
    /// The Glushkov DFA baseline (`O(σ|e|)` preprocessing).
    GlushkovDfa,
    /// The set-of-positions simulation of the unrolled expression — the only
    /// strategy applicable to counted expressions (`e{i,j}`), because
    /// unrolling preserves the language but not determinism. Counted
    /// expressions always report this strategy, whatever was requested.
    CountedSimulation,
}

enum MatcherImpl {
    StarFree(PositionMatcher<StarFreeMatcher>),
    KOccurrence(PositionMatcher<KOccurrenceMatcher>),
    PathDecomposition(PositionMatcher<PathDecompositionMatcher>),
    ColoredAncestor(PositionMatcher<ColoredAncestorMatcher>),
    GlushkovDfa(GlushkovDfaMatcher),
    /// Counted expressions are matched by simulating the Glushkov automaton
    /// of the (language-preserving) unrolled expression, because unrolling
    /// does not preserve determinism. The simulation is built once by the
    /// pipeline and shared.
    CountedNfa(Arc<NfaSimulationMatcher>),
}

/// Reusable buffers for [`DeterministicRegex`] sessions. Only the
/// counted-expression simulation actually uses them; recycling one scratch
/// across sessions keeps steady-state streaming allocation-free for every
/// strategy.
#[derive(Debug, Default)]
pub struct MatchScratch {
    nfa: NfaScratch,
}

impl MatchScratch {
    /// Creates an empty scratch (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The suspended state of a [`MatchSession`]: plain owned data with no
/// borrow of the expression, so a session can be parked per connection (in
/// a slab, a map, across an `await` point…) and picked back up later with
/// [`DeterministicRegex::resume`].
///
/// A state is only meaningful to the expression **and strategy** that
/// produced it — positions index the producing matcher's marked expression.
/// [`DeterministicRegex::resume`] checks the strategy and panics on a
/// mismatch; resuming on a different expression that happens to share the
/// strategy is an unchecked logic error.
#[derive(Debug)]
#[must_use = "a suspended session does nothing until resumed"]
pub struct MatchState {
    strategy: MatchStrategy,
    imp: StateImpl,
    /// The scratch that travelled with the session (position-cursor
    /// strategies), preserved across suspend/resume cycles.
    spare: Option<MatchScratch>,
}

#[derive(Debug)]
enum StateImpl {
    /// All five position-machine strategies share the `PosSession` cursor,
    /// hence one state shape.
    Pos(PosState),
    /// The counted simulation's owned position sets.
    Counted(NfaState),
}

impl MatchState {
    /// The strategy of the expression this state was suspended from (and
    /// the only strategy it can be resumed on).
    pub fn strategy(&self) -> MatchStrategy {
        self.strategy
    }
}

enum SessionImpl<'m> {
    StarFree(PosSession<'m, PositionMatcher<StarFreeMatcher>>),
    KOccurrence(PosSession<'m, PositionMatcher<KOccurrenceMatcher>>),
    PathDecomposition(PosSession<'m, PositionMatcher<PathDecompositionMatcher>>),
    ColoredAncestor(PosSession<'m, PositionMatcher<ColoredAncestorMatcher>>),
    GlushkovDfa(PosSession<'m, GlushkovDfaMatcher>),
    Counted(NfaSession<'m>),
}

/// An incremental matching cursor over a [`DeterministicRegex`]: feed the
/// word one symbol at a time ([`MatchSession::feed`]), test membership of
/// the prefix at any point ([`MatchSession::accepts`]). Because the
/// expression is deterministic, a [`Step::Rejected`] outcome is final — no
/// extension of the rejected prefix belongs to the language.
pub struct MatchSession<'m> {
    imp: SessionImpl<'m>,
    /// The caller's scratch, held for return by variants that don't consume
    /// it (all position-cursor strategies).
    spare: Option<MatchScratch>,
}

impl MatchSession<'_> {
    /// Consumes one symbol; see [`Session::feed`].
    pub fn feed(&mut self, symbol: Symbol) -> Step {
        match &mut self.imp {
            SessionImpl::StarFree(s) => s.feed(symbol),
            SessionImpl::KOccurrence(s) => s.feed(symbol),
            SessionImpl::PathDecomposition(s) => s.feed(symbol),
            SessionImpl::ColoredAncestor(s) => s.feed(symbol),
            SessionImpl::GlushkovDfa(s) => s.feed(symbol),
            SessionImpl::Counted(s) => s.feed(symbol),
        }
    }

    /// Whether the word fed so far belongs to the content model.
    pub fn accepts(&self) -> bool {
        match &self.imp {
            SessionImpl::StarFree(s) => s.accepts(),
            SessionImpl::KOccurrence(s) => s.accepts(),
            SessionImpl::PathDecomposition(s) => s.accepts(),
            SessionImpl::ColoredAncestor(s) => s.accepts(),
            SessionImpl::GlushkovDfa(s) => s.accepts(),
            SessionImpl::Counted(s) => s.accepts(),
        }
    }

    /// Number of symbols successfully consumed so far.
    pub fn events(&self) -> usize {
        match &self.imp {
            SessionImpl::StarFree(s) => s.events(),
            SessionImpl::KOccurrence(s) => s.events(),
            SessionImpl::PathDecomposition(s) => s.events(),
            SessionImpl::ColoredAncestor(s) => s.events(),
            SessionImpl::GlushkovDfa(s) => s.events(),
            SessionImpl::Counted(s) => s.events(),
        }
    }

    /// The witness of the first rejection, if the session is dead.
    pub fn rejection(&self) -> Option<RejectWitness> {
        match &self.imp {
            SessionImpl::StarFree(s) => s.rejection(),
            SessionImpl::KOccurrence(s) => s.rejection(),
            SessionImpl::PathDecomposition(s) => s.rejection(),
            SessionImpl::ColoredAncestor(s) => s.rejection(),
            SessionImpl::GlushkovDfa(s) => s.rejection(),
            SessionImpl::Counted(s) => s.rejection(),
        }
    }

    /// Closes the session, recovering the scratch for reuse.
    pub fn into_scratch(self) -> MatchScratch {
        match self.imp {
            SessionImpl::Counted(s) => MatchScratch {
                nfa: s.into_scratch(),
            },
            _ => self.spare.unwrap_or_default(),
        }
    }

    /// Suspends the session into a plain-data [`MatchState`] with no borrow
    /// of the expression, so it can be parked per connection and resumed
    /// later with [`DeterministicRegex::resume`]. The scratch travels with
    /// the state — a suspend/resume cycle allocates nothing.
    pub fn into_state(self) -> MatchState {
        let (strategy, imp) = match self.imp {
            SessionImpl::StarFree(s) => (MatchStrategy::StarFree, StateImpl::Pos(s.into_state())),
            SessionImpl::KOccurrence(s) => {
                (MatchStrategy::KOccurrence, StateImpl::Pos(s.into_state()))
            }
            SessionImpl::PathDecomposition(s) => (
                MatchStrategy::PathDecomposition,
                StateImpl::Pos(s.into_state()),
            ),
            SessionImpl::ColoredAncestor(s) => (
                MatchStrategy::ColoredAncestor,
                StateImpl::Pos(s.into_state()),
            ),
            SessionImpl::GlushkovDfa(s) => {
                (MatchStrategy::GlushkovDfa, StateImpl::Pos(s.into_state()))
            }
            SessionImpl::Counted(s) => (
                MatchStrategy::CountedSimulation,
                StateImpl::Counted(s.into_state()),
            ),
        };
        MatchState {
            strategy,
            imp,
            spare: self.spare,
        }
    }
}

impl Session for MatchSession<'_> {
    type Scratch = MatchScratch;

    fn feed(&mut self, symbol: Symbol) -> Step {
        MatchSession::feed(self, symbol)
    }

    fn accepts(&self) -> bool {
        MatchSession::accepts(self)
    }

    fn events(&self) -> usize {
        MatchSession::events(self)
    }

    fn rejection(&self) -> Option<RejectWitness> {
        MatchSession::rejection(self)
    }

    fn into_scratch(self) -> MatchScratch {
        MatchSession::into_scratch(self)
    }
}

impl fmt::Debug for MatchSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatchSession")
            .field("events", &self.events())
            .field("rejection", &self.rejection())
            .finish()
    }
}

/// A compiled deterministic regular expression (content model): parsing,
/// normalization, the linear-time determinism check of Theorem 3.5, and a
/// matching algorithm chosen from Section 4.
///
/// ```
/// use redet_core::DeterministicRegex;
///
/// let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
/// assert!(model.matches(&["title", "author", "author", "year"]));
/// assert!(!model.matches(&["title", "year"]));
///
/// // Non-deterministic content models are rejected with a diagnostic
/// // carrying the conflict witness and its source spans.
/// let diag = DeterministicRegex::compile("(a* b a + b b)*").unwrap_err();
/// assert_eq!(diag.code(), redet_core::Code::NotDeterministic);
/// ```
pub struct DeterministicRegex {
    compiled: Arc<CompiledAnalysis>,
    strategy: MatchStrategy,
    matcher: MatcherImpl,
}

impl DeterministicRegex {
    /// Parses, normalizes, checks determinism and prepares a matcher,
    /// selecting the algorithm automatically.
    pub fn compile(input: &str) -> Result<Self, Diagnostic> {
        Self::compile_with(input, MatchStrategy::Auto)
    }

    /// Like [`Self::compile`] with an explicit matching strategy.
    pub fn compile_with(input: &str, strategy: MatchStrategy) -> Result<Self, Diagnostic> {
        Self::from_compiled(CompiledAnalysis::compile(input)?, strategy)
    }

    /// Compiles an already-built AST (sharing an alphabet with other content
    /// models of the same schema).
    pub fn from_regex(regex: Regex, alphabet: Alphabet) -> Result<Self, Diagnostic> {
        Self::from_regex_with(regex, alphabet, MatchStrategy::Auto)
    }

    /// Like [`Self::from_regex`] with an explicit matching strategy.
    pub fn from_regex_with(
        regex: Regex,
        alphabet: Alphabet,
        strategy: MatchStrategy,
    ) -> Result<Self, Diagnostic> {
        Self::from_compiled(CompiledAnalysis::from_regex(regex, alphabet)?, strategy)
    }

    /// Attaches a matcher to a shared pipeline artifact. This is the only
    /// constructor that does real work, and the work is limited to the
    /// strategy-specific structures — the artifact already carries the
    /// parse-tree analysis and the determinism certificate.
    pub fn from_compiled(
        compiled: Arc<CompiledAnalysis>,
        strategy: MatchStrategy,
    ) -> Result<Self, Diagnostic> {
        // Counted expressions are matched by the cached unrolled simulation
        // whatever was requested; report that honestly instead of echoing
        // the requested strategy.
        let chosen = if compiled.counted_simulation().is_some() {
            MatchStrategy::CountedSimulation
        } else {
            match strategy {
                MatchStrategy::Auto => Self::auto_strategy(compiled.stats()),
                other => other,
            }
        };
        let matcher = Self::build_matcher(&compiled, chosen)?;
        Ok(DeterministicRegex {
            compiled,
            strategy: chosen,
            matcher,
        })
    }

    /// Re-targets the expression at a different matching strategy, sharing
    /// every stage of the compilation — no re-parse, no re-normalization, no
    /// re-analysis, no re-certification.
    pub fn with_strategy(&self, strategy: MatchStrategy) -> Result<Self, Diagnostic> {
        Self::from_compiled(self.compiled.clone(), strategy)
    }

    fn auto_strategy(stats: &ExprStats) -> MatchStrategy {
        if stats.counting {
            MatchStrategy::CountedSimulation
        } else if stats.star_free {
            MatchStrategy::StarFree
        } else if stats.max_occurrences <= 4 {
            MatchStrategy::KOccurrence
        } else if stats.plus_depth <= 8 && !stats.has_plus {
            // The path decomposition is proven for the `∗`-only grammar;
            // expressions with native `e+` take the colored-ancestor route.
            MatchStrategy::PathDecomposition
        } else {
            MatchStrategy::ColoredAncestor
        }
    }

    fn not_applicable(why: &str) -> Diagnostic {
        Diagnostic::new(
            Code::StrategyNotApplicable,
            format!("requested matching strategy does not apply: {why}"),
        )
    }

    /// Maps a path-decomposition construction failure to a diagnostic that
    /// says *why* the strategy is out of scope instead of echoing a generic
    /// preprocessing failure. Lemmas 4.5–4.9 are stated for the `∗`-only
    /// grammar of Section 2, where every iterating node is nullable, so a
    /// native `e+` (non-nullable iterator) must be named explicitly.
    fn pathdecomp_not_applicable(
        compiled: &CompiledAnalysis,
        err: PathDecompositionError,
    ) -> Diagnostic {
        match err {
            PathDecompositionError::CountingNotSupported if compiled.stats().has_plus => {
                Self::not_applicable(
                    "the path decomposition (Theorem 4.10) is proven for the `∗`-only \
                     grammar, where every iterating node is nullable; this expression \
                     contains the non-nullable iterator `e+` — use the k-occurrence or \
                     colored-ancestor matcher (automatic selection routes `e+` models \
                     there)",
                )
            }
            PathDecompositionError::CountingNotSupported => Self::not_applicable(
                "numeric occurrence indicators must be unrolled before path-decomposition \
                 matching",
            ),
            PathDecompositionError::Collision { .. } => {
                Self::not_applicable("path decomposition preprocessing failed")
            }
        }
    }

    fn build_matcher(
        compiled: &Arc<CompiledAnalysis>,
        strategy: MatchStrategy,
    ) -> Result<MatcherImpl, Diagnostic> {
        Ok(match strategy {
            MatchStrategy::Auto => unreachable!("Auto is resolved before building"),
            MatchStrategy::StarFree => MatcherImpl::StarFree(PositionMatcher::new(
                StarFreeMatcher::from_compiled(compiled).map_err(|_| {
                    Self::not_applicable("the expression contains an iterating operator")
                })?,
            )),
            MatchStrategy::KOccurrence => MatcherImpl::KOccurrence(PositionMatcher::new(
                KOccurrenceMatcher::from_compiled(compiled),
            )),
            MatchStrategy::PathDecomposition => {
                MatcherImpl::PathDecomposition(PositionMatcher::new(
                    PathDecompositionMatcher::from_compiled(compiled)
                        .map_err(|err| Self::pathdecomp_not_applicable(compiled, err))?,
                ))
            }
            MatchStrategy::ColoredAncestor => MatcherImpl::ColoredAncestor(PositionMatcher::new(
                ColoredAncestorMatcher::from_compiled(compiled).map_err(|_| {
                    Self::not_applicable(
                        "no determinism certificate is available for this expression",
                    )
                })?,
            )),
            MatchStrategy::GlushkovDfa => MatcherImpl::GlushkovDfa(
                GlushkovDfaMatcher::from_tree(compiled.analysis().tree())
                    .map_err(|_| Self::not_applicable("expression is not deterministic"))?,
            ),
            MatchStrategy::CountedSimulation => MatcherImpl::CountedNfa(
                compiled
                    .counted_simulation()
                    .ok_or_else(|| {
                        Self::not_applicable(
                            "the expression has no numeric occurrence indicators; \
                             use one of the linear matchers",
                        )
                    })?
                    .clone(),
            ),
        })
    }

    /// The shared compilation artifact backing this expression.
    pub fn compiled(&self) -> &Arc<CompiledAnalysis> {
        &self.compiled
    }

    /// The interned alphabet of the expression.
    pub fn alphabet(&self) -> &Alphabet {
        self.compiled.alphabet()
    }

    /// The normalized abstract syntax tree.
    pub fn regex(&self) -> &Regex {
        self.compiled.regex()
    }

    /// Structural statistics (`k`, `c_e`, star-freedom, σ, …).
    pub fn stats(&self) -> &ExprStats {
        self.compiled.stats()
    }

    /// The preprocessed parse tree (Theorem 2.4 queries and friends).
    pub fn analysis(&self) -> &TreeAnalysis {
        self.compiled.analysis()
    }

    /// The determinism certificate (colors and skeleta), when the expression
    /// is counting-free.
    pub fn certificate(&self) -> Option<&crate::determinism::DeterminismCertificate> {
        self.compiled.certificate().map(|c| c.as_ref())
    }

    /// The matching strategy in use. Counted expressions always report
    /// [`MatchStrategy::CountedSimulation`] — the algorithm that actually
    /// runs — regardless of the strategy requested at compile time.
    pub fn strategy(&self) -> MatchStrategy {
        self.strategy
    }

    /// The state of the position machine before any symbol has been read
    /// (the phantom `#`), or `None` for counted expressions, whose per-word
    /// state is a position *set* (see [`Self::counted_matcher`]).
    ///
    /// Together with [`Self::pos_advance`] and [`Self::pos_can_end`] this is
    /// the **flat stepping interface**: the caller keeps the `PosId` and the
    /// per-symbol step is a single enum dispatch straight into the
    /// strategy's `find_next` — no session object, no scratch hand-off, no
    /// sticky-rejection bookkeeping. It exists for hot loops that manage
    /// many concurrent cursors themselves (the schema validator holds one
    /// per open element); everyone else should use [`Self::start`].
    #[inline]
    #[must_use]
    pub fn pos_begin(&self) -> Option<PosId> {
        match &self.matcher {
            MatcherImpl::StarFree(m) => Some(m.begin()),
            MatcherImpl::KOccurrence(m) => Some(m.begin()),
            MatcherImpl::PathDecomposition(m) => Some(m.begin()),
            MatcherImpl::ColoredAncestor(m) => Some(m.begin()),
            MatcherImpl::GlushkovDfa(m) => Some(m.begin()),
            MatcherImpl::CountedNfa(_) => None,
        }
    }

    /// The unique `symbol`-labeled position following `p`, or `None` if the
    /// symbol cannot be read at this point (by determinism, no extension of
    /// the word read so far is in the language). For counted expressions —
    /// which have no single-position machine — this is always `None`; feed
    /// the [`Self::counted_matcher`] instead.
    #[inline]
    pub fn pos_advance(&self, p: PosId, symbol: Symbol) -> Option<PosId> {
        match &self.matcher {
            MatcherImpl::StarFree(m) => m.advance(p, symbol),
            MatcherImpl::KOccurrence(m) => m.advance(p, symbol),
            MatcherImpl::PathDecomposition(m) => m.advance(p, symbol),
            MatcherImpl::ColoredAncestor(m) => m.advance(p, symbol),
            MatcherImpl::GlushkovDfa(m) => m.advance(p, symbol),
            MatcherImpl::CountedNfa(_) => None,
        }
    }

    /// Whether a word may end at position `p` (`$ ∈ Follow(p)`). `false`
    /// for counted expressions (see [`Self::pos_advance`]).
    #[inline]
    pub fn pos_can_end(&self, p: PosId) -> bool {
        match &self.matcher {
            MatcherImpl::StarFree(m) => m.can_end(p),
            MatcherImpl::KOccurrence(m) => m.can_end(p),
            MatcherImpl::PathDecomposition(m) => m.can_end(p),
            MatcherImpl::ColoredAncestor(m) => m.can_end(p),
            MatcherImpl::GlushkovDfa(m) => m.can_end(p),
            MatcherImpl::CountedNfa(_) => false,
        }
    }

    /// The cached unrolled simulation backing a counted expression
    /// ([`MatchStrategy::CountedSimulation`]), exposing the owned-state
    /// stepping interface ([`NfaSimulationMatcher::reset`] /
    /// [`NfaSimulationMatcher::step`]); `None` for counting-free
    /// expressions, whose state is a single [`PosId`] (see
    /// [`Self::pos_begin`]).
    #[must_use]
    pub fn counted_matcher(&self) -> Option<&NfaSimulationMatcher> {
        match &self.matcher {
            MatcherImpl::CountedNfa(m) => Some(m),
            _ => None,
        }
    }

    /// Opens an incremental matching session with a fresh scratch.
    #[must_use]
    pub fn start(&self) -> MatchSession<'_> {
        self.start_with(MatchScratch::default())
    }

    /// Opens an incremental matching session, taking ownership of `scratch`
    /// (recover it with [`MatchSession::into_scratch`]). Recycling one
    /// scratch across sessions keeps steady-state streaming allocation-free.
    #[must_use]
    pub fn start_with(&self, scratch: MatchScratch) -> MatchSession<'_> {
        match &self.matcher {
            MatcherImpl::StarFree(m) => MatchSession {
                imp: SessionImpl::StarFree(m.start(())),
                spare: Some(scratch),
            },
            MatcherImpl::KOccurrence(m) => MatchSession {
                imp: SessionImpl::KOccurrence(m.start(())),
                spare: Some(scratch),
            },
            MatcherImpl::PathDecomposition(m) => MatchSession {
                imp: SessionImpl::PathDecomposition(m.start(())),
                spare: Some(scratch),
            },
            MatcherImpl::ColoredAncestor(m) => MatchSession {
                imp: SessionImpl::ColoredAncestor(m.start(())),
                spare: Some(scratch),
            },
            MatcherImpl::GlushkovDfa(m) => MatchSession {
                imp: SessionImpl::GlushkovDfa(m.start(())),
                spare: Some(scratch),
            },
            MatcherImpl::CountedNfa(m) => MatchSession {
                imp: SessionImpl::Counted(m.as_ref().start(scratch.nfa)),
                spare: None,
            },
        }
    }

    /// Resumes a session suspended by [`MatchSession::into_state`], picking
    /// the cursor up exactly where it left off (position, event count,
    /// sticky rejection).
    ///
    /// # Panics
    /// Panics if `state` was suspended from an expression with a different
    /// [`MatchStrategy`] — positions are indices into the producing
    /// matcher's marked expression and do not translate. Resuming on a
    /// *different expression* with the same strategy is an unchecked logic
    /// error; only resume states on the `DeterministicRegex` that produced
    /// them.
    #[must_use]
    pub fn resume(&self, state: MatchState) -> MatchSession<'_> {
        assert_eq!(
            state.strategy, self.strategy,
            "MatchState suspended from a {:?} session cannot resume on a {:?} expression",
            state.strategy, self.strategy
        );
        let spare = state.spare;
        match (&self.matcher, state.imp) {
            (MatcherImpl::StarFree(m), StateImpl::Pos(p)) => MatchSession {
                imp: SessionImpl::StarFree(PosSession::resume(m, p)),
                spare,
            },
            (MatcherImpl::KOccurrence(m), StateImpl::Pos(p)) => MatchSession {
                imp: SessionImpl::KOccurrence(PosSession::resume(m, p)),
                spare,
            },
            (MatcherImpl::PathDecomposition(m), StateImpl::Pos(p)) => MatchSession {
                imp: SessionImpl::PathDecomposition(PosSession::resume(m, p)),
                spare,
            },
            (MatcherImpl::ColoredAncestor(m), StateImpl::Pos(p)) => MatchSession {
                imp: SessionImpl::ColoredAncestor(PosSession::resume(m, p)),
                spare,
            },
            (MatcherImpl::GlushkovDfa(m), StateImpl::Pos(p)) => MatchSession {
                imp: SessionImpl::GlushkovDfa(PosSession::resume(m, p)),
                spare,
            },
            (MatcherImpl::CountedNfa(m), StateImpl::Counted(s)) => MatchSession {
                imp: SessionImpl::Counted(m.as_ref().resume(s)),
                spare,
            },
            _ => unreachable!("the strategy check pins the state shape"),
        }
    }

    /// Whether the word, given as element names, belongs to the content
    /// model. Unknown element names immediately reject.
    pub fn matches(&self, word: &[&str]) -> bool {
        match self.compiled.to_symbols(word) {
            Some(symbols) => self.matches_symbols(&symbols),
            None => false,
        }
    }

    /// Whether the word, given as interned symbols, belongs to the content
    /// model. A thin loop over [`Self::start`] — the single matching code
    /// path shared with streaming consumers.
    pub fn matches_symbols(&self, word: &[Symbol]) -> bool {
        self.matches_symbols_with(word, &mut MatchScratch::default())
    }

    /// Like [`Self::matches_symbols`] with caller-owned scratch — the
    /// zero-allocation form for compile-once/match-many loops.
    pub fn matches_symbols_with(&self, word: &[Symbol], scratch: &mut MatchScratch) -> bool {
        let mut session = self.start_with(std::mem::take(scratch));
        let mut viable = true;
        for &sym in word {
            if !session.feed(sym).is_advanced() {
                viable = false;
                break;
            }
        }
        let accepted = viable && session.accepts();
        *scratch = session.into_scratch();
        accepted
    }

    /// Validates a batch of words. Star-free expressions use the
    /// single-traversal multi-word algorithm of Theorem 4.12; other
    /// expressions fall back to word-by-word matching.
    pub fn matches_all<W: AsRef<[Symbol]>>(&self, words: &[W]) -> Vec<bool> {
        if let MatcherImpl::StarFree(m) = &self.matcher {
            return m.sim().match_words(words);
        }
        words
            .iter()
            .map(|w| self.matches_symbols(w.as_ref()))
            .collect()
    }
}

impl fmt::Debug for DeterministicRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeterministicRegex")
            .field("strategy", &self.strategy)
            .field("stats", self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_match_dtd_model() {
        let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
        assert!(model.matches(&["title", "author"]));
        assert!(model.matches(&["title", "author", "author", "date"]));
        assert!(!model.matches(&["title"]));
        assert!(!model.matches(&["title", "author", "year", "date"]));
        assert!(!model.matches(&["title", "unknown-element"]));
    }

    #[test]
    fn rejects_nondeterministic_models() {
        for input in ["(a* b a + b b)*", "a b* b", "(a b){1,2} a"] {
            let diag = DeterministicRegex::compile(input)
                .map(|_| ())
                .expect_err(input);
            assert_eq!(diag.code(), Code::NotDeterministic, "{input}");
        }
    }

    #[test]
    fn strategy_selection() {
        let star_free = DeterministicRegex::compile("(a + b) (c + d)?").unwrap();
        assert_eq!(star_free.strategy(), MatchStrategy::StarFree);

        let small_k = DeterministicRegex::compile("(a b + b b? a)*").unwrap();
        assert_eq!(small_k.strategy(), MatchStrategy::KOccurrence);

        // Many occurrences of a (k = 5) with small alternation depth and a
        // star (so the star-free and k-occurrence strategies do not apply).
        let path = DeterministicRegex::compile(
            "(a x1 + b y1)(a x2 + b y2)(a x3 + b y3)(a x4 + b y4)(a x5 + b y5) r*",
        )
        .unwrap();
        assert_eq!(path.strategy(), MatchStrategy::PathDecomposition);
    }

    #[test]
    fn explicit_strategies_agree() {
        let input = "(c?((a b*)(a? c)))*(b a)";
        let words: Vec<Vec<&str>> = vec![
            vec!["b", "a"],
            vec!["a", "c", "b", "a"],
            vec!["c", "a", "c", "b", "a"],
            vec!["a", "b", "b", "a", "c", "b", "a"],
            vec!["a", "b"],
            vec![],
            vec!["c", "c"],
        ];
        let strategies = [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::ColoredAncestor,
            MatchStrategy::GlushkovDfa,
        ];
        let reference =
            DeterministicRegex::compile_with(input, MatchStrategy::GlushkovDfa).unwrap();
        for strategy in strategies {
            let model = DeterministicRegex::compile_with(input, strategy).unwrap();
            for w in &words {
                assert_eq!(
                    model.matches(w),
                    reference.matches(w),
                    "{strategy:?} on {w:?}"
                );
            }
        }
    }

    #[test]
    fn strategy_switching_shares_the_artifact() {
        let model = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
        let switched = model.with_strategy(MatchStrategy::ColoredAncestor).unwrap();
        // Same Arc: nothing upstream of matcher construction was redone.
        assert!(Arc::ptr_eq(model.compiled(), switched.compiled()));
        assert_eq!(switched.strategy(), MatchStrategy::ColoredAncestor);
        for w in [vec!["b", "a"], vec!["a", "c", "b", "a"], vec!["a", "b"]] {
            assert_eq!(model.matches(&w), switched.matches(&w), "{w:?}");
        }
        // And back through every strategy, still on the same artifact.
        for strategy in [
            MatchStrategy::KOccurrence,
            MatchStrategy::PathDecomposition,
            MatchStrategy::GlushkovDfa,
            MatchStrategy::Auto,
        ] {
            let again = switched.with_strategy(strategy).unwrap();
            assert!(Arc::ptr_eq(model.compiled(), again.compiled()));
        }
    }

    #[test]
    fn sessions_agree_with_whole_word_matching() {
        let model = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
        let sigma = model.alphabet();
        let word: Vec<Symbol> = ["c", "a", "c", "b", "a"]
            .iter()
            .map(|n| sigma.lookup(n).unwrap())
            .collect();
        let mut session = model.start();
        for (i, &sym) in word.iter().enumerate() {
            assert!(session.feed(sym).is_advanced(), "event {i}");
            assert_eq!(session.events(), i + 1);
        }
        assert!(session.accepts());
        assert!(model.matches_symbols(&word));
        // Scratch round-trips through sessions.
        let scratch = session.into_scratch();
        let again = model.start_with(scratch);
        assert!(!again.accepts());
    }

    #[test]
    fn sessions_suspend_and_resume_without_a_borrow() {
        // Every strategy kind: position cursors and the counted simulation.
        let inputs = [
            ("(c?((a b*)(a? c)))*(b a)", vec!["c", "a", "c", "b", "a"]),
            ("(a b){2,3} c", vec!["a", "b", "a", "b", "c"]),
        ];
        for (input, word) in inputs {
            let model = DeterministicRegex::compile(input).unwrap();
            let sigma = model.alphabet();
            let word: Vec<Symbol> = word.iter().map(|n| sigma.lookup(n).unwrap()).collect();
            let (head, tail) = word.split_at(2);
            let mut session = model.start();
            for &sym in head {
                assert!(session.feed(sym).is_advanced());
            }
            // Suspend: the state outlives the session and carries no borrow
            // of `model` (it can be stored, sent, parked per connection).
            let state = session.into_state();
            assert_eq!(state.strategy(), model.strategy());
            let mut session = model.resume(state);
            assert_eq!(session.events(), head.len());
            for &sym in tail {
                assert!(session.feed(sym).is_advanced(), "{input}");
            }
            assert!(session.accepts(), "{input}");
            // Rejection is preserved across suspend/resume too.
            let dead = sigma.lookup("c").unwrap();
            let w = session.feed(dead).witness().unwrap();
            let resumed = model.resume(session.into_state());
            assert_eq!(resumed.rejection(), Some(w));
            assert!(!resumed.accepts());
        }
    }

    #[test]
    #[should_panic(expected = "cannot resume")]
    fn resume_checks_the_strategy() {
        let model = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
        let state = model.start().into_state();
        let other = model.with_strategy(MatchStrategy::ColoredAncestor).unwrap();
        let _ = other.resume(state);
    }

    #[test]
    fn early_reject_is_sticky_and_witnessed() {
        let model = DeterministicRegex::compile("(title, author+, year?)").unwrap();
        let sigma = model.alphabet();
        let title = sigma.lookup("title").unwrap();
        let year = sigma.lookup("year").unwrap();
        let mut session = model.start();
        assert!(session.feed(title).is_advanced());
        // `year` cannot follow `title` directly.
        let w = session.feed(year).witness().unwrap();
        assert_eq!((w.event, w.symbol), (1, year));
        assert!(!session.accepts());
        // Dead session: same witness forever, even for viable symbols.
        assert_eq!(session.feed(title).witness(), Some(w));
        assert_eq!(session.rejection(), Some(w));
    }

    #[test]
    fn dtd_plus_models_get_linear_matchers_and_a_certificate() {
        // `author+` used to classify the model as "counting", routing it to
        // the unrolled-NFA simulation with a misleading GlushkovDfa report.
        let model = DeterministicRegex::compile("(title, author+, (year | date)?)").unwrap();
        assert!(!model.stats().counting);
        assert_eq!(model.strategy(), MatchStrategy::KOccurrence);
        assert!(model.certificate().is_some(), "plus models are certified");
        assert!(model.matches(&["title", "author", "author", "author", "date"]));
        assert!(!model.matches(&["title", "date"]));
        // Every applicable strategy agrees on the plus model; the path
        // decomposition is proven for the `∗`-only grammar and reports
        // itself not applicable.
        let words: Vec<Vec<&str>> = vec![
            vec!["title", "author"],
            vec!["title", "author", "author", "year"],
            vec!["title"],
            vec!["author"],
            vec![],
        ];
        for strategy in [MatchStrategy::ColoredAncestor, MatchStrategy::GlushkovDfa] {
            let switched = model.with_strategy(strategy).unwrap();
            for w in &words {
                assert_eq!(switched.matches(w), model.matches(w), "{strategy:?} {w:?}");
            }
        }
        assert_eq!(
            model
                .with_strategy(MatchStrategy::PathDecomposition)
                .unwrap_err()
                .code(),
            Code::StrategyNotApplicable
        );
    }

    #[test]
    fn flat_stepping_interface_agrees_with_sessions() {
        let model = DeterministicRegex::compile("(c?((a b*)(a? c)))*(b a)").unwrap();
        let sigma = model.alphabet();
        let word: Vec<Symbol> = ["c", "a", "c", "b", "a"]
            .iter()
            .map(|n| sigma.lookup(n).unwrap())
            .collect();
        let mut pos = model.pos_begin().expect("counting-free");
        let mut session = model.start();
        for &sym in &word {
            assert_eq!(model.pos_can_end(pos), session.accepts());
            pos = model.pos_advance(pos, sym).expect("member word");
            assert!(session.feed(sym).is_advanced());
        }
        assert!(model.pos_can_end(pos));
        assert!(session.accepts());
        // A symbol with no continuation: the flat interface returns None
        // where the session rejects.
        let c = sigma.lookup("c").unwrap();
        assert_eq!(model.pos_advance(pos, c), None);
        assert!(!session.feed(c).is_advanced());
        assert!(model.counted_matcher().is_none());

        // Counted expressions have no position machine; the owned-state
        // simulation is exposed instead.
        let counted = DeterministicRegex::compile("(a b){2,3} c").unwrap();
        assert!(counted.pos_begin().is_none());
        let nfa = counted.counted_matcher().expect("counted simulation");
        let sigma = counted.alphabet();
        let (a, b, c) = (
            sigma.lookup("a").unwrap(),
            sigma.lookup("b").unwrap(),
            sigma.lookup("c").unwrap(),
        );
        let mut state = NfaScratch::new();
        nfa.reset(&mut state);
        for sym in [a, b, a, b, c] {
            assert!(nfa.step(&mut state, sym), "member word");
        }
        assert!(nfa.state_accepts(&state));
        // One more `c` kills the state: step reports it and leaves the set
        // untouched.
        assert!(!nfa.step(&mut state, c));
        assert!(nfa.state_accepts(&state), "state unchanged after rejection");
    }

    #[test]
    fn counted_expressions_match_their_true_language() {
        let model = DeterministicRegex::compile("(a b){2,2} a (b + d)").unwrap();
        assert!(model.matches(&["a", "b", "a", "b", "a", "d"]));
        assert!(model.matches(&["a", "b", "a", "b", "a", "b"]));
        // Only exactly two iterations are allowed.
        assert!(!model.matches(&["a", "b", "a", "d"]));
        assert!(!model.matches(&["a", "b", "a", "b", "a", "b", "a", "d"]));
    }

    #[test]
    fn counted_expressions_report_the_simulation_fallback() {
        // The strategy report is what actually runs — the unrolled
        // simulation — not the requested strategy.
        let model = DeterministicRegex::compile("(a b){2,4} c").unwrap();
        assert_eq!(model.strategy(), MatchStrategy::CountedSimulation);
        for requested in [
            MatchStrategy::KOccurrence,
            MatchStrategy::ColoredAncestor,
            MatchStrategy::GlushkovDfa,
        ] {
            let switched = model.with_strategy(requested).unwrap();
            assert_eq!(
                switched.strategy(),
                MatchStrategy::CountedSimulation,
                "{requested:?}"
            );
        }
        // And the reverse direction: the simulation cannot be requested for
        // counting-free expressions.
        let plain = DeterministicRegex::compile("(a b)*").unwrap();
        assert_eq!(
            plain
                .with_strategy(MatchStrategy::CountedSimulation)
                .unwrap_err()
                .code(),
            Code::StrategyNotApplicable
        );
    }

    #[test]
    fn star_free_batch_validation() {
        let model = DeterministicRegex::compile("(a + b) (c + d)? e?").unwrap();
        let sigma = model.alphabet();
        let to_word = |names: &[&str]| -> Vec<Symbol> {
            names.iter().map(|n| sigma.lookup(n).unwrap()).collect()
        };
        let words = vec![
            to_word(&["a"]),
            to_word(&["a", "c", "e"]),
            to_word(&["b", "d"]),
            to_word(&["c"]),
            to_word(&["a", "e", "c"]),
        ];
        assert_eq!(
            model.matches_all(&words),
            vec![true, true, true, false, false]
        );
    }

    #[test]
    fn strategy_not_applicable_errors() {
        let diag = DeterministicRegex::compile_with("(a b)*", MatchStrategy::StarFree).unwrap_err();
        assert_eq!(diag.code(), Code::StrategyNotApplicable);
    }

    #[test]
    fn normalization_is_applied() {
        let model = DeterministicRegex::compile("((a?)*)?").unwrap();
        assert!(model.matches(&[]));
        assert!(model.matches(&["a", "a", "a"]));
        assert!(model.stats().nullable);
    }

    #[test]
    fn invalid_syntax_is_reported() {
        assert_eq!(
            DeterministicRegex::compile("(a b").unwrap_err().code(),
            Code::Parse
        );
        assert_eq!(
            DeterministicRegex::compile("a{0,0}").unwrap_err().code(),
            Code::Syntax
        );
    }
}
