//! Colors, witnesses and per-symbol skeleta (Section 3.1).
//!
//! The linear-time determinism test cannot afford to look at the
//! quadratically many candidate pairs of equally-labeled positions. Instead
//! it works per symbol `a` on the **a-skeleton** of the parse tree: the
//! LCA-closure of all `a`-positions and all nodes *colored* `a`, extended
//! with their `pSupLast`/`pStar` nodes. The skeleton has size linear in the
//! number of `a`-positions, so all skeleta together have size `O(|e|)`
//! (Lemma 3.1).
//!
//! * a node `n` is **colored** `a` with **witness** `p` when `p` is an
//!   `a`-labeled position and `n = parent(pSupFirst(p))` — by Lemma 2.5 any
//!   `a`-position following some `p₀` is a witness at an ancestor of `p₀`;
//! * **(P1)**: two distinct positions with the same `pSupFirst` must carry
//!   different labels, otherwise the expression is non-deterministic;
//! * `FirstPos(n, a)` — the unique `a`-position in `First(n)`, if any;
//! * `Next(n, a)` — the `a`-positions in `FollowAfter(n)`, computed by
//!   `BuildNext` (Algorithm 1); **(P2)** requires at most one element.

use crate::determinism::{NonDeterminism, NonDeterminismKind};
use redet_syntax::Symbol;
use redet_tree::{NodeId, NodeKind, PosId, TreeAnalysis};

/// The color/witness assignment of Section 3.1 (after checking (P1)).
#[derive(Clone, Debug, Default)]
pub struct ColorAssignment {
    /// `(colored node, color, witness position)` triples, one per alphabet
    /// position of the expression.
    pub assignments: Vec<(NodeId, Symbol, PosId)>,
}

impl ColorAssignment {
    /// Assigns colors and witnesses and checks condition (P1).
    ///
    /// Returns the non-determinism witness if (P1) fails: two distinct
    /// positions with the same label and the same `pSupFirst` node.
    pub fn build(analysis: &TreeAnalysis) -> Result<Self, NonDeterminism> {
        let tree = analysis.tree();
        let props = analysis.props();
        let mut assignments = Vec::with_capacity(tree.num_positions());
        let mut seen: std::collections::HashMap<(NodeId, Symbol), PosId> =
            std::collections::HashMap::with_capacity(tree.num_positions());

        for (pos, sym) in tree.symbol_positions() {
            let leaf = tree.pos_node(pos);
            let sup_first = props
                .p_sup_first(leaf)
                .expect("R1 guarantees pSupFirst is defined inside e′");
            let colored = tree
                .parent(sup_first)
                .expect("pSupFirst nodes have a parent");
            if let Some(&other) = seen.get(&(colored, sym)) {
                return Err(NonDeterminism {
                    kind: NonDeterminismKind::DuplicateFirst,
                    symbol: sym,
                    first: other,
                    second: pos,
                });
            }
            seen.insert((colored, sym), pos);
            assignments.push((colored, sym, pos));
        }
        Ok(ColorAssignment { assignments })
    }

    /// The `(node, color)` pairs, without witnesses — the input expected by
    /// the lowest-colored-ancestor structure.
    pub fn node_colors(&self) -> Vec<(NodeId, Symbol)> {
        self.assignments.iter().map(|&(n, c, _)| (n, c)).collect()
    }
}

/// A node of an a-skeleton.
#[derive(Clone, Debug)]
pub struct SkeletonNode {
    /// The corresponding parse-tree node.
    pub node: NodeId,
    /// Parent in the skeleton (index into [`Skeleton::nodes`]).
    pub parent: Option<u32>,
    /// Left child in the skeleton: the topmost skeleton node lying in the
    /// subtree of the *left* (or only) child of `node` in the parse tree.
    pub lchild: Option<u32>,
    /// Right child in the skeleton (subtree of the right parse-tree child).
    pub rchild: Option<u32>,
    /// `Witness(node, a)` — the witness if `node` has color `a`.
    pub witness: Option<PosId>,
    /// `FirstPos(node, a)` — the unique `a`-position in `First(node)`.
    pub first_pos: Option<PosId>,
    /// `Next(node, a)` — the unique `a`-position in `FollowAfter(node)`
    /// (after (P2) has been verified).
    pub next: Option<PosId>,
}

/// The a-skeleton of the parse tree for one symbol `a` (Section 3.1).
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// The symbol this skeleton belongs to.
    pub symbol: Symbol,
    /// Skeleton nodes sorted by parse-tree preorder (so index 0 is the
    /// skeleton root).
    pub nodes: Vec<SkeletonNode>,
}

impl Skeleton {
    /// Looks up the skeleton entry of a parse-tree node.
    pub fn find(&self, node: NodeId) -> Option<&SkeletonNode> {
        self.nodes
            .binary_search_by_key(&node, |sn| sn.node)
            .ok()
            .map(|i| &self.nodes[i])
    }

    /// Number of skeleton nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the skeleton is empty (never true for symbols that occur).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn build(
        analysis: &TreeAnalysis,
        symbol: Symbol,
        colored: &[(NodeId, PosId)],
    ) -> Result<Self, NonDeterminism> {
        let tree = analysis.tree();
        let props = analysis.props();

        // 1. Seeds: a-positions and a-colored nodes.
        let mut seeds: Vec<NodeId> = tree
            .positions_of_symbol(symbol)
            .iter()
            .map(|&p| tree.pos_node(p))
            .chain(colored.iter().map(|&(n, _)| n))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();

        // 2. LCA closure (class-a nodes): add the LCA of each consecutive
        // pair of seeds in preorder.
        let mut class: Vec<NodeId> = seeds.clone();
        for pair in seeds.windows(2) {
            class.push(analysis.lca().query(pair[0], pair[1]));
        }
        class.sort_unstable();
        class.dedup();

        // 3. Extend with pSupLast and pStar of every class-a node; the
        // result remains LCA-closed (ancestors of an LCA-closed set).
        let mut extended = class.clone();
        for &n in &class {
            if let Some(x) = props.p_sup_last(n) {
                extended.push(x);
            }
            if let Some(x) = props.p_star(n) {
                extended.push(x);
            }
        }
        extended.sort_unstable();
        extended.dedup();

        // 4. Tree structure via a preorder sweep with an ancestor stack.
        let witness_of: std::collections::HashMap<NodeId, PosId> =
            colored.iter().copied().collect();
        let mut nodes: Vec<SkeletonNode> = extended
            .iter()
            .map(|&n| SkeletonNode {
                node: n,
                parent: None,
                lchild: None,
                rchild: None,
                witness: witness_of.get(&n).copied(),
                first_pos: None,
                next: None,
            })
            .collect();
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..nodes.len() {
            let n = nodes[i].node;
            while let Some(&top) = stack.last() {
                if tree.is_strict_ancestor(nodes[top].node, n) {
                    break;
                }
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                nodes[i].parent = Some(top as u32);
                let parent_node = nodes[top].node;
                let is_right = tree
                    .rchild(parent_node)
                    .is_some_and(|r| tree.is_ancestor(r, n));
                if is_right {
                    debug_assert!(nodes[top].rchild.is_none(), "LCA closure violated");
                    nodes[top].rchild = Some(i as u32);
                } else {
                    debug_assert!(nodes[top].lchild.is_none(), "LCA closure violated");
                    nodes[top].lchild = Some(i as u32);
                }
            }
            stack.push(i);
        }

        let mut skeleton = Skeleton { symbol, nodes };
        skeleton.compute_first_pos(analysis)?;
        skeleton.build_next(analysis)?;
        Ok(skeleton)
    }

    /// Computes `FirstPos(n, a)` bottom-up. Two distinct `a`-positions in
    /// the same `First`-set prove non-determinism (see Section 3.1), which is
    /// reported as an error.
    fn compute_first_pos(&mut self, analysis: &TreeAnalysis) -> Result<(), NonDeterminism> {
        let tree = analysis.tree();
        let props = analysis.props();
        for i in (0..self.nodes.len()).rev() {
            let node = self.nodes[i].node;
            let mut candidate: Option<PosId> = None;
            let consider =
                |p: Option<PosId>, candidate: &mut Option<PosId>| -> Option<(PosId, PosId)> {
                    let p = p?;
                    if !props.in_first(tree, p, node) {
                        return None;
                    }
                    match *candidate {
                        None => {
                            *candidate = Some(p);
                            None
                        }
                        Some(existing) if existing == p => None,
                        Some(existing) => Some((existing, p)),
                    }
                };
            // The node itself, if it is an a-position.
            let own = tree
                .node_pos(node)
                .filter(|&p| tree.symbol_at(p) == Some(self.symbol));
            let children = [self.nodes[i].lchild, self.nodes[i].rchild];
            let mut conflict = consider(own, &mut candidate);
            for child in children.into_iter().flatten() {
                if conflict.is_some() {
                    break;
                }
                conflict = consider(self.nodes[child as usize].first_pos, &mut candidate);
            }
            if let Some((first, second)) = conflict {
                let (first, second) = if first < second {
                    (first, second)
                } else {
                    (second, first)
                };
                return Err(NonDeterminism {
                    kind: NonDeterminismKind::AmbiguousFirst,
                    symbol: self.symbol,
                    first,
                    second,
                });
            }
            self.nodes[i].first_pos = candidate;
        }
        Ok(())
    }

    /// `BuildNext` (Algorithm 1): computes `Next(n, a)` for every skeleton
    /// node and checks condition (P2) along the way.
    fn build_next(&mut self, analysis: &TreeAnalysis) -> Result<(), NonDeterminism> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        let tree = analysis.tree();
        let props = analysis.props();

        // Iterative depth-first traversal carrying the candidate set Y
        // (never more than two positions, checked like the paper's |Y| > 2).
        let mut stack: Vec<(usize, CandidateSet)> = vec![(0, CandidateSet::default())];
        while let Some((i, mut y)) = stack.pop() {
            let node = self.nodes[i].node;

            // Line 1–2: a SupLast node cuts off everything accumulated above.
            if props.sup_last(node) {
                y.clear();
            }

            // Lines 3–6: positions starting in the right sibling's First-set
            // follow after this subtree (through the concatenation parent).
            if let Some(parent_idx) = self.nodes[i].parent {
                let parent_idx = parent_idx as usize;
                let parent_node = self.nodes[parent_idx].node;
                let is_left_child = self.nodes[parent_idx].lchild == Some(i as u32);
                let right_sibling = self.nodes[parent_idx].rchild;
                if let Some(sibling) = right_sibling {
                    if tree.kind(parent_node) == NodeKind::Concat
                        && is_left_child
                        && (!props.sup_last(node) || Some(parent_node) == tree.parent(node))
                    {
                        y.insert(self.nodes[sibling as usize].first_pos);
                    }
                }
            }

            // Line 7: Next(n, a) = positions of Y outside the subtree of n.
            let mut next: Option<PosId> = None;
            for p in y.iter() {
                if !tree.is_ancestor(node, tree.pos_node(p)) {
                    match next {
                        None => next = Some(p),
                        Some(existing) if existing == p => {}
                        Some(existing) => {
                            // (P2) violated: two positions follow after n.
                            let (first, second) = if existing < p {
                                (existing, p)
                            } else {
                                (p, existing)
                            };
                            return Err(NonDeterminism {
                                kind: NonDeterminismKind::ConflictingNext,
                                symbol: self.symbol,
                                first,
                                second,
                            });
                        }
                    }
                }
            }
            self.nodes[i].next = next;

            // Lines 8–9: an iterating node feeds its own First back into Y.
            if tree.kind(node).is_iterating() {
                y.insert(self.nodes[i].first_pos);
            }

            // Line 10–11: more than two candidates prove non-determinism.
            if y.len() > 2 {
                let mut it = y.iter();
                let first = it.next().expect("len > 2");
                let second = it.next().expect("len > 2");
                return Err(NonDeterminism {
                    kind: NonDeterminismKind::ConflictingNext,
                    symbol: self.symbol,
                    first: first.min(second),
                    second: first.max(second),
                });
            }

            // Lines 12–17: recurse into the skeleton children.
            if let Some(r) = self.nodes[i].rchild {
                stack.push((r as usize, y.clone()));
            }
            if let Some(l) = self.nodes[i].lchild {
                stack.push((l as usize, y));
            }
        }
        Ok(())
    }
}

/// The candidate set `Y` of Algorithm 1 — at most a handful of positions
/// (the algorithm aborts as soon as more than two accumulate).
#[derive(Clone, Debug, Default)]
struct CandidateSet {
    items: Vec<PosId>,
}

impl CandidateSet {
    fn clear(&mut self) {
        self.items.clear();
    }

    fn insert(&mut self, p: Option<PosId>) {
        if let Some(p) = p {
            if !self.items.contains(&p) {
                self.items.push(p);
            }
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn iter(&self) -> impl Iterator<Item = PosId> + '_ {
        self.items.iter().copied()
    }
}

/// The collection of a-skeleta for all symbols of the expression
/// (total size `O(|e|)`, Lemma 3.1).
#[derive(Clone, Debug)]
pub struct Skeleta {
    per_symbol: Vec<Option<Skeleton>>,
}

impl Skeleta {
    /// Builds every per-symbol skeleton, checking (P1)-adjacent conditions
    /// and (P2) along the way.
    pub fn build(
        analysis: &TreeAnalysis,
        colors: &ColorAssignment,
    ) -> Result<Self, NonDeterminism> {
        let tree = analysis.tree();
        let num_symbols = tree.num_symbols();
        // Group colored nodes by color.
        let mut colored: Vec<Vec<(NodeId, PosId)>> = vec![Vec::new(); num_symbols];
        for &(node, sym, witness) in &colors.assignments {
            colored[sym.index()].push((node, witness));
        }

        let mut per_symbol = Vec::with_capacity(num_symbols);
        for (sym_index, colored) in colored.iter().enumerate() {
            let symbol = Symbol::from_index(sym_index);
            if tree.positions_of_symbol(symbol).is_empty() {
                per_symbol.push(None);
                continue;
            }
            per_symbol.push(Some(Skeleton::build(analysis, symbol, colored)?));
        }
        Ok(Skeleta { per_symbol })
    }

    /// The skeleton of `symbol`, if that symbol occurs in the expression.
    pub fn get(&self, symbol: Symbol) -> Option<&Skeleton> {
        self.per_symbol.get(symbol.index())?.as_ref()
    }

    /// Iterates over all non-empty skeleta.
    pub fn iter(&self) -> impl Iterator<Item = &Skeleton> {
        self.per_symbol.iter().flatten()
    }

    /// Total number of skeleton nodes across all symbols (Lemma 3.1 bounds
    /// this by `O(|e|)`).
    pub fn total_nodes(&self) -> usize {
        self.iter().map(Skeleton::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_syntax::parse;

    fn setup(input: &str) -> (TreeAnalysis, redet_syntax::Alphabet) {
        let (e, sigma) = parse(input).unwrap();
        (TreeAnalysis::build(&e), sigma)
    }

    #[test]
    fn colors_of_figure_1() {
        // e0 = (c?((ab*)(a?c)))*(ba): Figure 1 annotates node n3 (the inner
        // concatenation (a b*)·(a? c)) with colors {a, c}, witnessed by p4
        // (the second a) and p5 (the second c); node n1 (root of e′) has
        // colors {a, c} for p2/p1... We verify the stable facts: every
        // alphabet position yields exactly one assignment, and the witness
        // map contains (n3, a) → p4 and (n3, c) → p5.
        let (analysis, sigma) = setup("(c?((a b*)(a? c)))*(b a)");
        let colors = ColorAssignment::build(&analysis).unwrap();
        assert_eq!(colors.assignments.len(), 7);
        let a = sigma.lookup("a").unwrap();
        let c = sigma.lookup("c").unwrap();
        let tree = analysis.tree();
        let p4 = PosId::from_index(4);
        let p5 = PosId::from_index(5);
        // p4 = the a of (a? c), p5 = the c of (a? c); their pSupFirst is the
        // (a? c) node, whose parent is the concatenation (a b*)(a? c) = n3.
        let n3 = tree
            .parent(analysis.props().p_sup_first(tree.pos_node(p4)).unwrap())
            .unwrap();
        assert!(colors.assignments.contains(&(n3, a, p4)));
        let n3c = tree
            .parent(analysis.props().p_sup_first(tree.pos_node(p5)).unwrap())
            .unwrap();
        assert_eq!(n3, n3c, "p4 and p5 witness colors at the same node");
        assert!(colors.assignments.contains(&(n3, c, p5)));
    }

    #[test]
    fn p1_violation_is_detected() {
        // a + a: both a-positions have the same pSupFirst (the root of e′).
        let (analysis, sigma) = setup("a + a");
        let err = ColorAssignment::build(&analysis).unwrap_err();
        assert_eq!(err.kind, NonDeterminismKind::DuplicateFirst);
        assert_eq!(err.symbol, sigma.lookup("a").unwrap());
        assert_ne!(err.first, err.second);
    }

    #[test]
    fn skeleton_sizes_are_linear() {
        let (analysis, _) = setup("(c?((a b*)(a? c)))*(b a)");
        let colors = ColorAssignment::build(&analysis).unwrap();
        let skeleta = Skeleta::build(&analysis, &colors).unwrap();
        // Lemma 3.1: total size linear in |e|.
        assert!(skeleta.total_nodes() <= 4 * analysis.tree().num_nodes());
        for skeleton in skeleta.iter() {
            // Every a-position appears in the a-skeleton.
            for &p in analysis.tree().positions_of_symbol(skeleton.symbol) {
                assert!(
                    skeleton.find(analysis.tree().pos_node(p)).is_some(),
                    "position {p:?} missing from its skeleton"
                );
            }
            // Parent/child pointers are mutually consistent and respect the
            // ancestor relation of the parse tree.
            for (i, sn) in skeleton.nodes.iter().enumerate() {
                if let Some(parent) = sn.parent {
                    let parent = &skeleton.nodes[parent as usize];
                    assert!(analysis.tree().is_strict_ancestor(parent.node, sn.node));
                    assert!(
                        parent.lchild == Some(i as u32) || parent.rchild == Some(i as u32),
                        "child link missing"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_a_skeleton_shape() {
        // Figure 1 shows the a-skeleton of e0: it contains the three
        // a-positions, the star node, the root concatenation of e′ and the
        // two inner concatenation nodes, among others.
        let (analysis, sigma) = setup("(c?((a b*)(a? c)))*(b a)");
        let colors = ColorAssignment::build(&analysis).unwrap();
        let skeleta = Skeleta::build(&analysis, &colors).unwrap();
        let a = sigma.lookup("a").unwrap();
        let skeleton = skeleta.get(a).unwrap();
        let tree = analysis.tree();
        // All three a-positions present.
        assert_eq!(tree.positions_of_symbol(a).len(), 3);
        // The star node is in the skeleton (it is the pStar of the inner
        // class-a nodes).
        let star = tree.lchild(tree.expr_root()).unwrap();
        assert!(matches!(tree.kind(star), NodeKind::Star));
        assert!(skeleton.find(star).is_some(), "star node missing");
        // The skeleton root is an ancestor of every skeleton node.
        let root = skeleton.nodes[0].node;
        for sn in &skeleton.nodes {
            assert!(tree.is_ancestor(root, sn.node));
        }
    }

    #[test]
    fn first_pos_matches_definition() {
        for input in [
            "(a b + b b? a)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(c (b? a)) a",
            "a? b? a? b?",
            "(a + b)(a + c)",
        ] {
            let (analysis, _) = setup(input);
            let colors = match ColorAssignment::build(&analysis) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let skeleta = match Skeleta::build(&analysis, &colors) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let tree = analysis.tree();
            let props = analysis.props();
            for skeleton in skeleta.iter() {
                for sn in &skeleton.nodes {
                    // FirstPos(n, a) is the unique a-position in First(n).
                    let expected: Vec<PosId> = props
                        .first_set(tree, sn.node)
                        .into_iter()
                        .filter(|&p| tree.symbol_at(p) == Some(skeleton.symbol))
                        .collect();
                    match expected.as_slice() {
                        [] => assert_eq!(sn.first_pos, None, "{input}: {:?}", sn.node),
                        [p] => assert_eq!(sn.first_pos, Some(*p), "{input}: {:?}", sn.node),
                        _ => panic!("deterministic input {input} has ambiguous FirstPos"),
                    }
                }
            }
        }
    }

    #[test]
    fn next_matches_follow_after_definition() {
        for input in [
            "(a b + b b? a)*",
            "(c?((a b*)(a? c)))*(b a)",
            "(c (b? a)) a",
            "(a (b? a))*",
            "(a + b)(a + c)",
        ] {
            let (analysis, _) = setup(input);
            let Ok(colors) = ColorAssignment::build(&analysis) else {
                continue;
            };
            let Ok(skeleta) = Skeleta::build(&analysis, &colors) else {
                continue;
            };
            let tree = analysis.tree();
            let props = analysis.props();
            for skeleton in skeleta.iter() {
                for sn in &skeleton.nodes {
                    // FollowAfter(n) = {q not below n | ∃p ∈ Last(n), q ∈ Follow(p)};
                    // Next(n, a) is its a-labeled part.
                    let mut expected: Vec<PosId> = Vec::new();
                    for p in props.last_set(tree, sn.node) {
                        for q in analysis.follow_set_naive(p) {
                            if tree.symbol_at(q) == Some(skeleton.symbol)
                                && !tree.is_ancestor(sn.node, tree.pos_node(q))
                                && !expected.contains(&q)
                            {
                                expected.push(q);
                            }
                        }
                    }
                    match expected.as_slice() {
                        [] => assert_eq!(sn.next, None, "{input}: Next({:?})", sn.node),
                        [q] => assert_eq!(sn.next, Some(*q), "{input}: Next({:?})", sn.node),
                        _ => panic!("deterministic input {input} violates (P2) at {:?}", sn.node),
                    }
                }
            }
        }
    }
}
