//! The linear-time determinism test (Section 3.2, Theorem 3.5).
//!
//! The test composes three linear-time stages:
//!
//! 1. **(P1)** — positions sharing a `pSupFirst` node must have distinct
//!    labels ([`crate::skeleton::ColorAssignment::build`]);
//! 2. **skeleta** — per-symbol skeleta with `Witness`, `FirstPos` and `Next`
//!    pointers; `BuildNext` (Algorithm 1) checks **(P2)** along the way
//!    ([`crate::skeleton::Skeleta::build`]);
//! 3. **`CheckNode`** (Algorithm 2) — for every colored node, decide whether
//!    two of the three candidate positions (`Witness`, `FirstPos`, `Next`)
//!    can follow a common position, using only nullability of the right
//!    child, the `pStar` pointer and the `pSupLast` pointer.
//!
//! By Lemma 3.4 the expression is deterministic iff none of the stages finds
//! a conflict. On success the test returns a [`DeterminismCertificate`]
//! carrying the colors and skeleta, which is exactly the preprocessing
//! needed by the lowest-colored-ancestor matcher of Section 4.1.

use crate::skeleton::{ColorAssignment, Skeleta};
use redet_syntax::Symbol;
use redet_tree::{PosId, TreeAnalysis};
use std::fmt;

/// Which structural condition proved the expression non-deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonDeterminismKind {
    /// (P1) failed: two equally-labeled positions share their `pSupFirst`
    /// node (both belong to the same `First`-set "block").
    DuplicateFirst,
    /// Two equally-labeled positions belong to the same `First`-set
    /// (detected while computing `FirstPos`).
    AmbiguousFirst,
    /// (P2) failed, or `|Y| > 2` in `BuildNext`: two equally-labeled
    /// positions follow after the same subtree.
    ConflictingNext,
    /// `CheckNode` combination (1): the witness and the `Next` position of a
    /// colored node follow a common position.
    WitnessNextConflict,
    /// `CheckNode` combination (2): the witness and the `FirstPos` position
    /// of a colored node follow a common position (through an iterating
    /// ancestor).
    WitnessFirstConflict,
    /// A non-nullable iterating node (`e+`) can both iterate back to its
    /// `FirstPos` and exit to its `Next` from the same `Last` position. In
    /// the paper's `∗`-only grammar every iterating node is nullable and
    /// this shape is subsumed by the `First`-ambiguity checks; native `e+`
    /// needs it tested explicitly.
    IterateExitConflict,
}

/// Evidence that the expression is not deterministic: two distinct,
/// equally-labeled positions that can follow a common position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonDeterminism {
    /// Which stage of the test found the conflict.
    pub kind: NonDeterminismKind,
    /// The shared label of the conflicting positions.
    pub symbol: Symbol,
    /// The first conflicting position (smaller position id).
    pub first: PosId,
    /// The second conflicting position.
    pub second: PosId,
}

impl fmt::Display for NonDeterminism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression is not deterministic: positions {:?} and {:?} (same label, symbol #{}) can follow a common position ({:?})",
            self.first,
            self.second,
            self.symbol.index(),
            self.kind
        )
    }
}

impl std::error::Error for NonDeterminism {}

/// The successful outcome of the determinism test: the expression is
/// deterministic, and the preprocessing artefacts (colors and skeleta) are
/// available for the Section 4.1 matcher.
#[derive(Clone, Debug)]
pub struct DeterminismCertificate {
    colors: ColorAssignment,
    skeleta: Skeleta,
}

impl DeterminismCertificate {
    /// The color/witness assignment.
    pub fn colors(&self) -> &ColorAssignment {
        &self.colors
    }

    /// The per-symbol skeleta.
    pub fn skeleta(&self) -> &Skeleta {
        &self.skeleta
    }
}

/// Theorem 3.5: decides determinism of the expression underlying `analysis`
/// in time `O(|e|)`.
pub fn check_determinism(
    analysis: &TreeAnalysis,
) -> Result<DeterminismCertificate, NonDeterminism> {
    // Stage 1: (P1) and the color/witness assignment.
    let colors = ColorAssignment::build(analysis)?;
    // Stage 2: skeleta with FirstPos/Next — checks (P2) and |Y| ≤ 2.
    let skeleta = Skeleta::build(analysis, &colors)?;
    // Stage 3: CheckNode (Algorithm 2) on every colored node.
    check_colored_nodes(analysis, &colors, &skeleta)?;
    // Stage 4 (native `e+` extension): iterate-vs-exit conflicts at
    // non-nullable iterating nodes.
    check_plus_nodes(analysis, &skeleta)?;
    Ok(DeterminismCertificate { colors, skeleta })
}

/// The `e+` extension of the test: for a **non-nullable** iterating node
/// `s`, every `p ∈ Last(s)` is followed by `FirstPos(s, a)` through the
/// iteration of `s`, and `Next(s, a)` witnesses some `p ∈ Last(s)` followed
/// by an equally-labeled position outside `s` — so the simultaneous
/// presence of both is a genuine conflict. For nullable iterators (`∗`)
/// this shape is already caught by the `First`-ambiguity stages (the
/// nullable iterator merges the iterate and exit targets into one
/// `First`-set block), which is why Algorithm 2 does not test it.
fn check_plus_nodes(analysis: &TreeAnalysis, skeleta: &Skeleta) -> Result<(), NonDeterminism> {
    let tree = analysis.tree();
    let props = analysis.props();
    for skeleton in skeleta.iter() {
        for entry in &skeleton.nodes {
            if !tree.kind(entry.node).is_iterating() || props.nullable(entry.node) {
                continue;
            }
            if let (Some(first_pos), Some(next)) = (entry.first_pos, entry.next) {
                let (first, second) = ordered(first_pos, next);
                return Err(NonDeterminism {
                    kind: NonDeterminismKind::IterateExitConflict,
                    symbol: skeleton.symbol,
                    first,
                    second,
                });
            }
        }
    }
    Ok(())
}

/// Algorithm 2 applied to every colored node.
fn check_colored_nodes(
    analysis: &TreeAnalysis,
    colors: &ColorAssignment,
    skeleta: &Skeleta,
) -> Result<(), NonDeterminism> {
    let tree = analysis.tree();
    let props = analysis.props();
    for &(node, symbol, witness) in &colors.assignments {
        let rchild = tree
            .rchild(node)
            .expect("colored nodes are concatenations and have two children");
        if !props.nullable(rchild) {
            // Neither combination can occur (Theorem 3.5 (i)/(ii)).
            continue;
        }
        let skeleton = skeleta
            .get(symbol)
            .expect("colored symbols occur in the expression");
        let entry = skeleton
            .find(node)
            .expect("colored nodes belong to their skeleton");

        // Combination (1): Witness and Next follow a common position.
        if let Some(next) = entry.next {
            let (first, second) = ordered(witness, next);
            return Err(NonDeterminism {
                kind: NonDeterminismKind::WitnessNextConflict,
                symbol,
                first,
                second,
            });
        }

        // Combination (2): Witness and FirstPos follow a common position
        // through the lowest iterating ancestor S of the colored node.
        let (Some(first_pos), Some(star)) = (entry.first_pos, props.p_star(node)) else {
            continue;
        };
        let star_entry = skeleton
            .find(star)
            .expect("pStar of a class-a node belongs to the skeleton");
        let sup_last_reaches_star = props
            .p_sup_last(node)
            .is_some_and(|sl| tree.is_ancestor(sl, star));
        if star_entry.first_pos == Some(first_pos) && sup_last_reaches_star {
            let (first, second) = ordered(witness, first_pos);
            return Err(NonDeterminism {
                kind: NonDeterminismKind::WitnessFirstConflict,
                symbol,
                first,
                second,
            });
        }
    }
    Ok(())
}

fn ordered(a: PosId, b: PosId) -> (PosId, PosId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::{glushkov_determinism, GlushkovAutomaton};
    use redet_syntax::parse;

    fn linear(input: &str) -> Result<DeterminismCertificate, NonDeterminism> {
        let (e, _) = parse(input).unwrap();
        check_determinism(&TreeAnalysis::build(&e))
    }

    fn baseline(input: &str) -> bool {
        let (e, _) = parse(input).unwrap();
        glushkov_determinism(&GlushkovAutomaton::build(&e)).is_ok()
    }

    /// Every expression used anywhere in the paper, plus assorted edge
    /// cases; the linear test must agree with the Glushkov baseline on all
    /// of them.
    const EXPRESSIONS: &[&str] = &[
        // Section 1 / Example 2.1 / Figure 1.
        "a b* b",
        "(a b + b (b?) a)*",
        "(a* b a + b b)*",
        "(c?((a b*)(a? c)))*(b a)",
        "(a0 + a1 + a2 + a3 + a4 + a5)*",
        // Section 3.2 worked examples.
        "(c (b? a?)) a",
        "(c (a? b?)) a",
        "(c (b? a)*) a",
        "(c (b? a)) a",
        "(a (b? a))*",
        "(a (b? a?))*",
        // Star / option interactions.
        "a* a",
        "a? a",
        "(a?) (a?)",
        "(a*) (b a)",
        "(a b)* a c",
        "((a + b)* c)* d",
        "(a + b)* a",
        "a (a + b)*",
        "(a b?)* c",
        "(a b?)* a",
        "(a? b)* a",
        "x (a? b)* a",
        // Deterministic DTD-ish content models.
        "(title, author+, (year | date)?)",
        "a? b? c? d? e?",
        "(a + b) (c + d)",
        "(a + b) (a + b)",
        "(a + b c) (d + e)",
        // Nested unions and concatenations.
        "((a + b) + (c + d)) e",
        "(a (b + c (d + e)))*",
        "((a b) + (a c))",
        "((b a) + (c a))",
        "(a + b (a + b))*",
        // Deeper pathological shapes.
        "((a?) ((b?) ((c?) (a?))))",
        "((a?) ((b?) ((c?) (d?))))",
        "(x (a b)* y)*",
        "((a b)* (c d)*)*",
        "((a b)* (a d)*)*",
        "(a (b (c (d (e f)?)?)?)?)*",
        "(a + (b + (c + (d + e))))*",
        "(a? (b? (c? (d? e?))))*",
        // Native one-or-more (`e+` = `e{1,∞}`, written DTD-style with commas
        // so the parser reads the postfix plus): iterates like `∗` but is
        // not nullable; the linear test must handle it without the §3.3
        // counting machinery.
        "(a b)+",
        "(a b)+, c",
        "(a b)+, a",
        "(a b?)+, c",
        "(a b?)+, a",
        "(a b?)+, b",
        "(a? b)+, a",
        "(a + b)+, c",
        "(a + b)+, a",
        "(title, author+, (year | date)?)",
        "((a, b?)+, c)",
        "(x, (a b)+, y)+",
        "((a b)+, (c d)+)+",
        "((a b)+, (a d)+)+",
        "(a, b+, c)+, d",
        "(a, b+)+",
    ];

    #[test]
    fn agrees_with_glushkov_baseline() {
        for input in EXPRESSIONS {
            assert_eq!(
                linear(input).is_ok(),
                baseline(input),
                "linear test disagrees with Glushkov baseline on {input}"
            );
        }
    }

    #[test]
    fn paper_verdicts() {
        assert!(linear("(a b + b (b?) a)*").is_ok(), "Example 2.1 e1");
        assert!(linear("(a* b a + b b)*").is_err(), "Example 2.1 e2");
        assert!(linear("a b* b").is_err(), "Introduction ab*b");
        assert!(linear("(c?((a b*)(a? c)))*(b a)").is_ok(), "Figure 1 e0");
        assert!(linear("(c (b? a?)) a").is_err(), "§3.2 e");
        assert!(linear("(c (a? b?)) a").is_err(), "§3.2 e′");
        assert!(linear("(c (b? a)*) a").is_err(), "§3.2 e″");
        assert!(linear("(c (b? a)) a").is_ok(), "§3.2 e‴");
        assert!(linear("(a (b? a))*").is_ok(), "§3.2 star example");
        assert!(
            linear("(a (b? a?))*").is_err(),
            "§3.2 star example (nullable)"
        );
    }

    #[test]
    fn native_plus_verdicts() {
        // e+ follows exactly like e e*: the exit/iteration conflict shapes
        // carry over from the starred versions.
        assert!(linear("(a b)+").is_ok());
        assert!(linear("(a b)+, c").is_ok(), "exit on a fresh symbol");
        assert!(linear("(a b)+, a").is_err(), "iterate vs exit on a");
        assert!(linear("(a? b)+, a").is_err());
        assert!(linear("(title, author+, (year | date)?)").is_ok());
        // A certificate is produced, so the colored-ancestor matcher can be
        // built for plus expressions.
        let cert = linear("(title, author+, (year | date)?)").unwrap();
        assert!(cert.skeleta().total_nodes() > 0);
    }

    #[test]
    fn witnesses_are_genuine_conflicts() {
        for input in EXPRESSIONS {
            if let Err(witness) = linear(input) {
                let (e, _) = parse(input).unwrap();
                let analysis = TreeAnalysis::build(&e);
                let tree = analysis.tree();
                assert_ne!(witness.first, witness.second, "{input}");
                assert_eq!(
                    tree.symbol_at(witness.first),
                    Some(witness.symbol),
                    "{input}"
                );
                assert_eq!(
                    tree.symbol_at(witness.second),
                    Some(witness.symbol),
                    "{input}"
                );
                // The two positions really do follow a common position.
                let common = (0..tree.num_positions()).map(PosId::from_index).any(|p| {
                    analysis.check_if_follow(p, witness.first)
                        && analysis.check_if_follow(p, witness.second)
                });
                assert!(common, "witness for {input} has no common predecessor");
            }
        }
    }

    #[test]
    fn mixed_content_is_linear_and_deterministic() {
        let m = 200;
        let expr = format!(
            "({})*",
            (0..m)
                .map(|i| format!("a{i}"))
                .collect::<Vec<_>>()
                .join(" + ")
        );
        let certificate = linear(&expr).unwrap();
        // The skeleta stay linear even though the Glushkov automaton of this
        // expression has Θ(m²) transitions.
        let (e, _) = parse(&expr).unwrap();
        let analysis = TreeAnalysis::build(&e);
        assert!(certificate.skeleta().total_nodes() <= 4 * analysis.tree().num_nodes());
    }

    #[test]
    fn certificate_exposes_colors_and_skeleta() {
        let cert = linear("(c?((a b*)(a? c)))*(b a)").unwrap();
        assert_eq!(cert.colors().assignments.len(), 7);
        assert_eq!(cert.skeleta().iter().count(), 3);
    }
}
