//! Dependency-free bulk byte search: `memchr`-style SWAR scans over `u64`
//! words.
//!
//! The streaming tokenizer in `redet-schema` spends almost all of its time
//! in "skip until an interesting byte" states — character data runs to the
//! next `<`, comments to the next `-`, attribute lists to the next quote or
//! `>`. A byte-at-a-time `match` loop pays the full state dispatch on every
//! boring byte; these helpers instead test **eight bytes per iteration**
//! with the classic SWAR zero-byte trick (no `unsafe`, no SIMD intrinsics,
//! no external crate — the workspace builds offline), falling back to a
//! scalar tail for the last `< 8` bytes.
//!
//! The trick: for a word `x`, `(x - 0x0101…) & !x & 0x8080…` sets the high
//! bit of every zero byte. Bits *above* the first zero byte may be set
//! spuriously (the subtraction borrows through a zero byte), but the
//! **lowest** marker bit is always the first genuine zero — and on a
//! little-endian word layout `trailing_zeros / 8` is exactly its byte
//! index. XORing the word with a splatted needle turns "find the needle"
//! into "find the zero byte"; multi-needle variants OR the marker masks, and
//! the min-over-ORs argument carries over because spurious markers only ever
//! sit above a genuine match of the same needle.

/// Every byte set to `b`. Public with [`zero_byte_markers`] so callers
/// that already hold a loaded word (e.g. a tokenizer fast path that wants
/// both the match position *and* the matched byte without a re-load) can
/// apply the same trick directly.
#[inline]
pub const fn splat(b: u8) -> u64 {
    (b as u64) * 0x0101_0101_0101_0101
}

/// High bit of every byte of `x` that is zero; bits above the first zero
/// byte may be spurious (see the module docs) — only the lowest marker is
/// meaningful.
#[inline]
pub const fn zero_byte_markers(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Reads the little-endian word at `hay[at..at + 8]`.
#[inline]
fn word(hay: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(hay[at..at + 8].try_into().expect("8-byte window"))
}

/// Index of the first occurrence of `n1` in `hay`, scanning eight bytes per
/// step.
#[inline]
pub fn memchr(n1: u8, hay: &[u8]) -> Option<usize> {
    let s1 = splat(n1);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let m = zero_byte_markers(word(hay, i) ^ s1);
        if m != 0 {
            return Some(i + (m.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == n1).map(|p| i + p)
}

/// Index of the first occurrence of `n1` or `n2` in `hay`.
#[inline]
pub fn memchr2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2) = (splat(n1), splat(n2));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = word(hay, i);
        let m = zero_byte_markers(w ^ s1) | zero_byte_markers(w ^ s2);
        if m != 0 {
            return Some(i + (m.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|p| i + p)
}

/// Index of the first occurrence of `n1`, `n2` or `n3` in `hay`.
#[inline]
pub fn memchr3(n1: u8, n2: u8, n3: u8, hay: &[u8]) -> Option<usize> {
    let (s1, s2, s3) = (splat(n1), splat(n2), splat(n3));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = word(hay, i);
        let m = zero_byte_markers(w ^ s1) | zero_byte_markers(w ^ s2) | zero_byte_markers(w ^ s3);
        if m != 0 {
            return Some(i + (m.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|p| i + p)
}

/// Index of the first byte `b` with `b & mask == 0`, scanning eight bytes
/// per step.
///
/// With `mask = 0xC0` this finds the first byte `< 0x40` — the byte-class
/// scan behind tag-name runs in the `redet-schema` tokenizer, where every
/// possible name *terminator* is ASCII below `0x40` and every byte at or
/// above it (letters, multi-byte UTF-8) is unconditionally a name byte.
#[inline]
pub fn memchr_mask_zero(mask: u8, hay: &[u8]) -> Option<usize> {
    let m = splat(mask);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let z = zero_byte_markers(word(hay, i) & m);
        if z != 0 {
            return Some(i + (z.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b & mask == 0).map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obviously-correct scalar reference.
    fn oracle(targets: &[u8], hay: &[u8]) -> Option<usize> {
        hay.iter().position(|b| targets.contains(b))
    }

    #[test]
    fn finds_at_every_offset_and_length() {
        // Sweep window starts and lengths so the word loop, the tail, and
        // the word/tail boundary are all hit with the match at every lane.
        let mut hay = [b'x'; 41];
        for pos in 0..hay.len() {
            hay[pos] = b'<';
            for start in 0..=pos {
                assert_eq!(memchr(b'<', &hay[start..]), Some(pos - start));
                assert_eq!(memchr2(b'!', b'<', &hay[start..]), Some(pos - start));
                assert_eq!(memchr3(b'!', b'?', b'<', &hay[start..]), Some(pos - start));
            }
            hay[pos] = b'x';
        }
        assert_eq!(memchr(b'<', &hay), None);
        assert_eq!(memchr2(b'<', b'>', &hay), None);
        assert_eq!(memchr3(b'<', b'>', b'"', &hay), None);
        assert_eq!(memchr(b'x', &[]), None);
    }

    #[test]
    fn all_byte_values_match_the_oracle() {
        // Pseudo-random haystacks over the full byte range, including 0x00
        // and 0x80+ (the values the SWAR borrow/mask tricks get wrong when
        // misapplied).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 1, 7, 8, 9, 15, 16, 31, 64, 100] {
            let hay: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            for targets in [[0x00u8, 0x80, 0xFF], [b'<', 0x00, b'>'], [1, 2, 3]] {
                let [a, b, c] = targets;
                assert_eq!(memchr(a, &hay), oracle(&[a], &hay), "len {len}");
                assert_eq!(memchr2(a, b, &hay), oracle(&[a, b], &hay), "len {len}");
                assert_eq!(
                    memchr3(a, b, c, &hay),
                    oracle(&[a, b, c], &hay),
                    "len {len}"
                );
            }
        }
    }

    #[test]
    fn mask_zero_matches_the_oracle() {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for len in [0usize, 1, 7, 8, 9, 16, 31, 64, 100] {
            let hay: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            for mask in [0xC0u8, 0x80, 0x01, 0xFF] {
                assert_eq!(
                    memchr_mask_zero(mask, &hay),
                    hay.iter().position(|&b| b & mask == 0),
                    "len {len} mask {mask:#x}"
                );
            }
        }
        // The tokenizer's case: 0xC0 finds the first byte below 0x40.
        assert_eq!(
            memchr_mask_zero(0xC0, b"titleTITLE\xC3\xA9name>rest"),
            Some(16)
        );
        assert_eq!(memchr_mask_zero(0xC0, b"abc"), None);
    }

    #[test]
    fn duplicate_needles_are_allowed() {
        assert_eq!(memchr2(b'a', b'a', b"xxa"), Some(2));
        assert_eq!(memchr3(b'a', b'a', b'a', b"xxxxxxxxxa"), Some(9));
    }
}
