//! Structured diagnostics: the single error surface of expression
//! compilation, schema building and document validation.
//!
//! Every failure in the workspace is reported as a [`Diagnostic`] carrying
//!
//! * a stable error [`Code`] (`E0xx` — compilation, `E1xx` — schema
//!   building, `E2xx` — document validation, `E3xx` — resource governance
//!   in connection-oriented serving),
//! * a human-readable message,
//! * an optional byte [`Span`] into the source content model (or DTD),
//! * for determinism failures, the [`ConflictWitness`] the certifier
//!   already computes — the two equally-labeled positions that can follow
//!   a common position, with their source spans,
//! * for document-validation failures, the [`DocLocation`] — the element
//!   path and the event index at which validation failed.
//!
//! ```
//! use redet_core::{Code, DeterministicRegex};
//!
//! let diag = DeterministicRegex::compile("a b* b").unwrap_err();
//! assert_eq!(diag.code(), Code::NotDeterministic);
//! let witness = diag.witness().expect("determinism failures carry a witness");
//! // The two conflicting `b` occurrences, pointed back into the source.
//! assert_eq!(witness.first_span.unwrap().start, 2);
//! assert_eq!(witness.second_span.unwrap().start, 5);
//! println!("{diag}");
//! ```

use crate::determinism::NonDeterminismKind;
use redet_syntax::{ParseError, Span, Symbol, SyntaxError};
use redet_tree::PosId;
use std::fmt;

/// Stable machine-readable diagnostic codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// The textual syntax of a content model could not be parsed.
    Parse,
    /// The model is structurally invalid (e.g. bounds `{3,1}` or `{0,0}`).
    Syntax,
    /// The model is not deterministic (not one-unambiguous).
    NotDeterministic,
    /// The requested matching strategy does not apply to this expression.
    StrategyNotApplicable,
    /// A schema declares the same element twice.
    DuplicateElement,
    /// A DTD fragment contains a malformed `<!ELEMENT …>` declaration.
    MalformedDtd,
    /// A request named a schema id the serving router does not host
    /// (`SchemaRouter` in `redet-server`).
    UnknownSchema,
    /// Two schemas with the same id were registered with a serving router.
    DuplicateSchema,
    /// A document uses an element name the schema does not know at all.
    UnknownElement,
    /// A child element cannot appear at this point of its parent's content
    /// model.
    UnexpectedChild,
    /// An element was closed although its content model requires more
    /// children.
    IncompleteElement,
    /// An element declared `EMPTY` (or left undeclared) has children.
    ChildInEmptyElement,
    /// Mismatched start/end element events.
    UnbalancedDocument,
    /// A raw byte stream contains markup the streaming tokenizer cannot
    /// parse (stray `<`, unterminated tag or comment, non-UTF-8 name).
    MalformedMarkup,
    /// An entity reference is neither one of the five predefined entities
    /// (`&amp; &lt; &gt; &quot; &apos;`) nor a well-formed character
    /// reference (`&#65;`, `&#x1F600;`).
    UnknownEntity,
    /// A start tag carries an attribute its element does not declare in any
    /// `<!ATTLIST …>`.
    UndeclaredAttribute,
    /// A start tag carries the same attribute twice.
    DuplicateAttribute,
    /// A start tag omits an attribute its element declares `#REQUIRED`.
    MissingRequiredAttribute,
    /// Character data appears inside an element whose content model does
    /// not allow text (neither mixed `(#PCDATA|…)` nor `ANY`), or outside
    /// the document element entirely.
    StrayText,
    /// A document opened elements deeper than the configured depth limit
    /// (`ServiceLimits::max_depth` in `redet-schema`).
    DepthLimitExceeded,
    /// A document was fed more raw bytes than the configured byte budget
    /// (`ServiceLimits::max_bytes`).
    ByteLimitExceeded,
    /// A document produced more events than the configured event budget
    /// (`ServiceLimits::max_events`).
    EventLimitExceeded,
    /// A tag name in a raw byte stream exceeded the configured name-length
    /// cap (`ServiceLimits::max_name_len`).
    NameLimitExceeded,
    /// The service refused to admit a new document: the configured
    /// in-flight handle cap (`ServiceLimits::max_in_flight`) is reached.
    ServiceOverloaded,
    /// An in-flight document sat idle past the configured idle budget and
    /// was swept by `ValidationService::tick`.
    IdleTimeout,
    /// An operation used a document handle that was already finished,
    /// closed, or swept and recycled (a stale `DocId`).
    StaleHandle,
    /// Validating a document panicked; the worker was replaced and the
    /// document is reported as poisoned instead of taking down its batch.
    PoisonedDocument,
    /// A network peer violated the line-oriented wire protocol (bad or
    /// oversized header, input ending mid-header, a disabled command).
    /// Unlike the rest of the `E3xx` family this is protocol misuse, not a
    /// resource limit, so it is not `is_resource_exhausted`.
    ProtocolError,
    /// An attribute value in a raw byte stream exceeded the tokenizer's
    /// value-length cap.
    ValueLimitExceeded,
}

impl Code {
    /// The stable `Exxx` identifier of this code.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::Parse => "E001",
            Code::Syntax => "E002",
            Code::NotDeterministic => "E003",
            Code::StrategyNotApplicable => "E004",
            Code::DuplicateElement => "E101",
            Code::MalformedDtd => "E102",
            Code::UnknownSchema => "E103",
            Code::DuplicateSchema => "E104",
            Code::UnknownElement => "E201",
            Code::UnexpectedChild => "E202",
            Code::IncompleteElement => "E203",
            Code::ChildInEmptyElement => "E204",
            Code::UnbalancedDocument => "E205",
            Code::MalformedMarkup => "E206",
            Code::UnknownEntity => "E207",
            Code::UndeclaredAttribute => "E208",
            Code::DuplicateAttribute => "E209",
            Code::MissingRequiredAttribute => "E210",
            Code::StrayText => "E211",
            Code::DepthLimitExceeded => "E301",
            Code::ByteLimitExceeded => "E302",
            Code::EventLimitExceeded => "E303",
            Code::NameLimitExceeded => "E304",
            Code::ServiceOverloaded => "E305",
            Code::IdleTimeout => "E306",
            Code::StaleHandle => "E307",
            Code::PoisonedDocument => "E308",
            Code::ProtocolError => "E309",
            Code::ValueLimitExceeded => "E310",
        }
    }

    /// Whether this code belongs to the `E3xx` resource-governance family:
    /// the document (or the operation on its handle) was refused by a
    /// configured serving limit rather than by the schema.
    pub const fn is_resource_exhausted(self) -> bool {
        matches!(
            self,
            Code::DepthLimitExceeded
                | Code::ByteLimitExceeded
                | Code::EventLimitExceeded
                | Code::NameLimitExceeded
                | Code::ServiceOverloaded
                | Code::IdleTimeout
                | Code::StaleHandle
                | Code::PoisonedDocument
                | Code::ValueLimitExceeded
        )
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The determinism-conflict evidence attached to [`Code::NotDeterministic`]
/// diagnostics: two distinct, equally-labeled positions that can follow a
/// common position (Theorem 3.5), resolved back to the source text when the
/// model was compiled from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictWitness {
    /// Which stage of the determinism test found the conflict.
    pub kind: NonDeterminismKind,
    /// The shared label of the conflicting positions.
    pub symbol: Symbol,
    /// The shared label, as written in the source.
    pub symbol_name: String,
    /// The first conflicting position (smaller position id).
    pub first: PosId,
    /// The second conflicting position.
    pub second: PosId,
    /// Source span of the first conflicting occurrence, when known.
    pub first_span: Option<Span>,
    /// Source span of the second conflicting occurrence, when known.
    pub second_span: Option<Span>,
}

/// Where in a document a validation diagnostic fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocLocation {
    /// Slash-separated path of open elements, e.g. `bibliography/book`.
    pub path: String,
    /// 0-based index of the offending event in the document's event stream
    /// (each `start_element`/`end_element` call is one event).
    pub event: usize,
}

/// A structured error: code, message, and optional source/document context.
///
/// `Diagnostic` is the error type of every fallible public operation —
/// [`crate::DeterministicRegex::compile`], schema building
/// (`redet-schema`), and document validation. The payload lives behind one
/// box, so `Result<T, Diagnostic>` stays pointer-sized on the error side
/// and the success path pays nothing for the rich error detail.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    inner: Box<DiagnosticInner>,
}

#[derive(Clone, Debug)]
struct DiagnosticInner {
    code: Code,
    message: String,
    span: Option<Span>,
    witness: Option<ConflictWitness>,
    location: Option<DocLocation>,
}

impl Diagnostic {
    /// Creates a bare diagnostic from a code and a message.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            inner: Box::new(DiagnosticInner {
                code,
                message: message.into(),
                span: None,
                witness: None,
                location: None,
            }),
        }
    }

    /// Attaches a byte span into the source content model.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.inner.span = Some(span);
        self
    }

    /// Attaches the determinism-conflict witness.
    #[must_use]
    pub fn with_witness(mut self, witness: ConflictWitness) -> Self {
        self.inner.witness = Some(witness);
        self
    }

    /// Attaches the document location (element path + event index).
    #[must_use]
    pub fn with_location(mut self, location: DocLocation) -> Self {
        self.inner.location = Some(location);
        self
    }

    /// Shifts every span right by `delta` bytes — used to rebase spans of a
    /// content model embedded in a larger source (e.g. a DTD declaration).
    #[must_use]
    pub fn offset_spans(mut self, delta: usize) -> Self {
        self.inner.span = self.inner.span.map(|s| s.offset(delta));
        if let Some(w) = &mut self.inner.witness {
            w.first_span = w.first_span.map(|s| s.offset(delta));
            w.second_span = w.second_span.map(|s| s.offset(delta));
        }
        self
    }

    /// Prefixes the message with context (e.g. the element whose model
    /// failed to compile).
    #[must_use]
    pub fn with_context(mut self, context: &str) -> Self {
        self.inner.message = format!("{context}: {}", self.inner.message);
        self
    }

    /// The stable error code.
    pub fn code(&self) -> Code {
        self.inner.code
    }

    /// The human-readable message (without the code prefix).
    pub fn message(&self) -> &str {
        &self.inner.message
    }

    /// The primary byte span into the source, when known.
    pub fn span(&self) -> Option<Span> {
        self.inner.span
    }

    /// The determinism-conflict witness, for [`Code::NotDeterministic`].
    pub fn witness(&self) -> Option<&ConflictWitness> {
        self.inner.witness.as_ref()
    }

    /// The document location, for validation diagnostics.
    pub fn location(&self) -> Option<&DocLocation> {
        self.inner.location.as_ref()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.code(), self.message())?;
        if let Some(span) = self.span() {
            write!(f, " (bytes {span})")?;
        }
        if let Some(w) = self.witness() {
            write!(
                f,
                "; conflicting '{}' occurrences at positions #{}",
                w.symbol_name,
                w.first.index(),
            )?;
            if let Some(s) = w.first_span {
                write!(f, " (bytes {s})")?;
            }
            write!(f, " and #{}", w.second.index())?;
            if let Some(s) = w.second_span {
                write!(f, " (bytes {s})")?;
            }
            write!(f, " [{:?}]", w.kind)?;
        }
        if let Some(l) = self.location() {
            write!(f, " at /{} (event {})", l.path, l.event)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Self {
        // A zero-width span at the error offset: the parser may report an
        // offset at (or just past) the end of the input, and the offset can
        // land on a multi-byte character — a caret position is always safe
        // to slice by, a one-byte range is not.
        Diagnostic::new(Code::Parse, &e.message).with_span(Span::new(e.offset, e.offset))
    }
}

impl From<SyntaxError> for Diagnostic {
    fn from(e: SyntaxError) -> Self {
        Diagnostic::new(Code::Syntax, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_displayed() {
        assert_eq!(Code::NotDeterministic.as_str(), "E003");
        assert_eq!(Code::UnexpectedChild.as_str(), "E202");
        assert_eq!(Code::UnknownEntity.as_str(), "E207");
        assert_eq!(Code::UndeclaredAttribute.as_str(), "E208");
        assert_eq!(Code::DuplicateAttribute.as_str(), "E209");
        assert_eq!(Code::MissingRequiredAttribute.as_str(), "E210");
        assert_eq!(Code::StrayText.as_str(), "E211");
        let d = Diagnostic::new(Code::Parse, "unexpected ')'").with_span(Span::new(4, 5));
        let rendered = d.to_string();
        assert!(rendered.contains("error[E001]"), "{rendered}");
        assert!(rendered.contains("4..5"), "{rendered}");
    }

    #[test]
    fn resource_codes_are_stable_and_classified() {
        assert_eq!(Code::DepthLimitExceeded.as_str(), "E301");
        assert_eq!(Code::ByteLimitExceeded.as_str(), "E302");
        assert_eq!(Code::EventLimitExceeded.as_str(), "E303");
        assert_eq!(Code::NameLimitExceeded.as_str(), "E304");
        assert_eq!(Code::ServiceOverloaded.as_str(), "E305");
        assert_eq!(Code::IdleTimeout.as_str(), "E306");
        assert_eq!(Code::StaleHandle.as_str(), "E307");
        assert_eq!(Code::PoisonedDocument.as_str(), "E308");
        assert_eq!(Code::UnknownSchema.as_str(), "E103");
        assert_eq!(Code::DuplicateSchema.as_str(), "E104");
        assert_eq!(Code::ProtocolError.as_str(), "E309");
        assert_eq!(Code::ValueLimitExceeded.as_str(), "E310");
        assert!(Code::IdleTimeout.is_resource_exhausted());
        assert!(Code::ValueLimitExceeded.is_resource_exhausted());
        assert!(!Code::UnexpectedChild.is_resource_exhausted());
        assert!(!Code::ProtocolError.is_resource_exhausted());
        assert!(!Code::UnknownEntity.is_resource_exhausted());
        assert!(!Code::StrayText.is_resource_exhausted());
    }

    #[test]
    fn span_rebasing_shifts_everything() {
        let d = Diagnostic::new(Code::NotDeterministic, "conflict")
            .with_span(Span::new(2, 3))
            .with_witness(ConflictWitness {
                kind: NonDeterminismKind::DuplicateFirst,
                symbol: Symbol::from_index(0),
                symbol_name: "a".into(),
                first: PosId::from_index(1),
                second: PosId::from_index(2),
                first_span: Some(Span::new(0, 1)),
                second_span: Some(Span::new(2, 3)),
            })
            .offset_spans(10);
        assert_eq!(d.span().unwrap().start, 12);
        let w = d.witness().unwrap();
        assert_eq!(w.first_span.unwrap().start, 10);
        assert_eq!(w.second_span.unwrap().start, 12);
    }

    #[test]
    fn location_is_rendered() {
        let d = Diagnostic::new(Code::UnexpectedChild, "…").with_location(DocLocation {
            path: "book/front".into(),
            event: 7,
        });
        let rendered = d.to_string();
        assert!(rendered.contains("/book/front"), "{rendered}");
        assert!(rendered.contains("event 7"), "{rendered}");
    }
}
