//! Parser for the textual regular expression syntax.
//!
//! The concrete syntax follows the paper and common DTD/XML-Schema practice:
//!
//! * union is written `+` (paper style) or `|` (DTD style);
//! * concatenation is juxtaposition (`ab`, `a b`) or a comma (`a, b`, DTD
//!   style);
//! * postfix operators are `*`, `?` and the numeric occurrence indicators
//!   `{i}`, `{i,}`, `{i,j}` (XML-Schema `minOccurs`/`maxOccurs`);
//! * symbols are identifiers (`title`, `author-name`, `a1`) or single
//!   alphanumeric characters; multi-character identifiers must be separated
//!   by whitespace or punctuation;
//! * parentheses group.
//!
//! The characters `#` and `$` are reserved for the phantom begin/end markers
//! introduced by restriction (R1) and are rejected by the parser.
//!
//! ```
//! use redet_syntax::{parse, Regex};
//!
//! let (e, sigma) = parse("(a b + b b? a)*").unwrap();
//! assert_eq!(e.num_positions(), 5);
//! assert_eq!(sigma.len(), 2);
//!
//! // DTD style content model.
//! let (e, sigma) = parse("(title, author+, year?)").unwrap();
//! assert_eq!(e.num_positions(), 3);
//! assert_eq!(sigma.len(), 3);
//! ```

use crate::alphabet::Alphabet;
use crate::ast::Regex;
use crate::error::{ParseError, Span};

/// Parses `input` into an expression, interning symbols into a fresh
/// [`Alphabet`].
pub fn parse(input: &str) -> Result<(Regex, Alphabet), ParseError> {
    let mut alphabet = Alphabet::new();
    let regex = parse_with_alphabet(input, &mut alphabet)?;
    Ok((regex, alphabet))
}

/// Parses `input`, interning symbols into the provided `alphabet`.
///
/// Useful when several content models (e.g. all the element declarations of
/// one DTD) must share a single symbol space.
pub fn parse_with_alphabet(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    parse_spanned_with_alphabet(input, alphabet).map(|(regex, _)| regex)
}

/// Like [`parse`], additionally returning the byte span of every alphabet
/// position (leaf) of the expression, in position (left-to-right) order.
///
/// The spans let diagnostics point back into the source: position `i` of the
/// expression (0-based, phantom markers excluded) was written at
/// `spans[i]`.
///
/// ```
/// use redet_syntax::parse_spanned;
///
/// let (e, _, spans) = parse_spanned("(a bb)* a").unwrap();
/// assert_eq!(e.num_positions(), 3);
/// assert_eq!((spans[1].start, spans[1].end), (3, 5)); // "bb"
/// assert_eq!((spans[2].start, spans[2].end), (8, 9)); // the final "a"
/// ```
pub fn parse_spanned(input: &str) -> Result<(Regex, Alphabet, Vec<Span>), ParseError> {
    let mut alphabet = Alphabet::new();
    let (regex, spans) = parse_spanned_with_alphabet(input, &mut alphabet)?;
    Ok((regex, alphabet, spans))
}

/// Like [`parse_with_alphabet`], additionally returning per-position byte
/// spans (see [`parse_spanned`]).
pub fn parse_spanned_with_alphabet(
    input: &str,
    alphabet: &mut Alphabet,
) -> Result<(Regex, Vec<Span>), ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        alphabet,
        spans: Vec::new(),
    };
    let expr = parser.parse_union()?;
    if parser.pos != parser.tokens.len() {
        let (offset, _, tok) = &parser.tokens[parser.pos];
        return Err(ParseError::new(
            *offset,
            format!("unexpected trailing input near {tok:?}"),
        ));
    }
    Ok((expr, parser.spans))
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    LParen,
    RParen,
    Union,
    Star,
    Question,
    Comma,
    Repeat(u32, Option<u32>),
    PostfixPlus,
    Ident(String),
}

fn tokenize(input: &str) -> Result<Vec<(usize, usize, Token)>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push((i, i + 1, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, i + 1, Token::RParen));
                i += 1;
            }
            '+' | '|' => {
                // `+` directly after an atom/closing construct is the DTD
                // "one or more" postfix operator; otherwise it is union.
                let postfix = c == '+'
                    && matches!(
                        tokens.last(),
                        Some((
                            _,
                            _,
                            Token::RParen
                                | Token::Ident(_)
                                | Token::Star
                                | Token::Question
                                | Token::Repeat(_, _)
                                | Token::PostfixPlus
                        ))
                    )
                    && {
                        // Lookahead: union must be followed by something that
                        // starts an atom; postfix-plus is followed by an
                        // operator, `)`, `,` or end of input.
                        let mut j = i + 1;
                        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                            j += 1;
                        }
                        j >= bytes.len()
                            || matches!(bytes[j] as char, ')' | ',' | '|' | '+' | '*' | '?' | '{')
                    };
                tokens.push((
                    i,
                    i + 1,
                    if postfix {
                        Token::PostfixPlus
                    } else {
                        Token::Union
                    },
                ));
                i += 1;
            }
            '*' => {
                tokens.push((i, i + 1, Token::Star));
                i += 1;
            }
            '?' => {
                tokens.push((i, i + 1, Token::Question));
                i += 1;
            }
            ',' => {
                tokens.push((i, i + 1, Token::Comma));
                i += 1;
            }
            '{' => {
                let start = i;
                let close = input[i..]
                    .find('}')
                    .map(|off| i + off)
                    .ok_or_else(|| ParseError::new(i, "unterminated '{'"))?;
                let body = &input[i + 1..close];
                let token = parse_repeat(body).map_err(|msg| ParseError::new(start, msg))?;
                tokens.push((start, close + 1, token));
                i = close + 1;
            }
            '#' | '$' => {
                return Err(ParseError::new(
                    i,
                    format!("'{c}' is reserved for the phantom begin/end markers"),
                ));
            }
            c if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                tokens.push((start, i, Token::Ident(input[start..i].to_owned())));
            }
            _ => {
                return Err(ParseError::new(i, format!("unexpected character '{c}'")));
            }
        }
    }
    Ok(tokens)
}

fn parse_repeat(body: &str) -> Result<Token, String> {
    let body = body.trim();
    let parse_u32 = |s: &str| -> Result<u32, String> {
        s.trim()
            .parse::<u32>()
            .map_err(|_| format!("invalid repetition bound '{s}'"))
    };
    if let Some((lo, hi)) = body.split_once(',') {
        let min = parse_u32(lo)?;
        let max = if hi.trim().is_empty() {
            None
        } else {
            Some(parse_u32(hi)?)
        };
        if let Some(max) = max {
            if min > max {
                return Err(format!("lower bound {min} exceeds upper bound {max}"));
            }
        }
        Ok(Token::Repeat(min, max))
    } else {
        let n = parse_u32(body)?;
        Ok(Token::Repeat(n, Some(n)))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

struct Parser<'a> {
    tokens: Vec<(usize, usize, Token)>,
    pos: usize,
    alphabet: &'a mut Alphabet,
    /// Byte span of every symbol leaf, pushed in parse order — which is
    /// position (left-to-right) order, because the descent builds leaves
    /// strictly left to right.
    spans: Vec<Span>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, _, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(o, _, _)| *o)
            .unwrap_or_else(|| {
                // Past the end: report just after the last token (0 for empty
                // input) instead of a nonsense offset.
                self.tokens.last().map(|(_, end, _)| *end).unwrap_or(0)
            })
    }

    fn bump(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).map(|(_, _, t)| t.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn parse_union(&mut self) -> Result<Regex, ParseError> {
        let mut expr = self.parse_concat()?;
        while matches!(self.peek(), Some(Token::Union)) {
            self.bump();
            let rhs = self.parse_concat()?;
            expr = expr.or(rhs);
        }
        Ok(expr)
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut expr = self.parse_postfix()?;
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                    let rhs = self.parse_postfix()?;
                    expr = expr.then(rhs);
                }
                Some(Token::LParen) | Some(Token::Ident(_)) => {
                    let rhs = self.parse_postfix()?;
                    expr = expr.then(rhs);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    expr = expr.star();
                }
                Some(Token::Question) => {
                    self.bump();
                    expr = expr.opt();
                }
                Some(Token::PostfixPlus) => {
                    self.bump();
                    expr = expr.plus();
                }
                Some(Token::Repeat(min, max)) => {
                    let (min, max) = (*min, *max);
                    self.bump();
                    expr = expr.repeat(min, max);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        let offset = self.offset();
        let end = self
            .tokens
            .get(self.pos)
            .map(|(_, end, _)| *end)
            .unwrap_or(offset);
        match self.bump() {
            Some(Token::LParen) => {
                let expr = self.parse_union()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(expr),
                    _ => Err(ParseError::new(offset, "unbalanced '(': expected ')'")),
                }
            }
            Some(Token::Ident(name)) => {
                self.spans.push(Span::new(offset, end));
                Ok(Regex::symbol(self.alphabet.intern(&name)))
            }
            Some(tok) => Err(ParseError::new(
                offset,
                format!("expected a symbol or '(' but found {tok:?}"),
            )),
            None => Err(ParseError::new(offset, "unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_2_1() {
        // e1 = (ab + b(b?)a)* has positions a b b b a.
        let (e, sigma) = parse("(a b + b (b?) a)*").unwrap();
        assert_eq!(sigma.len(), 2);
        assert_eq!(e.num_positions(), 5);
        let names: Vec<_> = e
            .positions()
            .iter()
            .map(|s| sigma.name(*s).to_owned())
            .collect();
        assert_eq!(names, vec!["a", "b", "b", "b", "a"]);
        // e2 = (a*ba + bb)*
        let (e2, _) = parse("(a* b a + b b)*").unwrap();
        assert_eq!(e2.num_positions(), 5);
    }

    #[test]
    fn figure1_expression_parses() {
        // e0 = (c?((ab*)(a?c)))*(ba)
        let (e, sigma) = parse("(c?((a b*)(a? c)))*(b a)").unwrap();
        assert_eq!(sigma.len(), 3);
        assert_eq!(e.num_positions(), 7);
    }

    #[test]
    fn dtd_style_content_model() {
        let (e, sigma) = parse("(title, author+, (year | date)?)").unwrap();
        assert_eq!(sigma.len(), 4);
        assert_eq!(e.num_positions(), 4);
        // author+ is the native one-or-more closure, not a counter.
        assert!(!e.has_counting());
    }

    #[test]
    fn union_pipe_and_plus_are_equivalent() {
        let (e1, _) = parse("a + b + c").unwrap();
        let (e2, _) = parse("a | b | c").unwrap();
        assert_eq!(format!("{e1:?}"), format!("{e2:?}"));
    }

    #[test]
    fn postfix_plus_detection() {
        let (e, _) = parse("a+, b").unwrap();
        // a{1,∞} concatenated (DTD comma) with b.
        assert!(matches!(e, Regex::Concat(_, _)));
        assert!(!e.has_counting()); // native plus, not a counter
                                    // Without the comma and with a following atom, `+` is a union
                                    // (paper convention wins over the DTD postfix reading).
        let (e, _) = parse("a+ b").unwrap();
        assert!(matches!(e, Regex::Union(_, _)));
        let (e, _) = parse("a + b").unwrap();
        // With spaces but a following atom this is a union.
        assert!(matches!(e, Regex::Union(_, _)));
        let (e, _) = parse("(a b)+").unwrap();
        assert!(matches!(e, Regex::Repeat(_, 1, None)));
    }

    #[test]
    fn numeric_occurrences() {
        let (e, _) = parse("(a b){2,2} a (b + d)").unwrap();
        assert_eq!(e.num_positions(), 5);
        let (e, _) = parse("a{3}").unwrap();
        assert!(matches!(e, Regex::Repeat(_, 3, Some(3))));
        let (e, _) = parse("a{2,}").unwrap();
        assert!(matches!(e, Regex::Repeat(_, 2, None)));
        assert!(parse("a{3,1}").is_err());
        assert!(parse("a{x}").is_err());
        assert!(parse("a{1").is_err());
    }

    #[test]
    fn errors_are_reported_with_offsets() {
        assert!(parse("(a b").is_err());
        assert!(parse("a )").is_err());
        assert!(parse("* a").is_err());
        assert!(parse("a @ b").is_err());
        assert!(parse("").is_err());
        assert!(parse("a # b").is_err());
        assert!(parse("$").is_err());
        let err = parse("a @ b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn end_of_input_errors_point_past_the_last_token() {
        // Empty input: the error points at offset 0, not a garbage offset.
        assert_eq!(parse("").unwrap_err().offset, 0);
        // EOF mid-expression: just after the last token, not inside it
        // (the union token spans 2..3, so the missing operand is at 3).
        assert_eq!(parse("a |").unwrap_err().offset, 3);
        assert_eq!(parse("title |").unwrap_err().offset, 7);
        // An unbalanced '(' is reported at the '(' itself.
        assert_eq!(parse("(title").unwrap_err().offset, 0);
    }

    #[test]
    fn shared_alphabet_across_models() {
        let mut sigma = Alphabet::new();
        let e1 = parse_with_alphabet("(a, b)", &mut sigma).unwrap();
        let e2 = parse_with_alphabet("(b, c)", &mut sigma).unwrap();
        assert_eq!(sigma.len(), 3);
        assert_eq!(e1.positions()[1], e2.positions()[0]);
    }

    #[test]
    fn multi_character_names() {
        let (e, sigma) = parse("(chapter-title section.1)* appendix?").unwrap();
        assert_eq!(sigma.len(), 3);
        assert!(sigma.lookup("chapter-title").is_some());
        assert!(sigma.lookup("section.1").is_some());
        assert_eq!(e.num_positions(), 3);
    }

    #[test]
    fn identifiers_are_greedy() {
        let (e1, _) = parse("(ab)*c").unwrap();
        let (e2, _) = parse("( a b ) * c").unwrap();
        // "(ab)*c": `ab` is a single identifier! So these differ.
        assert_eq!(e1.num_positions(), 2);
        assert_eq!(e2.num_positions(), 3);
    }
}
