//! Interned alphabet symbols.
//!
//! XML content models range over element names, so the alphabet of a regular
//! expression is a set of strings rather than single characters. Symbols are
//! interned into a dense numeric range `0..len`, which is what all the
//! algorithmic machinery downstream (bucket grouping, per-symbol skeleta,
//! colored-ancestor structures, lazy arrays) relies on.

use std::collections::HashMap;
use std::fmt;

/// An interned alphabet symbol.
///
/// Symbols are small integers handed out by an [`Alphabet`]; comparing,
/// hashing and indexing by symbol is constant time. The paper's phantom
/// markers `#` and `$` (restriction R1) are *not* alphabet symbols — they are
/// materialised only in the parse tree (`redet-tree`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Creates a symbol from a raw index.
    ///
    /// Mostly useful in tests and generators; in normal operation symbols are
    /// obtained from [`Alphabet::intern`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("alphabet larger than u32::MAX"))
    }

    /// The dense index of this symbol, suitable for indexing per-symbol
    /// tables of size [`Alphabet::len`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An interner mapping symbol names to dense [`Symbol`] ids and back.
///
/// ```
/// use redet_syntax::Alphabet;
///
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("a");
/// let title = sigma.intern("title");
/// assert_eq!(sigma.intern("a"), a);
/// assert_eq!(sigma.name(title), "title");
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet with `n` single-letter-ish symbols named
    /// `a0, a1, …` — convenient for synthetic workloads.
    pub fn with_generic_symbols(n: usize) -> Self {
        let mut alphabet = Self::new();
        for i in 0..n {
            alphabet.intern(&format!("a{i}"));
        }
        alphabet
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a symbol by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols interned so far (the paper's `σ`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in interning order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(Symbol::from_index)
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        assert_ne!(a, b);
        assert_eq!(sigma.intern("a"), a);
        assert_eq!(sigma.intern("b"), b);
        assert_eq!(sigma.len(), 2);
    }

    #[test]
    fn names_round_trip() {
        let mut sigma = Alphabet::new();
        let names = ["title", "author", "year", "a", "b"];
        let syms: Vec<_> = names.iter().map(|n| sigma.intern(n)).collect();
        for (sym, name) in syms.iter().zip(names.iter()) {
            assert_eq!(sigma.name(*sym), *name);
            assert_eq!(sigma.lookup(name), Some(*sym));
        }
        assert_eq!(sigma.lookup("missing"), None);
    }

    #[test]
    fn generic_symbols() {
        let sigma = Alphabet::with_generic_symbols(4);
        assert_eq!(sigma.len(), 4);
        assert_eq!(sigma.name(Symbol::from_index(2)), "a2");
    }

    #[test]
    fn indices_are_dense() {
        let mut sigma = Alphabet::new();
        for i in 0..100 {
            let sym = sigma.intern(&format!("s{i}"));
            assert_eq!(sym.index(), i);
        }
        let collected: Vec<_> = sigma.symbols().map(|s| s.index()).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }
}
