//! Normalization enforcing the paper's structural restrictions.
//!
//! Section 2 of the paper requires of every regular expression `e` that
//!
//! * **(R1)** `e = (# e′) $` where `#` and `$` do not occur in `e′`;
//! * **(R2)** `((e′)*)*` does not appear in `e`;
//! * **(R3)** if `(e′)?` appears in `e` then `ε ∉ L(e′)`.
//!
//! (R1) is applied when the parse tree is built (`redet-tree`), because the
//! phantom markers are positions of the *tree*, not alphabet symbols. This
//! module implements the language-preserving rewriting for (R2) and (R3),
//! together with a few equally-cheap simplifications for numeric occurrence
//! indicators which keep the parse tree linear in the number of positions:
//!
//! * `(e*)* → e*`, `(e?)* → e*`, `(e*)? → e*`, `(e?)? → e?`;
//! * `e? → e` when `e` is nullable;
//! * `e{0,0}` is rejected ([`SyntaxError::EmptyRepeat`]);
//! * `e{1,1} → e`, `e{0,∞} → e*`, `e{0,j} → (e{1,j})?`;
//! * `e+` (= `e{1,∞}`) is kept **native** when `e` is non-nullable — its
//!   follow-set semantics are exactly those of `e e*`, so the parse-tree
//!   algorithms handle it without counting machinery; when `e` is nullable
//!   `e+ → e*` (same language), and `(e*)+ → e*`, `(e?)+ → e*`,
//!   `(e+)+ → e+`, `(e+)* → e*`, `(e+)? → e*`;
//! * `e{i,j} → e{1,j}` rewritings are **not** applied — the bounds carry
//!   semantics for the counting determinism test of Section 3.3.
//!
//! All rewritings preserve `L(e)` and never increase the size of the
//! expression (they are single bottom-up passes, hence linear time, as the
//! paper notes: "An arbitrary regular expression can be changed easily (in
//! linear time) into an equivalent one of the required form").

use crate::ast::Regex;
use crate::error::SyntaxError;

/// Normalizes `regex` into the (R2)/(R3)-respecting form described in the
/// module documentation.
pub fn normalize(regex: Regex) -> Result<Regex, SyntaxError> {
    match regex {
        Regex::Symbol(s) => Ok(Regex::Symbol(s)),
        Regex::Concat(l, r) => Ok(Regex::Concat(
            Box::new(normalize(*l)?),
            Box::new(normalize(*r)?),
        )),
        Regex::Union(l, r) => Ok(Regex::Union(
            Box::new(normalize(*l)?),
            Box::new(normalize(*r)?),
        )),
        Regex::Star(inner) => {
            let inner = normalize(*inner)?;
            Ok(match inner {
                // (R2): collapse directly nested iteration/optionality;
                // (e+)* ≡ e*.
                Regex::Star(e) | Regex::Optional(e) | Regex::Repeat(e, 1, None) => Regex::Star(e),
                other => Regex::Star(Box::new(other)),
            })
        }
        Regex::Optional(inner) => {
            let inner = normalize(*inner)?;
            Ok(match inner {
                // (e+)? ≡ e* (one-or-more plus the empty word).
                Regex::Repeat(e, 1, None) => Regex::Star(e),
                // (e*)? ≡ e*, and more generally (R3): drop `?` over anything
                // already nullable.
                other if other.nullable() => other,
                other => Regex::Optional(Box::new(other)),
            })
        }
        Regex::Repeat(inner, min, max) => {
            let inner = normalize(*inner)?;
            if let Some(max) = max {
                if min > max {
                    return Err(SyntaxError::InvalidRepeatBounds { min, max });
                }
                if max == 0 {
                    return Err(SyntaxError::EmptyRepeat);
                }
            }
            Ok(match (min, max) {
                (1, Some(1)) => inner,
                (0, None) => normalize(Regex::Star(Box::new(inner)))?,
                (0, Some(1)) => normalize(Regex::Optional(Box::new(inner)))?,
                (0, max) => {
                    let repeated = Regex::Repeat(Box::new(inner), 1, max);
                    normalize(Regex::Optional(Box::new(repeated)))?
                }
                // e+ stays native only over a non-nullable, non-iterating
                // body: (e*)+ ≡ (e?)+ ≡ e* and (e+)+ ≡ e+; a nullable body
                // makes e+ ≡ e* outright.
                (1, None) => match inner {
                    Regex::Star(e) | Regex::Optional(e) => Regex::Star(e),
                    Regex::Repeat(e, 1, None) => Regex::Repeat(e, 1, None),
                    other if other.nullable() => Regex::Star(Box::new(other)),
                    other => Regex::Repeat(Box::new(other), 1, None),
                },
                (min, max) => Regex::Repeat(Box::new(inner), min, max),
            })
        }
    }
}

/// Checks whether `regex` already satisfies (R2) and (R3) without rewriting.
///
/// Used by downstream constructors to verify their preconditions cheaply and
/// by property tests to validate [`normalize`].
pub fn satisfies_r2_r3(regex: &Regex) -> bool {
    let mut ok = true;
    regex.visit(&mut |e| match e {
        Regex::Star(inner) => {
            if matches!(
                **inner,
                Regex::Star(_) | Regex::Optional(_) | Regex::Repeat(_, 1, None)
            ) {
                ok = false;
            }
        }
        Regex::Optional(inner) if inner.nullable() || inner.is_plus() => ok = false,
        Regex::Repeat(_, 0, _) | Regex::Repeat(_, 1, Some(1)) => ok = false,
        // A native plus must sit over a non-nullable, non-plus body.
        Regex::Repeat(inner, 1, None) if inner.nullable() || inner.is_plus() => ok = false,
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::to_string;

    fn norm(input: &str) -> String {
        let (e, sigma) = parse(input).unwrap();
        let e = normalize(e).unwrap();
        assert!(
            satisfies_r2_r3(&e),
            "normalization left a violation in {input}"
        );
        to_string(&e, &sigma)
    }

    #[test]
    fn r2_nested_stars_collapse() {
        assert_eq!(norm("(a*)*"), "a*");
        assert_eq!(norm("((a*)*)*"), "a*");
        assert_eq!(norm("(a?)*"), "a*");
        assert_eq!(norm("(a*)?"), "a*");
        assert_eq!(norm("((a b)*)*"), "(a b)*");
    }

    #[test]
    fn r3_optional_of_nullable_collapses() {
        assert_eq!(norm("(a?)?"), "a?");
        assert_eq!(norm("(a? b?)?"), "a? b?");
        assert_eq!(norm("(a* b?)?"), "a* b?");
        assert_eq!(norm("(a + b?)?"), "a + b?");
    }

    #[test]
    fn repeats_are_canonicalized() {
        assert_eq!(norm("a{1,1}"), "a");
        assert_eq!(norm("a{0,}"), "a*");
        assert_eq!(norm("a{0,1}"), "a?");
        assert_eq!(norm("a{0,4}"), "a{1,4}?");
        assert_eq!(norm("a{2,5}"), "a{2,5}");
        assert_eq!(norm("(a?){2,3}"), "a?{2,3}");
        assert_eq!(norm("a{1,}"), "a{1,}");
    }

    #[test]
    fn plus_is_canonicalized() {
        // Native plus survives only over non-nullable, non-plus bodies.
        assert_eq!(norm("a+, b"), "a{1,} b");
        assert_eq!(norm("(a b)+"), "(a b){1,}");
        // Nullable or iterating bodies collapse to a star.
        assert_eq!(norm("(a?)+"), "a*");
        assert_eq!(norm("(a*)+"), "a*");
        assert_eq!(norm("(a+)+"), "a{1,}");
        assert_eq!(norm("(a+)*"), "a*");
        assert_eq!(norm("(a+)?"), "a*");
        assert_eq!(norm("((a b?)+)?"), "(a b?)*");
    }

    #[test]
    fn plus_normalization_is_counting_free() {
        for input in ["a+, b", "(a b)+", "(title, author+, year?)"] {
            let (e, _) = parse(input).unwrap();
            let e = normalize(e).unwrap();
            assert!(!e.has_counting(), "{input} should not be counting");
        }
    }

    #[test]
    fn invalid_repeats_are_rejected() {
        let (e, _) = parse("a{0,0}")
            .map(|(e, s)| (Regex::Repeat(Box::new(e), 0, Some(0)), s))
            .unwrap();
        assert_eq!(normalize(e), Err(SyntaxError::EmptyRepeat));
    }

    #[test]
    fn untouched_expressions_are_preserved() {
        assert_eq!(norm("(a b + b b? a)*"), "(a b + b b? a)*");
        assert_eq!(
            norm("(c?((a b*)(a? c)))*(b a)"),
            "(c? (a b* (a? c)))* (b a)"
        );
        assert_eq!(norm("(a b){2,2} a (b + d)"), "(a b){2} a (b + d)");
    }

    #[test]
    fn nullability_is_preserved() {
        for input in [
            "(a*)*",
            "(a?)?",
            "a{0,3}",
            "(a? b?)?",
            "a{2,5}",
            "(a + b?)?",
            "a{1,}",
            "((a b)*)?",
        ] {
            let (e, _) = parse(input).unwrap();
            let before = e.nullable();
            let after = normalize(e).unwrap().nullable();
            assert_eq!(before, after, "nullability changed for {input}");
        }
    }

    #[test]
    fn normalization_is_idempotent() {
        for input in ["(a*)*", "(a?)?", "a{0,3}", "((a?)*)?", "(a b + c)?*"] {
            let (e, _) = parse(input).unwrap();
            let once = normalize(e).unwrap();
            let twice = normalize(once.clone()).unwrap();
            assert_eq!(once, twice);
        }
    }
}
