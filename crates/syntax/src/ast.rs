//! The regular expression abstract syntax tree.

use crate::alphabet::Symbol;

/// A regular expression over an interned alphabet (Section 2 of the paper,
/// extended with the numeric occurrence indicators of Section 3.3).
///
/// The grammar is
///
/// ```text
/// e ::= a            (a ∈ Σ)
///     | e · e        (concatenation)
///     | e + e        (union)
///     | e?           (option)
///     | e*           (Kleene star)
///     | e{i,j}       (numeric occurrence indicator, 0 ≤ i ≤ j, j possibly ∞)
/// ```
///
/// Expressions are plain owned trees; all derived per-node data (positions,
/// `First`/`Last`, `SupFirst`/`SupLast`, …) is computed on the arena-based
/// parse tree of `redet-tree`, never stored here.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// A single alphabet symbol, i.e. a *position* once the tree is marked.
    Symbol(Symbol),
    /// Concatenation `e1 · e2`.
    Concat(Box<Regex>, Box<Regex>),
    /// Union `e1 + e2`.
    Union(Box<Regex>, Box<Regex>),
    /// Option `e?` (`L(e?) = L(e) ∪ {ε}`).
    Optional(Box<Regex>),
    /// Kleene star `e*`.
    Star(Box<Regex>),
    /// Numeric occurrence indicator `e{min,max}`; `max = None` means `∞`.
    ///
    /// `e{i,j}` denotes the union of `e·e·…·e` (`k` times) for `i ≤ k ≤ j`.
    Repeat(Box<Regex>, u32, Option<u32>),
}

impl Regex {
    /// Builds a symbol expression.
    pub fn symbol(sym: Symbol) -> Self {
        Regex::Symbol(sym)
    }

    /// Concatenates `self` with `rhs`.
    pub fn then(self, rhs: Regex) -> Self {
        Regex::Concat(Box::new(self), Box::new(rhs))
    }

    /// Unions `self` with `rhs`.
    pub fn or(self, rhs: Regex) -> Self {
        Regex::Union(Box::new(self), Box::new(rhs))
    }

    /// Makes `self` optional.
    pub fn opt(self) -> Self {
        Regex::Optional(Box::new(self))
    }

    /// Stars `self`.
    pub fn star(self) -> Self {
        Regex::Star(Box::new(self))
    }

    /// `self+` — one or more repetitions, expressed as `self{1,∞}`.
    pub fn plus(self) -> Self {
        Regex::Repeat(Box::new(self), 1, None)
    }

    /// Numeric occurrence indicator `self{min,max}` (`max = None` for `∞`).
    pub fn repeat(self, min: u32, max: Option<u32>) -> Self {
        Regex::Repeat(Box::new(self), min, max)
    }

    /// Concatenation of a sequence of expressions (left-associated).
    ///
    /// # Panics
    /// Panics when `parts` is empty — the grammar has no ε expression.
    pub fn sequence<I: IntoIterator<Item = Regex>>(parts: I) -> Self {
        let mut iter = parts.into_iter();
        let first = iter
            .next()
            .expect("Regex::sequence needs at least one part");
        iter.fold(first, Regex::then)
    }

    /// Union of a sequence of expressions (left-associated).
    ///
    /// # Panics
    /// Panics when `parts` is empty.
    pub fn any_of<I: IntoIterator<Item = Regex>>(parts: I) -> Self {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("Regex::any_of needs at least one part");
        iter.fold(first, Regex::or)
    }

    /// Whether `ε ∈ L(self)` (the paper's *nullable* predicate).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Symbol(_) => false,
            Regex::Concat(l, r) => l.nullable() && r.nullable(),
            Regex::Union(l, r) => l.nullable() || r.nullable(),
            Regex::Optional(_) | Regex::Star(_) => true,
            Regex::Repeat(inner, min, _) => *min == 0 || inner.nullable(),
        }
    }

    /// Number of AST nodes (the paper's `|e|` up to a constant factor).
    pub fn size(&self) -> usize {
        match self {
            Regex::Symbol(_) => 1,
            Regex::Concat(l, r) | Regex::Union(l, r) => 1 + l.size() + r.size(),
            Regex::Optional(inner) | Regex::Star(inner) | Regex::Repeat(inner, _, _) => {
                1 + inner.size()
            }
        }
    }

    /// Number of positions, i.e. leaves labeled with alphabet symbols
    /// (`|Pos(e)|`).
    pub fn num_positions(&self) -> usize {
        match self {
            Regex::Symbol(_) => 1,
            Regex::Concat(l, r) | Regex::Union(l, r) => l.num_positions() + r.num_positions(),
            Regex::Optional(inner) | Regex::Star(inner) | Regex::Repeat(inner, _, _) => {
                inner.num_positions()
            }
        }
    }

    /// Visits every subexpression in preorder.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Regex)) {
        f(self);
        match self {
            Regex::Symbol(_) => {}
            Regex::Concat(l, r) | Regex::Union(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Regex::Optional(inner) | Regex::Star(inner) | Regex::Repeat(inner, _, _) => {
                inner.visit(f)
            }
        }
    }

    /// Collects the positions (symbol occurrences) in left-to-right order.
    pub fn positions(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Regex::Symbol(sym) = e {
                out.push(*sym);
            }
        });
        out
    }

    /// Whether the expression contains a Kleene star (including `{i,∞}`
    /// repetitions, which have unbounded iteration like a star).
    pub fn is_star_free(&self) -> bool {
        match self {
            Regex::Symbol(_) => true,
            Regex::Concat(l, r) | Regex::Union(l, r) => l.is_star_free() && r.is_star_free(),
            Regex::Optional(inner) => inner.is_star_free(),
            Regex::Star(_) => false,
            Regex::Repeat(_, _, None) => false,
            Regex::Repeat(inner, _, Some(_)) => inner.is_star_free(),
        }
    }

    /// Whether this expression is `e+` — the one-or-more closure, carried as
    /// `Repeat(e, 1, ∞)`. Unlike genuine counters, `e+` has the exact
    /// follow-set semantics of `e e*` (iterate any number of times, exit
    /// after at least one), so the parse-tree algorithms treat it natively.
    pub fn is_plus(&self) -> bool {
        matches!(self, Regex::Repeat(_, 1, None))
    }

    /// Whether the expression uses numeric occurrence indicators (`{i,j}`).
    ///
    /// `e+` (= `e{1,∞}`) does **not** count: its iteration behaviour is
    /// fully captured by the parse tree's follow relation (identical to
    /// `e e*`), so it takes the Theorem 3.5/4.x paths instead of the
    /// counting machinery of Section 3.3.
    pub fn has_counting(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Regex::Repeat(_, _, _)) && !e.is_plus() {
                found = true;
            }
        });
        found
    }

    /// Whether the expression contains a native `e+` node anywhere.
    pub fn has_plus(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if e.is_plus() {
                found = true;
            }
        });
        found
    }
}

impl std::fmt::Debug for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regex::Symbol(s) => write!(f, "{}", s.index()),
            Regex::Concat(l, r) => write!(f, "({l:?}·{r:?})"),
            Regex::Union(l, r) => write!(f, "({l:?}+{r:?})"),
            Regex::Optional(e) => write!(f, "{e:?}?"),
            Regex::Star(e) => write!(f, "{e:?}*"),
            Regex::Repeat(e, min, Some(max)) => write!(f, "{e:?}{{{min},{max}}}"),
            Regex::Repeat(e, min, None) => write!(f, "{e:?}{{{min},}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn abc() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut sigma = Alphabet::new();
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        let c = sigma.intern("c");
        (sigma, a, b, c)
    }

    #[test]
    fn builders_compose() {
        let (_, a, b, c) = abc();
        // (ab + b(b?)a)* — the paper's e1 from Example 2.1 with an extra c.
        let e = Regex::symbol(a)
            .then(Regex::symbol(b))
            .or(Regex::symbol(b)
                .then(Regex::symbol(b).opt())
                .then(Regex::symbol(a)))
            .star()
            .then(Regex::symbol(c));
        assert_eq!(e.num_positions(), 6);
        assert!(!e.nullable());
        assert!(!e.is_star_free());
    }

    #[test]
    fn nullability_rules() {
        let (_, a, b, _) = abc();
        assert!(!Regex::symbol(a).nullable());
        assert!(Regex::symbol(a).opt().nullable());
        assert!(Regex::symbol(a).star().nullable());
        assert!(Regex::symbol(a).then(Regex::symbol(b)).opt().nullable());
        assert!(!Regex::symbol(a).then(Regex::symbol(b).opt()).nullable());
        assert!(Regex::symbol(a)
            .opt()
            .then(Regex::symbol(b).star())
            .nullable());
        assert!(Regex::symbol(a).or(Regex::symbol(b).opt()).nullable());
        assert!(!Regex::symbol(a).or(Regex::symbol(b)).nullable());
        // Numeric occurrences: e{0,j} is nullable, e{1,j} is not (for non-nullable e).
        assert!(Regex::symbol(a).repeat(0, Some(3)).nullable());
        assert!(!Regex::symbol(a).repeat(1, Some(3)).nullable());
        assert!(Regex::symbol(a).opt().repeat(2, Some(3)).nullable());
    }

    #[test]
    fn size_and_positions() {
        let (_, a, b, _) = abc();
        let e = Regex::symbol(a).then(Regex::symbol(b)).star();
        assert_eq!(e.size(), 4);
        assert_eq!(e.num_positions(), 2);
        assert_eq!(e.positions(), vec![a, b]);
    }

    #[test]
    fn star_freedom() {
        let (_, a, b, _) = abc();
        assert!(Regex::symbol(a).then(Regex::symbol(b).opt()).is_star_free());
        assert!(!Regex::symbol(a).star().is_star_free());
        assert!(!Regex::symbol(a).plus().is_star_free());
        assert!(Regex::symbol(a).repeat(2, Some(5)).is_star_free());
        assert!(!Regex::symbol(a).repeat(2, None).is_star_free());
    }

    #[test]
    fn sequence_and_any_of() {
        let (_, a, b, c) = abc();
        let seq = Regex::sequence([Regex::symbol(a), Regex::symbol(b), Regex::symbol(c)]);
        assert_eq!(seq.num_positions(), 3);
        let alt = Regex::any_of([Regex::symbol(a), Regex::symbol(b), Regex::symbol(c)]);
        assert_eq!(alt.num_positions(), 3);
        assert!(matches!(alt, Regex::Union(_, _)));
    }

    #[test]
    fn counting_detection() {
        let (_, a, b, _) = abc();
        assert!(!Regex::symbol(a).then(Regex::symbol(b)).has_counting());
        assert!(Regex::symbol(a).repeat(2, Some(3)).has_counting());
        // e+ is the one-or-more closure, not a counter.
        assert!(!Regex::symbol(a).plus().has_counting());
        assert!(Regex::symbol(a).plus().is_plus());
        assert!(Regex::symbol(a).repeat(2, None).has_counting());
        assert!(!Regex::symbol(a).repeat(2, None).is_plus());
    }
}
