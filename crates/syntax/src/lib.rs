//! Regular expression syntax for deterministic content models.
//!
//! This crate provides the front-end of the library reproducing
//! *"Deterministic Regular Expressions in Linear Time"* (Groz, Maneth,
//! Staworko — PODS 2012):
//!
//! * [`Symbol`] / [`Alphabet`] — interned alphabet symbols (XML element
//!   names are multi-character, so symbols are interned strings, not chars);
//! * [`Regex`] — the abstract syntax tree of regular expressions with
//!   concatenation, union (`+`), optionality (`?`), Kleene star (`*`) and
//!   numeric occurrence indicators (`{i,j}`, XML-Schema style);
//! * [`parse`] — a parser for a conventional textual syntax;
//! * [`normalize`](mod@normalize) — the normalizer enforcing the paper's structural
//!   restrictions (R2) and (R3), which guarantee that the size of the parse
//!   tree is linear in the number of positions.
//!
//! The crate is purely syntactic: semantic structures (parse-tree pointers,
//! `First`/`Last` sets, the Glushkov automaton, determinism tests, matchers)
//! live in the `redet-tree`, `redet-automata` and `redet-core` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod ast;
pub mod error;
pub mod normalize;
pub mod parser;
pub mod printer;
pub mod properties;

pub use alphabet::{Alphabet, Symbol};
pub use ast::Regex;
pub use error::{ParseError, Span, SyntaxError};
pub use normalize::normalize;
pub use parser::{parse, parse_spanned, parse_spanned_with_alphabet, parse_with_alphabet};
pub use properties::ExprStats;
