//! Error types for parsing and structural validation, and the byte-span
//! type used to point diagnostics back into the source text.

use std::fmt;

/// A half-open byte range `start..end` into the source text of a content
/// model. Spans are attached to parse errors and, via
/// [`crate::parser::parse_spanned`], to every alphabet position of an
/// expression, so downstream diagnostics (e.g. determinism-conflict
/// witnesses) can point at the exact occurrences in the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The span shifted right by `delta` bytes (used to rebase spans of an
    /// embedded content model into its enclosing document, e.g. a DTD).
    pub fn offset(self, delta: usize) -> Self {
        Span {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error produced while parsing the textual regular expression syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// Human readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A structural error detected while normalizing or validating an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyntaxError {
    /// A numeric occurrence indicator `e{i,j}` with `i > j`.
    InvalidRepeatBounds {
        /// Lower bound of the offending indicator.
        min: u32,
        /// Upper bound of the offending indicator.
        max: u32,
    },
    /// A numeric occurrence indicator `e{0,0}`, which denotes `{ε}` and has
    /// no counterpart in the paper's grammar (there is no ε expression).
    EmptyRepeat,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxError::InvalidRepeatBounds { min, max } => {
                write!(f, "invalid numeric occurrence bounds {{{min},{max}}}: lower bound exceeds upper bound")
            }
            SyntaxError::EmptyRepeat => {
                write!(f, "numeric occurrence {{0,0}} denotes the empty word only, which the grammar cannot express")
            }
        }
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::new(4, "unexpected ')'");
        assert!(e.to_string().contains("offset 4"));
        assert!(e.to_string().contains("unexpected"));
        let s = SyntaxError::InvalidRepeatBounds { min: 3, max: 1 };
        assert!(s.to_string().contains("{3,1}"));
        assert!(SyntaxError::EmptyRepeat.to_string().contains("{0,0}"));
    }
}
