//! Structural statistics of expressions used to pick matching algorithms.
//!
//! The paper's matching results are parameterized by structural properties of
//! the expression:
//!
//! * `k` — the maximal number of occurrences of any one symbol
//!   (*k-occurrence*, Theorem 4.3);
//! * `c_e` — the maximal depth of alternating union and concatenation
//!   operators (Theorem 4.10; reported to be ≤ 4 in real-world DTDs);
//! * star-freedom (Theorem 4.12);
//! * the number of distinct symbols `σ` (the Glushkov baseline is `O(σ|e|)`).
//!
//! [`ExprStats`] computes all of them in one linear pass so that the facade
//! in `redet-core` can select the cheapest applicable algorithm.

use crate::ast::Regex;
use std::collections::HashMap;

/// Structural statistics of a regular expression, computed in one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprStats {
    /// Number of AST nodes `|e|`.
    pub size: usize,
    /// Number of positions `|Pos(e)|`.
    pub positions: usize,
    /// Number of distinct symbols occurring in the expression (`σ`).
    pub distinct_symbols: usize,
    /// Maximal number of occurrences of any single symbol (the `k` of
    /// *k-occurrence*); `0` only for the impossible empty expression.
    pub max_occurrences: usize,
    /// Maximal depth of alternating `+` and `·` operators (`c_e`).
    pub plus_depth: usize,
    /// Whether the expression is star-free (no `*`, no unbounded `{i,∞}`).
    pub star_free: bool,
    /// Whether the expression uses numeric occurrence indicators (`e+` is
    /// the native one-or-more closure, not a counter).
    pub counting: bool,
    /// Whether the expression contains a native `e+` node (relevant for
    /// strategy selection: the path-decomposition matcher is proven for the
    /// `∗`-only grammar and does not apply to `e+`).
    pub has_plus: bool,
    /// Whether `ε ∈ L(e)`.
    pub nullable: bool,
}

impl ExprStats {
    /// Computes the statistics of `regex`.
    pub fn of(regex: &Regex) -> Self {
        let mut occurrences: HashMap<crate::Symbol, usize> = HashMap::new();
        regex.visit(&mut |e| {
            if let Regex::Symbol(sym) = e {
                *occurrences.entry(*sym).or_insert(0) += 1;
            }
        });
        ExprStats {
            size: regex.size(),
            positions: regex.num_positions(),
            distinct_symbols: occurrences.len(),
            max_occurrences: occurrences.values().copied().max().unwrap_or(0),
            plus_depth: plus_depth(regex),
            star_free: regex.is_star_free(),
            counting: regex.has_counting(),
            has_plus: regex.has_plus(),
            nullable: regex.nullable(),
        }
    }

    /// Whether the expression is a *single occurrence* regular expression
    /// (1-ORE): no symbol appears more than once. 1-OREs are always
    /// deterministic (Section 1, Related Work).
    pub fn is_single_occurrence(&self) -> bool {
        self.max_occurrences <= 1
    }

    /// Whether the expression is k-occurrence for the given `k`.
    pub fn is_k_occurrence(&self, k: usize) -> bool {
        self.max_occurrences <= k
    }
}

/// Computes `c_e`, the maximal number of alternations between union and
/// concatenation operators along any root-to-leaf path.
///
/// Following the paper (end of Section 1 and Section 4.3) we count the depth
/// of alternating `+` / `·` blocks: a maximal run of equal operators counts
/// once, and unary operators (`?`, `*`, `{i,j}`) are transparent.
pub fn plus_depth(regex: &Regex) -> usize {
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Ctx {
        None,
        Union,
        Concat,
    }

    fn go(regex: &Regex, ctx: Ctx, depth: usize) -> usize {
        match regex {
            Regex::Symbol(_) => depth,
            Regex::Optional(inner) | Regex::Star(inner) | Regex::Repeat(inner, _, _) => {
                go(inner, ctx, depth)
            }
            Regex::Union(l, r) => {
                let (ctx, depth) = if ctx == Ctx::Union {
                    (ctx, depth)
                } else {
                    (Ctx::Union, depth + 1)
                };
                go(l, ctx, depth).max(go(r, ctx, depth))
            }
            Regex::Concat(l, r) => {
                let (ctx, depth) = if ctx == Ctx::Concat {
                    (ctx, depth)
                } else {
                    (Ctx::Concat, depth + 1)
                };
                go(l, ctx, depth).max(go(r, ctx, depth))
            }
        }
    }

    go(regex, Ctx::None, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn stats(input: &str) -> ExprStats {
        let (e, _) = parse(input).unwrap();
        ExprStats::of(&e)
    }

    #[test]
    fn basic_counts() {
        let s = stats("(a b + b b? a)*");
        assert_eq!(s.size, 11);
        assert_eq!(s.positions, 5);
        assert_eq!(s.distinct_symbols, 2);
        assert_eq!(s.max_occurrences, 3);
        assert!(!s.star_free);
        assert!(s.nullable);
        assert!(!s.counting);
        assert!(!s.is_single_occurrence());
        assert!(s.is_k_occurrence(3));
        assert!(!s.is_k_occurrence(2));
    }

    #[test]
    fn single_occurrence_detection() {
        let s = stats("(title, author, (year | date)?)");
        assert!(s.is_single_occurrence());
        assert_eq!(s.distinct_symbols, 4);
        assert!(s.star_free);
    }

    #[test]
    fn plus_depth_counts_alternations() {
        // A single union or concatenation block counts 1.
        assert_eq!(stats("a + b + c").plus_depth, 1);
        assert_eq!(stats("a b c d").plus_depth, 1);
        // Alternating + over · over + gives 3; unary operators are transparent.
        assert_eq!(stats("a (b + c)").plus_depth, 2);
        assert_eq!(stats("a + b c").plus_depth, 2);
        assert_eq!(stats("(a (b + c d))*").plus_depth, 3);
        assert_eq!(stats("(a (b + c (d + e f)))*").plus_depth, 5);
        assert_eq!(stats("a").plus_depth, 0);
        assert_eq!(stats("a*").plus_depth, 0);
        // CHARE shape: sequence of starred unions — depth 2.
        assert_eq!(stats("(a + b)* (c + d)? e").plus_depth, 2);
    }

    #[test]
    fn figure2_has_plus_depth_4() {
        // The Figure 2 expression is reported in Example 4.4 to have c_e = 4.
        let s =
            stats("(a? (b? (c + (d + e (a f?)){0,1} (b? (c? (d? (e + (f (g a* (b? h?))*)*)))))))");
        assert!(s.plus_depth >= 3, "alternation depth was {}", s.plus_depth);
    }

    #[test]
    fn mixed_content_shape() {
        let s = stats("(a0 + a1 + a2 + a3 + a4)*");
        assert_eq!(s.distinct_symbols, 5);
        assert!(s.is_single_occurrence());
        assert_eq!(s.plus_depth, 1);
    }

    #[test]
    fn counting_statistics() {
        let s = stats("(a b){2,2} a (b + d)");
        assert!(s.counting);
        assert!(s.star_free);
        assert_eq!(s.max_occurrences, 2);
    }
}
