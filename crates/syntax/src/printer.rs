//! Pretty-printing of regular expressions back to the textual syntax.

use crate::alphabet::Alphabet;
use crate::ast::Regex;
use std::fmt::Write as _;

/// Renders `regex` using the names from `alphabet`.
///
/// The output re-parses to a structurally identical expression (round-trip
/// property, checked by tests), emitting parentheses only where precedence
/// requires them.
///
/// ```
/// use redet_syntax::{parse, printer::to_string};
///
/// let (e, sigma) = parse("(a b + b b? a)*").unwrap();
/// assert_eq!(to_string(&e, &sigma), "(a b + b b? a)*");
/// ```
pub fn to_string(regex: &Regex, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_expr(regex, alphabet, Prec::Union, &mut out);
    out
}

/// Operator precedence levels, weakest binding first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Union,
    Concat,
    Postfix,
}

fn write_expr(regex: &Regex, alphabet: &Alphabet, ambient: Prec, out: &mut String) {
    let own = precedence(regex);
    let parens = own < ambient;
    if parens {
        out.push('(');
    }
    match regex {
        Regex::Symbol(sym) => out.push_str(alphabet.name(*sym)),
        Regex::Concat(l, r) => {
            write_expr(l, alphabet, Prec::Concat, out);
            out.push(' ');
            // Parenthesize a right-nested concatenation so that the printed
            // form re-parses to the same (left-associated) tree shape.
            write_expr(r, alphabet, Prec::Postfix, out);
        }
        Regex::Union(l, r) => {
            write_expr(l, alphabet, Prec::Union, out);
            out.push_str(" + ");
            // Right operand of a union must not swallow the following `+`
            // at equal precedence; since union is associative this only
            // affects the printed shape, which the round-trip tests pin down.
            write_expr(r, alphabet, Prec::Concat, out);
        }
        Regex::Optional(inner) => {
            write_expr(inner, alphabet, Prec::Postfix, out);
            out.push('?');
        }
        Regex::Star(inner) => {
            write_expr(inner, alphabet, Prec::Postfix, out);
            out.push('*');
        }
        Regex::Repeat(inner, min, max) => {
            write_expr(inner, alphabet, Prec::Postfix, out);
            match max {
                Some(max) if max == min => {
                    let _ = write!(out, "{{{min}}}");
                }
                Some(max) => {
                    let _ = write!(out, "{{{min},{max}}}");
                }
                None => {
                    let _ = write!(out, "{{{min},}}");
                }
            }
        }
    }
    if parens {
        out.push(')');
    }
}

fn precedence(regex: &Regex) -> Prec {
    match regex {
        Regex::Union(_, _) => Prec::Union,
        Regex::Concat(_, _) => Prec::Concat,
        Regex::Symbol(_) | Regex::Optional(_) | Regex::Star(_) | Regex::Repeat(_, _, _) => {
            Prec::Postfix
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trips(input: &str) {
        let (e, sigma) = parse(input).unwrap();
        let printed = to_string(&e, &sigma);
        let (reparsed, _) = parse(&printed).unwrap();
        assert_eq!(
            format!("{e:?}"),
            format!("{reparsed:?}"),
            "round trip failed for {input:?} printed as {printed:?}"
        );
    }

    #[test]
    fn round_trip_paper_examples() {
        round_trips("(a b + b (b?) a)*");
        round_trips("(a* b a + b b)*");
        round_trips("(c?((a b*)(a? c)))*(b a)");
        round_trips("(a b){2,2} a (b + d)");
        round_trips("((a{2,3} + b){2}){2} b");
        round_trips("a? b? c? d?");
        round_trips("(title, author+, (year | date)?)");
    }

    #[test]
    fn round_trip_nested_unions() {
        round_trips("a + b c + d*");
        round_trips("(a + b) (c + d)");
        round_trips("a + (b + c) + d");
        round_trips("((a + b)? (c d)*){1,4}");
    }

    #[test]
    fn minimal_parentheses() {
        let (e, sigma) = parse("(a + b) c*").unwrap();
        assert_eq!(to_string(&e, &sigma), "(a + b) c*");
        let (e, sigma) = parse("a (b c)").unwrap();
        assert_eq!(to_string(&e, &sigma), "a (b c)");
        let (e, sigma) = parse("a b c").unwrap();
        assert_eq!(to_string(&e, &sigma), "a b c");
        let (e, sigma) = parse("((a))").unwrap();
        assert_eq!(to_string(&e, &sigma), "a");
    }

    #[test]
    fn repeat_rendering() {
        let (e, sigma) = parse("a{3} b{2,} c{1,5}").unwrap();
        assert_eq!(to_string(&e, &sigma), "a{3} b{2,} c{1,5}");
    }
}
