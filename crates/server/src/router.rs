//! Multi-schema dispatch: one [`ValidationService`] per registered schema,
//! routed by the schema id carried in every handle's generation word.
//!
//! A deployment serves more than one document type. The router holds a
//! small registry of `(schema id, ValidationService)` pairs — each service
//! tagged with its registry index via [`ValidationService::set_tag`] — and
//! exposes the same handle-shaped surface as a single service. Opening
//! names a schema; every later operation recovers the owning service from
//! [`DocId::tag`] alone, so the front end tracks nothing per connection
//! beyond the handle itself.
//!
//! Registration is a startup concern (`redet serve --schemas …` loads DTD
//! files before binding the socket); after that the router is all hot
//! path: routing is one bounds-checked index. [`SchemaRouter::tick`]
//! forwards the logical clock to every service so idle sweeping governs
//! all schemas uniformly.

use redet_core::{Code, Diagnostic};
use redet_schema::{DocEvent, DocId, FeedStatus, Schema, ServiceLimits, ValidationService};
use std::sync::Arc;

/// One registered schema: its wire id and its dedicated service.
struct Entry {
    id: String,
    schema: Arc<Schema>,
    service: ValidationService,
}

/// A registry of validation services keyed by schema id; see the module
/// docs.
#[derive(Default)]
pub struct SchemaRouter {
    entries: Vec<Entry>,
}

impl SchemaRouter {
    /// Creates an empty router.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `schema` under the wire id `id`, governed by `limits`,
    /// and returns its routing tag (the registry index). Ids must be
    /// unique ([`Code::DuplicateSchema`]) and the registry is capped at
    /// `u16::MAX` entries — the width of the tag field in the handle's
    /// generation word.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        schema: Arc<Schema>,
        limits: ServiceLimits,
    ) -> Result<u16, Diagnostic> {
        let id = id.into();
        if self.entries.iter().any(|entry| entry.id == id) {
            return Err(Diagnostic::new(
                Code::DuplicateSchema,
                format!("schema id '{id}' is already registered"),
            ));
        }
        let Ok(tag) = u16::try_from(self.entries.len()) else {
            return Err(Diagnostic::new(
                Code::DuplicateSchema,
                "schema registry is full (65535 schemas)",
            ));
        };
        let mut service = ValidationService::with_limits(Arc::clone(&schema), limits);
        service.set_tag(tag);
        self.entries.push(Entry {
            id,
            schema,
            service,
        });
        Ok(tag)
    }

    /// Hot-swaps the schema registered under `id`: documents already in
    /// flight keep validating against the artifact they opened under, new
    /// opens bind `schema`, and the old artifact drops when its last
    /// in-flight handle finishes (see
    /// [`ValidationService::swap_schema`]). Returns the entry's routing
    /// tag; unknown ids refuse with [`Code::UnknownSchema`] — a publish
    /// never creates a new wire id, so a fleet's id set stays a startup
    /// decision.
    pub fn publish(&mut self, id: &str, schema: Arc<Schema>) -> Result<u16, Diagnostic> {
        match self
            .entries
            .iter_mut()
            .enumerate()
            .find(|(_, entry)| entry.id == id)
        {
            Some((tag, entry)) => {
                entry.service.swap_schema(Arc::clone(&schema));
                entry.schema = schema;
                Ok(tag as u16)
            }
            None => Err(Diagnostic::new(
                Code::UnknownSchema,
                format!("no schema registered under id '{id}'"),
            )),
        }
    }

    /// Number of registered schemas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no schema is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered schema ids, in registration (tag) order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|entry| entry.id.as_str())
    }

    /// The schema registered under `id`, if any.
    #[must_use]
    pub fn schema(&self, id: &str) -> Option<&Arc<Schema>> {
        self.entries
            .iter()
            .find(|entry| entry.id == id)
            .map(|entry| &entry.schema)
    }

    /// Opens an in-flight document against the schema registered under
    /// `id`. Refuses with [`Code::UnknownSchema`] for unregistered ids and
    /// forwards the service's own [`Code::ServiceOverloaded`] backpressure
    /// at the in-flight cap.
    pub fn open(&mut self, id: &str) -> Result<DocId, Diagnostic> {
        match self.entries.iter_mut().find(|entry| entry.id == id) {
            Some(entry) => entry.service.try_open(),
            None => Err(Diagnostic::new(
                Code::UnknownSchema,
                format!("no schema registered under id '{id}'"),
            )),
        }
    }

    /// Routes [`ValidationService::feed`] to the handle's service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed(&mut self, doc: DocId, events: &[DocEvent]) -> FeedStatus {
        self.service_of_mut(doc).feed(doc, events)
    }

    /// Routes [`ValidationService::feed_bytes`] to the handle's service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed_bytes(&mut self, doc: DocId, bytes: &[u8]) -> FeedStatus {
        self.service_of_mut(doc).feed_bytes(doc, bytes)
    }

    /// Routes [`ValidationService::finish`] to the handle's service.
    #[must_use = "the validation verdict is the point of finish()"]
    pub fn finish(&mut self, doc: DocId) -> Result<(), Diagnostic> {
        self.service_of_mut(doc).finish(doc)
    }

    /// Routes [`ValidationService::close`] to the handle's service.
    pub fn close(&mut self, doc: DocId) {
        self.service_of_mut(doc).close(doc);
    }

    /// Routes [`ValidationService::status`] to the handle's service.
    #[must_use]
    pub fn status(&self, doc: DocId) -> FeedStatus {
        self.service_of(doc).status(doc)
    }

    /// Routes [`ValidationService::diagnostic`] to the handle's service.
    #[must_use]
    pub fn diagnostic(&self, doc: DocId) -> Option<&Diagnostic> {
        self.service_of(doc).diagnostic(doc)
    }

    /// Routes [`ValidationService::is_swept`] to the handle's service.
    #[must_use]
    pub fn is_swept(&self, doc: DocId) -> bool {
        self.service_of(doc).is_swept(doc)
    }

    /// Advances the logical clock of **every** registered service and
    /// sweeps their idle handles; returns the total number swept.
    pub fn tick(&mut self, now: u64) -> usize {
        self.entries
            .iter_mut()
            .map(|entry| entry.service.tick(now))
            .sum()
    }

    /// Total in-flight documents across all registered services.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.entries
            .iter()
            .map(|entry| entry.service.in_flight())
            .sum()
    }

    /// Validates one whole raw-byte document against the schema under
    /// `id`: open + feed + finish in one call, admission-checked — the
    /// loop the wire protocol runs per request, also rendered by
    /// [`crate::wire::render_verdict`].
    pub fn validate_bytes(&mut self, id: &str, bytes: &[u8]) -> Result<(), Diagnostic> {
        let doc = self.open(id)?;
        let _ = self.feed_bytes(doc, bytes);
        self.finish(doc)
    }

    /// The service that issued `doc`, recovered from the handle's tag.
    ///
    /// # Panics
    /// Panics if the tag names no registered schema — a handle from a
    /// different router, the same programming-error contract as mixing
    /// handles across services.
    fn service_of(&self, doc: DocId) -> &ValidationService {
        &self
            .entries
            .get(doc.tag() as usize)
            .expect("DocId tag names no schema registered with this router")
            .service
    }

    /// Mutable [`SchemaRouter::service_of`].
    fn service_of_mut(&mut self, doc: DocId) -> &mut ValidationService {
        &mut self
            .entries
            .get_mut(doc.tag() as usize)
            .expect("DocId tag names no schema registered with this router")
            .service
    }
}

impl std::fmt::Debug for SchemaRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemaRouter")
            .field(
                "schemas",
                &self.entries.iter().map(|e| &e.id).collect::<Vec<_>>(),
            )
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use redet_schema::SchemaBuilder;

    fn pair_schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("pair", "(left, right)")
            .element_empty("left")
            .element_empty("right")
            .build()
            .unwrap()
    }

    fn list_schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("list", "(item)*")
            .element_empty("item")
            .build()
            .unwrap()
    }

    #[test]
    fn handles_route_to_their_schema() {
        let mut router = SchemaRouter::new();
        assert_eq!(
            router
                .register("pair", pair_schema(), ServiceLimits::default())
                .unwrap(),
            0
        );
        assert_eq!(
            router
                .register("list", list_schema(), ServiceLimits::default())
                .unwrap(),
            1
        );
        assert_eq!(router.len(), 2);
        assert_eq!(router.ids().collect::<Vec<_>>(), ["pair", "list"]);

        // Interleave two documents of different schemas; the tag routes.
        let p = router.open("pair").unwrap();
        let l = router.open("list").unwrap();
        assert_eq!(p.tag(), 0);
        assert_eq!(l.tag(), 1);
        assert_eq!(router.feed_bytes(p, b"<pair><left/>"), FeedStatus::NeedMore);
        assert_eq!(router.feed_bytes(l, b"<list><item/>"), FeedStatus::NeedMore);
        assert_eq!(
            router.feed_bytes(p, b"<right/></pair>"),
            FeedStatus::Accepted
        );
        assert_eq!(router.feed_bytes(l, b"</list>"), FeedStatus::Accepted);
        assert!(router.finish(p).is_ok());
        assert!(router.finish(l).is_ok());
        assert_eq!(router.in_flight(), 0);

        // A pair document is not a list document.
        assert!(router
            .validate_bytes("pair", b"<pair><left/><right/></pair>")
            .is_ok());
        let err = router
            .validate_bytes("list", b"<pair><left/><right/></pair>")
            .unwrap_err();
        assert_eq!(err.code(), Code::UnknownElement);
    }

    #[test]
    fn unknown_and_duplicate_schemas_are_diagnostics() {
        let mut router = SchemaRouter::new();
        router
            .register("pair", pair_schema(), ServiceLimits::default())
            .unwrap();
        let dup = router
            .register("pair", list_schema(), ServiceLimits::default())
            .unwrap_err();
        assert_eq!(dup.code(), Code::DuplicateSchema);
        let unknown = router.open("nope").unwrap_err();
        assert_eq!(unknown.code(), Code::UnknownSchema);
        assert_eq!(
            wire::render_diagnostic(&unknown),
            "err E103 - no schema registered under id 'nope'"
        );
    }

    #[test]
    fn publish_swaps_in_flight_safe() {
        let mut router = SchemaRouter::new();
        router
            .register("doc", pair_schema(), ServiceLimits::default())
            .unwrap();

        // Open under v1 (pair), feed half of a pair document.
        let old = router.open("doc").unwrap();
        assert_eq!(
            router.feed_bytes(old, b"<pair><left/>"),
            FeedStatus::NeedMore
        );

        // Hot-swap v2 (list) mid-flight; the tag is stable.
        assert_eq!(router.publish("doc", list_schema()).unwrap(), 0);
        assert!(Arc::ptr_eq(
            router.schema("doc").unwrap(),
            router.schema("doc").unwrap()
        ));

        // The in-flight document still validates as a pair…
        assert_eq!(
            router.feed_bytes(old, b"<right/></pair>"),
            FeedStatus::Accepted
        );
        assert!(router.finish(old).is_ok());

        // …while a post-publish open rejects it under the list schema.
        let new = router.open("doc").unwrap();
        let _ = router.feed_bytes(new, b"<pair><left/><right/></pair>");
        assert_eq!(router.finish(new).unwrap_err().code(), Code::UnknownElement);

        let unknown = router.publish("nope", pair_schema()).unwrap_err();
        assert_eq!(unknown.code(), Code::UnknownSchema);
    }

    #[test]
    fn ticks_sweep_every_schema() {
        let limits = ServiceLimits::default().with_idle_budget(1);
        let mut router = SchemaRouter::new();
        router.register("pair", pair_schema(), limits).unwrap();
        router.register("list", list_schema(), limits).unwrap();
        let p = router.open("pair").unwrap();
        let l = router.open("list").unwrap();
        assert_eq!(router.feed_bytes(p, b"<pair>"), FeedStatus::NeedMore);
        assert_eq!(router.feed_bytes(l, b"<list>"), FeedStatus::NeedMore);
        assert_eq!(router.tick(5), 2);
        assert_eq!(router.diagnostic(p).unwrap().code(), Code::IdleTimeout);
        assert_eq!(router.diagnostic(l).unwrap().code(), Code::IdleTimeout);
        router.close(p);
        router.close(l);
    }
}
