//! `redet-server`: a dependency-free network front end (and the `redet`
//! CLI) for the streaming validation service.
//!
//! The crate turns the in-process serving surface of `redet-schema` — the
//! governed [`redet_schema::ValidationService`] with its `DocId` handles,
//! resource limits, and idle sweeping — into something you can put on a
//! socket, without pulling in an async runtime or any dependency at all:
//!
//! - [`wire`] — the stable single-line rendering of validation verdicts
//!   shared by server responses and CLI output, pinned by test.
//! - [`router`] — [`SchemaRouter`]: one `ValidationService` per registered
//!   schema, dispatched by the schema tag in each handle's generation word.
//! - [`server`] — [`Server`]: the non-blocking `std::net` poll loop that
//!   streams request bytes straight into `feed_bytes` and writes each
//!   verdict back as one line, with a wall-clock timer source driving the
//!   idle sweeper and a graceful drain on shutdown.
//! - [`cli`] — the `redet` binary's subcommands (`validate`, `lint`,
//!   `serve`, `bench`, `request`, `shutdown`), hand-rolled argument
//!   parsing included.
//!
//! Every governance refusal (`E301`–`E307`) crosses the wire byte-
//! identical to its in-process rendering; the loopback integration tests
//! hold the two sides to that.

pub mod cli;
pub mod router;
pub mod server;
pub mod wire;

pub use router::SchemaRouter;
pub use server::{Server, ServerConfig, ServerReport, ShutdownHandle};
