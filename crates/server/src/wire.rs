//! The stable single-line wire/CLI rendering of validation verdicts.
//!
//! Server responses and `redet` CLI output share one rendering so they can
//! never drift apart — and the rendering itself is **pinned** by
//! `tests/wire_pinning.rs`, so it never drifts across releases either.
//! The grammar:
//!
//! ```text
//! verdict := "ok"
//!          | "err " code " " span " " message
//! code    := "E" digit digit digit                  (see redet_core::Code)
//! span    := start ".." end | "-"                   (byte span, when known)
//! message := the diagnostic message, one line
//! ```
//!
//! The message is the [`Diagnostic`]'s own text with the document location
//! (` at /path (event N)`) appended when present, and with `\n`/`\r`
//! escaped to the two-character sequences `\\n`/`\\r` — a verdict is
//! always exactly one line, whatever a diagnostic message contains.
//! Responses on the wire are this line plus a trailing `\n`.

use redet_core::Diagnostic;

/// Renders a validation verdict as the stable single-line form (without
/// the trailing newline).
#[must_use]
pub fn render_verdict(verdict: &Result<(), Diagnostic>) -> String {
    match verdict {
        Ok(()) => "ok".to_owned(),
        Err(diagnostic) => render_diagnostic(diagnostic),
    }
}

/// Renders a diagnostic as the stable single-line `err …` form: code, byte
/// span (`-` when absent), and the one-line escaped message with the
/// document location appended.
#[must_use]
pub fn render_diagnostic(diagnostic: &Diagnostic) -> String {
    let mut out = String::with_capacity(diagnostic.message().len() + 32);
    out.push_str("err ");
    out.push_str(diagnostic.code().as_str());
    out.push(' ');
    match diagnostic.span() {
        Some(span) => {
            out.push_str(&span.start.to_string());
            out.push_str("..");
            out.push_str(&span.end.to_string());
        }
        None => out.push('-'),
    }
    out.push(' ');
    escape_into(&mut out, diagnostic.message());
    if let Some(location) = diagnostic.location() {
        escape_into(
            &mut out,
            &format!(" at /{} (event {})", location.path, location.event),
        );
    }
    out
}

/// Appends `text` to `out` with newlines and carriage returns escaped, so
/// the rendering stays a single line.
fn escape_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_core::Code;

    #[test]
    fn ok_is_ok() {
        assert_eq!(render_verdict(&Ok(())), "ok");
    }

    #[test]
    fn messages_stay_on_one_line() {
        let d = Diagnostic::new(Code::MalformedMarkup, "line one\nline two\r");
        assert_eq!(render_diagnostic(&d), "err E206 - line one\\nline two\\r");
    }
}
