//! The dependency-free TCP front end: non-blocking `std::net` sockets
//! behind a small readiness poll loop.
//!
//! # Wire protocol
//!
//! The protocol is line-oriented and deliberately `netcat`-friendly. A
//! connection carries a sequence of requests; each request is one header
//! line followed by the document bytes, and each gets exactly one response
//! line (the stable rendering of [`crate::wire`]):
//!
//! ```text
//! "V " schema-id " " byte-len "\n" body     framed: exactly byte-len bytes
//! "V " schema-id "\n" body…                 unframed: the rest of the stream
//! "P " schema-id " " byte-len "\n" dtd      hot-swap publish (when enabled)
//! "Q\n"                                     graceful shutdown (when enabled)
//! ```
//!
//! Framed requests pipeline: a client may send many back to back (even
//! across schemas — each opens its own handle on the right service) and
//! read the responses in order. An unframed request is the last one on its
//! connection: the server answers as soon as the document balances (or
//! rejects), or — for a **half-closed** connection — when the peer shuts
//! down its write side and the remaining input ends, whichever comes
//! first. Blank lines between requests are ignored.
//!
//! A `P` request carries DTD source text (always framed — a schema needs a
//! definite end) and atomically hot-swaps the schema registered under its
//! id: documents already in flight finish against the artifact they opened
//! under, requests after the `ok` response validate against the new one
//! (see [`SchemaRouter::publish`]). The body compiles through the server's
//! [`redet_schema::registry::Registry`], so re-publishing previously seen
//! text is a cache hit. Compile failures answer with the build diagnostic
//! and leave the previous schema serving; unknown ids answer `E103` —
//! publishing never creates a new wire id.
//!
//! Body bytes stream straight into [`ValidationService::feed_bytes`]
//! exactly as the poll loop receives them, so chunk boundaries fall
//! wherever the network put them — the service contract makes the verdict
//! chunking-invariant, and every verdict (including the `E3xx` refusals:
//! overload at admission, idle sweeps, per-document limits) is
//! **byte-identical** to what an in-process `open`/`feed_bytes`/`finish`
//! sequence reports.
//!
//! # The poll loop
//!
//! One thread, no `epoll`, no runtime: the listener and every connection
//! socket are non-blocking; each iteration accepts ready connections,
//! advances a wall-clock logical tick into [`SchemaRouter::tick`] (the
//! idle sweeper), pumps every connection (flush pending output, read
//! available input, run the request state machine), answers connections
//! whose document was idle-swept, and reaps finished ones. When an
//! iteration makes no progress the loop sleeps for
//! [`ServerConfig::idle_wait`] — the dependency-free stand-in for a
//! readiness syscall, bounding idle CPU at a few wakeups per millisecond
//! while keeping worst-case added latency at one `idle_wait`.
//!
//! # Shutdown
//!
//! [`ShutdownHandle::shutdown`] (or a `Q` request, when enabled) puts the
//! loop into **drain**: no new connections are accepted, in-flight
//! requests continue to completion, and after
//! [`ServerConfig::drain_deadline`] any straggler's document handle is
//! closed and the loop exits with its [`ServerReport`].

use crate::router::SchemaRouter;
use crate::wire;
use redet_core::{Code, Diagnostic};
use redet_schema::registry::Registry;
use redet_schema::{DocId, FeedStatus};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Referenced only by intra-doc links in the module docs.
#[allow(unused_imports)]
use redet_schema::{ServiceLimits, ValidationService};

/// Tuning knobs of a [`Server`]; the default is sensible for both
/// production-ish serving and tests (tests shrink `tick_interval` to make
/// idle sweeps fast).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// How much wall-clock time one logical tick of the services' idle
    /// clock represents; [`ServiceLimits::with_idle_budget`] budgets are
    /// multiples of this. Default: 1 second.
    pub tick_interval: Duration,
    /// How long the poll loop sleeps when an iteration made no progress.
    /// Default: 1 ms.
    pub idle_wait: Duration,
    /// How long a draining server waits for in-flight connections before
    /// closing their handles and exiting. Default: 5 seconds.
    pub drain_deadline: Duration,
    /// Whether the `Q` wire request triggers a graceful shutdown. Default:
    /// `true` (disable for servers exposed beyond a trusted network).
    pub allow_shutdown_command: bool,
    /// Whether the `P` wire request may hot-swap schemas. Default: `true`
    /// (disable for servers exposed beyond a trusted network).
    pub allow_publish_command: bool,
    /// Longest accepted header line in bytes; longer ones are a
    /// [`Code::ProtocolError`] refusal. Default: 4096.
    pub max_header_len: usize,
    /// Longest accepted `P` (publish) body in bytes; longer ones are a
    /// [`Code::ProtocolError`] refusal. Default: 1 MiB.
    pub max_publish_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tick_interval: Duration::from_secs(1),
            idle_wait: Duration::from_millis(1),
            drain_deadline: Duration::from_secs(5),
            allow_shutdown_command: true,
            allow_publish_command: true,
            max_header_len: 4096,
            max_publish_len: 1 << 20,
        }
    }
}

/// A cloneable handle that asks a running [`Server`] to drain and exit.
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful shutdown: the server stops accepting, drains
    /// in-flight connections, and [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a [`Server`] did over its lifetime, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections accepted.
    pub connections: u64,
    /// Document verdicts written to the wire.
    pub documents: u64,
    /// … of which `ok`.
    pub accepted: u64,
    /// … of which `err` (schema rejections and `E3xx` refusals alike).
    pub rejected: u64,
    /// Handles swept by the idle governor.
    pub swept: u64,
    /// Schemas hot-swapped by successful `P` requests.
    pub published: u64,
    /// Header lines refused with [`Code::ProtocolError`].
    pub protocol_errors: u64,
}

/// The TCP front end over a [`SchemaRouter`]; see the module docs.
pub struct Server {
    listener: TcpListener,
    router: SchemaRouter,
    /// Compiles `P` (publish) bodies; seeding it via
    /// [`Server::set_registry`] with the registry that compiled the
    /// startup schemas makes re-published known text a cache hit.
    registry: Registry,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and wraps
    /// `router` behind it. The socket listens immediately; requests are
    /// only served once [`Server::run`] starts polling.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: SchemaRouter,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            router,
            registry: Registry::new(),
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Replaces the compile registry `P` (publish) requests go through —
    /// pass the registry that compiled the startup schemas so its
    /// content-hash cache carries over into serving.
    pub fn set_registry(&mut self, registry: Registry) {
        self.registry = registry;
    }

    /// The compile registry `P` (publish) requests go through.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The bound address — the way to learn the actual port after binding
    /// port 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that shuts this server down from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// The schema registry this server routes to.
    pub fn router(&self) -> &SchemaRouter {
        &self.router
    }

    /// Runs the poll loop until shutdown, then drains and returns the
    /// lifetime report; see the module docs for the loop's phases.
    pub fn run(mut self) -> io::Result<ServerReport> {
        self.listener.set_nonblocking(true)?;
        let started = Instant::now();
        let tick_ms = u64::try_from(self.config.tick_interval.as_millis())
            .unwrap_or(1000)
            .max(1);
        let mut last_tick = 0u64;
        let mut conns: Vec<Conn> = Vec::new();
        let mut report = ServerReport::default();
        let mut drain_started: Option<Instant> = None;
        let mut scratch = vec![0u8; 16 * 1024];

        loop {
            let mut progress = false;
            let draining = self.stop.load(Ordering::Relaxed);
            if draining && drain_started.is_none() {
                drain_started = Some(Instant::now());
            }

            // Phase 1: accept every connection that is ready right now.
            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_ok() {
                                let _ = stream.set_nodelay(true);
                                conns.push(Conn::new(stream));
                                report.connections += 1;
                                progress = true;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }

            // Phase 2: advance the wall-clock timer source into the
            // services' logical idle clock.
            let now_tick =
                u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX) / tick_ms;
            if now_tick > last_tick {
                last_tick = now_tick;
                let swept = self.router.tick(now_tick);
                if swept > 0 {
                    report.swept += swept as u64;
                    progress = true;
                }
            }

            // Phase 3: pump I/O and the request state machine per
            // connection, then surface idle sweeps on the wire.
            for conn in &mut conns {
                progress |= conn.pump(
                    &mut self.router,
                    &mut self.registry,
                    &self.config,
                    &self.stop,
                    &mut report,
                    &mut scratch,
                );
                progress |= conn.respond_if_swept(&mut self.router, &mut report);
            }

            // Phase 4: reap connections that finished or died, releasing
            // any document handle they still hold.
            let mut i = 0;
            while i < conns.len() {
                if conns[i].finished() {
                    conns.swap_remove(i).abort(&mut self.router);
                    progress = true;
                } else {
                    i += 1;
                }
            }

            if draining {
                let expired =
                    drain_started.is_some_and(|t| t.elapsed() >= self.config.drain_deadline);
                if conns.is_empty() || expired {
                    for conn in conns.drain(..) {
                        conn.abort(&mut self.router);
                    }
                    return Ok(report);
                }
            }

            if !progress {
                std::thread::sleep(self.config.idle_wait);
            }
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("router", &self.router)
            .field("config", &self.config)
            .finish()
    }
}

/// Where a connection is in its request sequence.
enum ConnState {
    /// Accumulating a header line.
    Header,
    /// Streaming body bytes into an open document. `remaining` is the
    /// framed byte count still expected (`None` for unframed requests).
    Body { doc: DocId, remaining: Option<u64> },
    /// Consuming and dropping the framed body of a refused request, so the
    /// refusal does not desynchronize the requests pipelined behind it.
    Discard { remaining: u64 },
    /// Accumulating the framed DTD body of a `P` (publish) request.
    /// `remaining` counts the bytes still expected into `body`.
    Publish {
        /// The schema id being hot-swapped.
        id: String,
        /// Framed bytes still expected.
        remaining: u64,
        /// The DTD source text received so far.
        body: Vec<u8>,
    },
}

/// One client connection of the poll loop.
struct Conn {
    stream: TcpStream,
    /// Received, not-yet-processed bytes.
    inbuf: Vec<u8>,
    /// Rendered, not-yet-written response bytes.
    outbuf: Vec<u8>,
    state: ConnState,
    /// The peer half-closed (or closed) its write side.
    eof: bool,
    /// No further requests will be served; close once `outbuf` flushes.
    done: bool,
    /// The socket errored; drop immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            state: ConnState::Header,
            eof: false,
            done: false,
            dead: false,
        }
    }

    /// Whether the connection can be reaped.
    fn finished(&self) -> bool {
        self.dead || (self.done && self.outbuf.is_empty())
    }

    /// Releases the document handle a reaped connection still holds.
    fn abort(self, router: &mut SchemaRouter) {
        if let ConnState::Body { doc, .. } = self.state {
            router.close(doc);
        }
    }

    /// One poll-loop visit: flush, read, process, flush.
    fn pump(
        &mut self,
        router: &mut SchemaRouter,
        registry: &mut Registry,
        config: &ServerConfig,
        stop: &AtomicBool,
        report: &mut ServerReport,
        scratch: &mut [u8],
    ) -> bool {
        let mut progress = self.flush();
        if self.dead || self.done {
            return progress;
        }
        if !self.eof {
            // Bounded reads per visit so one firehose connection cannot
            // starve the rest of the loop.
            for _ in 0..4 {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.eof = true;
                        progress = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(&scratch[..n]);
                        progress = true;
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.dead = true;
                        return progress;
                    }
                }
            }
        }
        progress |= self.process(router, registry, config, stop, report);
        progress |= self.flush();
        progress
    }

    /// Writes as much pending output as the socket accepts.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Runs the request state machine over whatever `inbuf` holds.
    fn process(
        &mut self,
        router: &mut SchemaRouter,
        registry: &mut Registry,
        config: &ServerConfig,
        stop: &AtomicBool,
        report: &mut ServerReport,
    ) -> bool {
        let mut progress = false;
        loop {
            if self.done || self.dead {
                return progress;
            }
            match self.state {
                ConnState::Header => {
                    // Tolerate blank separator lines (`\n`, `\r\n`).
                    let blank = self
                        .inbuf
                        .iter()
                        .take_while(|&&b| b == b'\n' || b == b'\r')
                        .count();
                    if blank > 0 {
                        self.inbuf.drain(..blank);
                        progress = true;
                    }
                    let Some(pos) = self.inbuf.iter().position(|&b| b == b'\n') else {
                        if self.inbuf.len() > config.max_header_len {
                            self.refuse(report, "header line exceeds the length cap");
                            progress = true;
                        } else if self.eof {
                            if self.inbuf.is_empty() {
                                self.done = true;
                            } else {
                                self.refuse(report, "input ended inside a header line");
                            }
                            progress = true;
                        }
                        return progress;
                    };
                    let line: Vec<u8> = self.inbuf.drain(..=pos).collect();
                    progress = true;
                    let line = &line[..line.len() - 1];
                    let line = line.strip_suffix(b"\r").unwrap_or(line);
                    let Ok(text) = std::str::from_utf8(line) else {
                        self.refuse(report, "header line is not UTF-8");
                        continue;
                    };
                    self.handle_header(text, router, config, stop, report);
                }
                ConnState::Body { doc, remaining } => {
                    if remaining == Some(0) {
                        self.respond_verdict(&router.finish(doc), report);
                        self.state = ConnState::Header;
                        progress = true;
                        continue;
                    }
                    if self.inbuf.is_empty() {
                        if self.eof {
                            // Half-closed (unframed) or truncated (framed)
                            // input: the verdict is whatever finishing the
                            // partial document reports.
                            self.respond_verdict(&router.finish(doc), report);
                            self.state = ConnState::Header;
                            self.done = true;
                            progress = true;
                        }
                        return progress;
                    }
                    let take = remaining
                        .map_or(self.inbuf.len(), |r| {
                            usize::try_from(r).unwrap_or(usize::MAX)
                        })
                        .min(self.inbuf.len());
                    let status = router.feed_bytes(doc, &self.inbuf[..take]);
                    self.inbuf.drain(..take);
                    progress = true;
                    match remaining {
                        Some(r) => {
                            let left = r - take as u64;
                            self.state = ConnState::Body {
                                doc,
                                remaining: Some(left),
                            };
                            // left == 0 responds at the top of the loop.
                        }
                        None => {
                            if matches!(status, FeedStatus::Accepted | FeedStatus::Rejected) {
                                // Unframed requests answer as soon as the
                                // verdict is known and end the connection.
                                self.respond_verdict(&router.finish(doc), report);
                                self.state = ConnState::Header;
                                self.done = true;
                            }
                        }
                    }
                }
                ConnState::Discard { remaining } => {
                    if self.inbuf.is_empty() {
                        if self.eof {
                            self.done = true;
                            progress = true;
                        }
                        return progress;
                    }
                    let take = usize::try_from(remaining)
                        .unwrap_or(usize::MAX)
                        .min(self.inbuf.len());
                    self.inbuf.drain(..take);
                    progress = true;
                    let left = remaining - take as u64;
                    self.state = if left == 0 {
                        ConnState::Header
                    } else {
                        ConnState::Discard { remaining: left }
                    };
                }
                ConnState::Publish { remaining, .. } if remaining > 0 => {
                    if self.inbuf.is_empty() {
                        if self.eof {
                            self.refuse(report, "input ended inside a publish body");
                            progress = true;
                        }
                        return progress;
                    }
                    let take = usize::try_from(remaining)
                        .unwrap_or(usize::MAX)
                        .min(self.inbuf.len());
                    let ConnState::Publish {
                        remaining, body, ..
                    } = &mut self.state
                    else {
                        unreachable!("matched Publish above");
                    };
                    body.extend_from_slice(&self.inbuf[..take]);
                    *remaining -= take as u64;
                    self.inbuf.drain(..take);
                    progress = true;
                }
                ConnState::Publish { .. } => {
                    // Body complete: compile (cache-aware) and hot-swap.
                    let state = std::mem::replace(&mut self.state, ConnState::Header);
                    let ConnState::Publish { id, body, .. } = state else {
                        unreachable!("matched Publish above");
                    };
                    let outcome = match std::str::from_utf8(&body) {
                        Ok(source) => registry
                            .compile(source)
                            .and_then(|schema| router.publish(&id, schema).map(|_| ())),
                        Err(_) => Err(Diagnostic::new(
                            Code::ProtocolError,
                            "publish body is not UTF-8",
                        )),
                    };
                    match outcome {
                        Ok(()) => {
                            report.published += 1;
                            self.respond("ok", report);
                        }
                        Err(refusal) => {
                            self.respond(&wire::render_diagnostic(&refusal), report);
                        }
                    }
                    progress = true;
                }
            }
        }
    }

    /// Parses and acts on one header line.
    fn handle_header(
        &mut self,
        text: &str,
        router: &mut SchemaRouter,
        config: &ServerConfig,
        stop: &AtomicBool,
        report: &mut ServerReport,
    ) {
        let mut parts = text.split_ascii_whitespace();
        match parts.next() {
            Some("V") => {
                let Some(schema) = parts.next() else {
                    self.refuse(report, "V needs a schema id");
                    return;
                };
                let remaining = match parts.next() {
                    Some(len) => match len.parse::<u64>() {
                        Ok(n) => Some(n),
                        Err(_) => {
                            self.refuse(report, "unparsable body length");
                            return;
                        }
                    },
                    None => None,
                };
                if parts.next().is_some() {
                    self.refuse(report, "trailing tokens after the header");
                    return;
                }
                match router.open(schema) {
                    Ok(doc) => self.state = ConnState::Body { doc, remaining },
                    Err(refusal) => {
                        // E103 / E305: the refusal is the verdict. A framed
                        // body is still consumed so pipelined requests
                        // behind it stay in sync; an unframed body cannot
                        // be delimited, so the connection ends.
                        self.respond(&wire::render_diagnostic(&refusal), report);
                        report.documents += 1;
                        report.rejected += 1;
                        match remaining {
                            Some(n) if n > 0 => self.state = ConnState::Discard { remaining: n },
                            Some(_) => {}
                            None => self.done = true,
                        }
                    }
                }
            }
            Some("P") => {
                if !config.allow_publish_command {
                    self.refuse(report, "the publish command is disabled");
                    return;
                }
                let Some(id) = parts.next() else {
                    self.refuse(report, "P needs a schema id");
                    return;
                };
                let Some(len) = parts.next() else {
                    self.refuse(report, "P needs a framed body length");
                    return;
                };
                let Ok(remaining) = len.parse::<u64>() else {
                    self.refuse(report, "unparsable body length");
                    return;
                };
                if parts.next().is_some() {
                    self.refuse(report, "trailing tokens after the header");
                    return;
                }
                if remaining > config.max_publish_len as u64 {
                    self.refuse(report, "publish body exceeds the length cap");
                    return;
                }
                if router.schema(id).is_none() {
                    // E103: the refusal is the verdict — a publish never
                    // creates a new wire id. The framed body is still
                    // consumed so pipelined requests stay in sync.
                    let refusal = Diagnostic::new(
                        Code::UnknownSchema,
                        format!("no schema registered under id '{id}'"),
                    );
                    self.respond(&wire::render_diagnostic(&refusal), report);
                    if remaining > 0 {
                        self.state = ConnState::Discard { remaining };
                    }
                    return;
                }
                self.state = ConnState::Publish {
                    id: id.to_owned(),
                    remaining,
                    body: Vec::with_capacity(
                        usize::try_from(remaining)
                            .unwrap_or(0)
                            .min(config.max_publish_len),
                    ),
                };
            }
            Some("Q") => {
                if config.allow_shutdown_command {
                    self.respond("ok", report);
                    stop.store(true, Ordering::Relaxed);
                } else {
                    self.refuse(report, "the shutdown command is disabled");
                }
                self.done = true;
            }
            _ => self.refuse(report, "unrecognized header"),
        }
    }

    /// Answers a connection whose in-flight document the idle governor
    /// swept: the peer went quiet, so the E306 verdict is pushed without
    /// waiting for more input, and the connection ends.
    fn respond_if_swept(&mut self, router: &mut SchemaRouter, report: &mut ServerReport) -> bool {
        if self.done || self.dead {
            return false;
        }
        let ConnState::Body { doc, .. } = self.state else {
            return false;
        };
        if !router.is_swept(doc) {
            return false;
        }
        self.respond_verdict(&router.finish(doc), report);
        self.state = ConnState::Header;
        self.done = true;
        let _ = self.flush();
        true
    }

    /// Queues one response line.
    fn respond(&mut self, line: &str, _report: &mut ServerReport) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Queues a document verdict and counts it.
    fn respond_verdict(&mut self, verdict: &Result<(), Diagnostic>, report: &mut ServerReport) {
        report.documents += 1;
        match verdict {
            Ok(()) => report.accepted += 1,
            Err(_) => report.rejected += 1,
        }
        let line = wire::render_verdict(verdict);
        self.respond(&line, report);
    }

    /// Refuses a malformed request with a [`Code::ProtocolError`] line and
    /// ends the connection (the framing is lost, so nothing behind the bad
    /// header can be trusted).
    fn refuse(&mut self, report: &mut ServerReport, message: &str) {
        report.protocol_errors += 1;
        let line = wire::render_diagnostic(&Diagnostic::new(Code::ProtocolError, message));
        self.respond(&line, report);
        self.inbuf.clear();
        self.done = true;
    }
}
