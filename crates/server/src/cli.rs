//! The `redet` binary: hand-rolled subcommand parsing over the serving
//! plumbing of this crate.
//!
//! ```text
//! redet validate <schema.dtd> <doc.xml>…   validate documents, caret diagnostics
//! redet lint <schema.dtd>…                 lint DTDs for determinism
//! redet serve --addr A --schema id=path…   the TCP front end
//! redet bench [--workers N]…               throughput measurement
//! redet request --addr A --schema id <doc> one framed wire round-trip
//! redet publish --addr A --schema id <dtd> hot-swap a schema (P)
//! redet shutdown --addr A                  graceful remote shutdown (Q)
//! ```
//!
//! Exit codes are uniform across subcommands: `0` success / all documents
//! valid, `1` at least one validation or lint finding, `2` usage, I/O, or
//! schema-compilation failure. There is no argument-parsing dependency —
//! flags are matched directly, which keeps the binary's dependency
//! closure at exactly the workspace crates.

use crate::router::SchemaRouter;
use crate::server::{Server, ServerConfig};
use crate::wire;
use redet_schema::registry::{Provenance, Registry};
use redet_schema::{Schema, SchemaBuilder, ServiceLimits, ValidatorPool};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything `redet --help` prints.
const USAGE: &str = "\
redet — deterministic-content-model validation, from the command line or a socket

USAGE:
    redet validate <schema.dtd> <doc.xml>...
        Validate documents against a DTD. Prints one verdict line per
        document plus a caret-underlined source excerpt for each error.

    redet lint <schema.dtd>...
        Compile DTDs and report every diagnostic (parse errors, duplicate
        declarations, determinism conflicts with witnesses).

    redet serve --addr <host:port> --schema <id>=<schema.dtd> [--schema ...]
                [--max-in-flight N] [--max-depth N] [--max-bytes N]
                [--max-events N] [--max-name-len N] [--idle-timeout TICKS]
                [--tick-ms MS] [--no-shutdown-command] [--no-publish-command]
        Serve the wire protocol: 'V <id> <len>\\n<body>' (framed, pipelines)
        or 'V <id>\\n<body>' (unframed, one per connection); one response
        line per request; 'P <id> <len>\\n<dtd>' hot-swaps a schema and 'Q'
        drains and exits, unless disabled. Schemas load through the
        content-hashed registry cache (startup prints compiled/cached
        provenance per id; identical DTD text compiles once). Prints
        'listening on <addr>' once the socket is bound.

    redet bench [--workers N] [--docs N] [--chapters N] [--seed N]
        Measure batch (event) and streaming (byte) validation throughput
        over the generated book corpus, through the sharded ValidatorPool.

    redet request --addr <host:port> --schema <id> <doc.xml>
        Send one framed request to a running server and print the response.

    redet publish --addr <host:port> --schema <id> <schema.dtd>
        Hot-swap the schema served under <id>: in-flight documents finish
        against the old schema, later requests validate against the new.

    redet shutdown --addr <host:port>
        Ask a running server to drain and exit.

EXIT CODES:
    0  success / everything valid
    1  at least one document or schema was rejected
    2  usage, I/O, or schema-compilation error
";

/// Runs the CLI against `args` (the process arguments without the binary
/// name) and returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("publish") => cmd_publish(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("help" | "--help" | "-h") | None => {
            print!("{USAGE}");
            i32::from(args.is_empty())
        }
        Some(other) => {
            eprintln!("redet: unknown subcommand '{other}'\n");
            eprint!("{USAGE}");
            2
        }
    }
}

/// Reads a file or explains why it could not be read.
fn read_file(path: &str) -> Result<Vec<u8>, i32> {
    std::fs::read(path).map_err(|e| {
        eprintln!("redet: cannot read {path}: {e}");
        2
    })
}

/// Compiles a DTD file, printing caret-underlined diagnostics on failure.
fn load_schema(path: &str) -> Result<Arc<Schema>, i32> {
    let bytes = read_file(path)?;
    let source = String::from_utf8_lossy(&bytes).into_owned();
    match SchemaBuilder::new().parse_dtd(&source).build() {
        Ok(schema) => Ok(schema),
        Err(diagnostics) => {
            eprintln!("redet: {path} is not a usable schema:");
            for diagnostic in &diagnostics {
                eprintln!("  {}", wire::render_diagnostic(diagnostic));
                if let Some(span) = diagnostic.span() {
                    eprintln!("{}", underline(&source, span.start, span.end));
                }
            }
            Err(2)
        }
    }
}

/// Compiles a DTD file through the registry's content-hash cache, so
/// byte-identical schema text across `--schema` flags compiles once.
/// Returns the artifact plus its cached/compiled provenance; failures
/// print the first build diagnostic caret-underlined.
fn load_schema_cached(
    registry: &mut Registry,
    path: &str,
) -> Result<(Arc<Schema>, Provenance), i32> {
    let bytes = read_file(path)?;
    let source = String::from_utf8_lossy(&bytes).into_owned();
    match registry.compile_traced(&source) {
        Ok(pair) => Ok(pair),
        Err(diagnostic) => {
            eprintln!("redet: {path} is not a usable schema:");
            eprintln!("  {}", wire::render_diagnostic(&diagnostic));
            if let Some(span) = diagnostic.span() {
                eprintln!("{}", underline(&source, span.start, span.end));
            }
            Err(2)
        }
    }
}

/// Renders the line containing `start..end` with a caret underline, the
/// same excerpt style the schema linter example established.
fn underline(source: &str, start: usize, end: usize) -> String {
    let start = start.min(source.len());
    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[start..]
        .find('\n')
        .map_or(source.len(), |i| start + i);
    let line = &source[line_start..line_end];
    let pad = " ".repeat(start - line_start);
    let carets = "^".repeat((end.min(line_end).saturating_sub(start)).max(1));
    format!("    {line}\n    {pad}{carets}")
}

/// `redet validate`: one router, one registered schema, one framed
/// validation per document — the same loop the server runs per request.
fn cmd_validate(args: &[String]) -> i32 {
    let [schema_path, docs @ ..] = args else {
        eprintln!("usage: redet validate <schema.dtd> <doc.xml>...");
        return 2;
    };
    if docs.is_empty() {
        eprintln!("usage: redet validate <schema.dtd> <doc.xml>...");
        return 2;
    }
    let schema = match load_schema(schema_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut router = SchemaRouter::new();
    if let Err(d) = router.register("cli", schema, ServiceLimits::default()) {
        eprintln!("redet: {}", wire::render_diagnostic(&d));
        return 2;
    }
    let mut rejected = false;
    let mut io_error = false;
    for path in docs {
        let bytes = match read_file(path) {
            Ok(b) => b,
            Err(_) => {
                io_error = true;
                continue;
            }
        };
        let verdict = router.validate_bytes("cli", &bytes);
        println!("{path}: {}", wire::render_verdict(&verdict));
        if let Err(diagnostic) = &verdict {
            rejected = true;
            if let Some(span) = diagnostic.span() {
                let source = String::from_utf8_lossy(&bytes);
                println!("{}", underline(&source, span.start, span.end));
            }
        }
    }
    if io_error {
        2
    } else {
        i32::from(rejected)
    }
}

/// `redet lint`: compile each DTD and report every diagnostic, including
/// determinism-conflict witnesses.
fn cmd_lint(args: &[String]) -> i32 {
    if args.is_empty() {
        eprintln!("usage: redet lint <schema.dtd>...");
        return 2;
    }
    let mut findings = false;
    for path in args {
        let bytes = match read_file(path) {
            Ok(b) => b,
            Err(code) => return code,
        };
        let source = String::from_utf8_lossy(&bytes).into_owned();
        match SchemaBuilder::new().parse_dtd(&source).build() {
            Ok(schema) => {
                println!(
                    "{path}: ok — {} element declarations, all deterministic",
                    schema.len()
                );
            }
            Err(diagnostics) => {
                findings = true;
                println!("{path}: {} problem(s)", diagnostics.len());
                for diagnostic in &diagnostics {
                    println!("  {}", wire::render_diagnostic(diagnostic));
                    if let Some(span) = diagnostic.span() {
                        println!("{}", underline(&source, span.start, span.end));
                    }
                    if let Some(witness) = diagnostic.witness() {
                        println!(
                            "    note: positions #{} and #{} both read '{}' after a \
                             common prefix ({:?})",
                            witness.first.index(),
                            witness.second.index(),
                            witness.symbol_name,
                            witness.kind,
                        );
                    }
                }
            }
        }
    }
    i32::from(findings)
}

/// Pulls the value of a `--flag VALUE` pair out of the argument stream.
fn take_value<'a, I: Iterator<Item = &'a String>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a String, i32> {
    iter.next().ok_or_else(|| {
        eprintln!("redet: {flag} needs a value");
        2
    })
}

/// Parses a numeric flag value.
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, i32> {
    value.parse().map_err(|_| {
        eprintln!("redet: {flag} value '{value}' is not a number");
        2
    })
}

/// `redet serve`: load every `--schema id=path` into a router, bind the
/// address, print `listening on <addr>`, and run the poll loop to drain.
fn cmd_serve(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut schemas: Vec<(String, String)> = Vec::new();
    let mut limits = ServiceLimits::default();
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result = match arg.as_str() {
            "--addr" => take_value(arg, &mut iter).map(|v| addr = Some(v.clone())),
            "--schema" | "--schemas" => take_value(arg, &mut iter).and_then(|v| {
                let Some((id, path)) = v.split_once('=') else {
                    eprintln!("redet: {arg} wants <id>=<path.dtd>, got '{v}'");
                    return Err(2);
                };
                schemas.push((id.to_owned(), path.to_owned()));
                Ok(())
            }),
            "--max-in-flight" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_max_in_flight(n)),
            "--max-depth" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_max_depth(n)),
            "--max-bytes" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_max_bytes(n)),
            "--max-events" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_max_events(n)),
            "--max-name-len" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_max_name_len(n)),
            "--idle-timeout" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| limits = limits.with_idle_budget(n)),
            "--tick-ms" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n: u64| config.tick_interval = Duration::from_millis(n.max(1))),
            "--no-shutdown-command" => {
                config.allow_shutdown_command = false;
                Ok(())
            }
            "--no-publish-command" => {
                config.allow_publish_command = false;
                Ok(())
            }
            other => {
                eprintln!("redet serve: unknown flag '{other}'");
                Err(2)
            }
        };
        if let Err(code) = result {
            return code;
        }
    }
    let Some(addr) = addr else {
        eprintln!("redet serve: --addr is required (use 127.0.0.1:0 for an ephemeral port)");
        return 2;
    };
    if schemas.is_empty() {
        eprintln!("redet serve: at least one --schema <id>=<path.dtd> is required");
        return 2;
    }
    let mut registry = Registry::new();
    let mut router = SchemaRouter::new();
    for (id, path) in &schemas {
        let (schema, provenance) = match load_schema_cached(&mut registry, path) {
            Ok(pair) => pair,
            Err(code) => return code,
        };
        if let Err(d) = router.register(id.clone(), schema, limits) {
            eprintln!("redet serve: {}", wire::render_diagnostic(&d));
            return 2;
        }
        println!("schema '{id}' {provenance} from {path}");
    }
    let mut server = match Server::bind(addr.as_str(), router, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("redet serve: cannot bind {addr}: {e}");
            return 2;
        }
    };
    // Hand the warmed cache to the server so `P` requests re-publishing
    // known text hit it.
    server.set_registry(registry);
    match server.local_addr() {
        Ok(bound) => println!("listening on {bound}"),
        Err(_) => println!("listening on {addr}"),
    }
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(report) => {
            println!(
                "served {} connections, {} documents ({} ok, {} err), \
                 {} idle-swept, {} published, {} protocol errors",
                report.connections,
                report.documents,
                report.accepted,
                report.rejected,
                report.swept,
                report.published,
                report.protocol_errors,
            );
            0
        }
        Err(e) => {
            eprintln!("redet serve: {e}");
            2
        }
    }
}

/// `redet bench`: batch (pre-tokenized events through [`ValidatorPool`])
/// and streaming (raw bytes through the governed service) throughput over
/// the generated book corpus.
fn cmd_bench(args: &[String]) -> i32 {
    let mut workers = 1usize;
    let mut docs = 64usize;
    let mut chapters = 8usize;
    let mut seed = 42u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result = match arg.as_str() {
            "--workers" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n: usize| workers = n.max(1)),
            "--docs" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n: usize| docs = n.max(1)),
            "--chapters" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n: usize| chapters = n.max(1)),
            "--seed" => take_value(arg, &mut iter)
                .and_then(|v| parse_num(arg, v))
                .map(|n| seed = n),
            other => {
                eprintln!("redet bench: unknown flag '{other}'");
                Err(2)
            }
        };
        if let Err(code) = result {
            return code;
        }
    }

    let schema = SchemaBuilder::new()
        .parse_dtd(redet_workloads::BOOK_DTD)
        .build()
        .expect("BOOK_DTD compiles");
    let corpus: Vec<_> = (0..docs)
        .map(|i| redet_bench::book_document_events(&schema, chapters, seed ^ (i as u64)))
        .collect();
    let events: u64 = corpus.iter().map(|d| d.len() as u64).sum();
    let xml: Vec<String> = corpus
        .iter()
        .map(|d| redet_bench::events_to_xml(&schema, d))
        .collect();
    let bytes: u64 = xml.iter().map(|x| x.len() as u64).sum();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("corpus: {docs} documents x {chapters} chapters = {events} events, {bytes} bytes");
    if workers > cores {
        println!(
            "note: {workers} workers oversubscribe {cores} available core(s); \
             throughput reflects scheduling, not scaling"
        );
    }

    // Batch mode: pre-tokenized events through the sharded pool.
    let mut pool = ValidatorPool::new(Arc::clone(&schema), workers);
    let warmup = pool.validate_batch(&corpus);
    assert!(warmup.iter().all(Result::is_ok), "corpus must validate");
    let started = Instant::now();
    let repeats = 5u32;
    for _ in 0..repeats {
        let results = pool.validate_batch(&corpus);
        assert!(results.iter().all(Result::is_ok));
    }
    let batch = started.elapsed() / repeats;

    // Streaming mode: raw bytes through one governed service, the same
    // path a server connection takes.
    let mut router = SchemaRouter::new();
    router
        .register("book", Arc::clone(&schema), ServiceLimits::default())
        .expect("fresh router");
    let started = Instant::now();
    for _ in 0..repeats {
        for doc in &xml {
            let verdict = router.validate_bytes("book", doc.as_bytes());
            assert!(verdict.is_ok());
        }
    }
    let stream = started.elapsed() / repeats;

    let per_doc = |d: Duration| d.as_secs_f64() * 1e6 / docs as f64;
    let mb_s = |d: Duration| (bytes as f64 / 1e6) / d.as_secs_f64().max(1e-12);
    println!(
        "batch   ({workers} worker(s)): {:>10} total, {:>9.1} us/doc, {:>8.1} events/us",
        redet_bench::micros(batch),
        per_doc(batch),
        events as f64 / (batch.as_secs_f64() * 1e6),
    );
    println!(
        "stream  (1 connection) : {:>10} total, {:>9.1} us/doc, {:>8.1} MB/s",
        redet_bench::micros(stream),
        per_doc(stream),
        mb_s(stream),
    );
    0
}

/// Opens a TCP connection to `addr` or explains why it could not.
fn connect(addr: &str) -> Result<TcpStream, i32> {
    TcpStream::connect(addr).map_err(|e| {
        eprintln!("redet: cannot connect to {addr}: {e}");
        2
    })
}

/// Sends `request` and reads one response line.
fn round_trip(addr: &str, request: &[u8]) -> Result<String, i32> {
    let mut stream = connect(addr)?;
    stream.write_all(request).map_err(|e| {
        eprintln!("redet: write to {addr} failed: {e}");
        2
    })?;
    let mut line = String::new();
    BufReader::new(&mut stream)
        .read_line(&mut line)
        .map_err(|e| {
            eprintln!("redet: read from {addr} failed: {e}");
            2
        })?;
    Ok(line.trim_end_matches(['\n', '\r']).to_owned())
}

/// `redet request`: one framed wire round-trip against a running server.
fn cmd_request(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut schema: Option<String> = None;
    let mut doc: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result = match arg.as_str() {
            "--addr" => take_value(arg, &mut iter).map(|v| addr = Some(v.clone())),
            "--schema" => take_value(arg, &mut iter).map(|v| schema = Some(v.clone())),
            other if doc.is_none() && !other.starts_with('-') => {
                doc = Some(other.to_owned());
                Ok(())
            }
            other => {
                eprintln!("redet request: unknown flag '{other}'");
                Err(2)
            }
        };
        if let Err(code) = result {
            return code;
        }
    }
    let (Some(addr), Some(schema), Some(doc)) = (addr, schema, doc) else {
        eprintln!("usage: redet request --addr <host:port> --schema <id> <doc.xml>");
        return 2;
    };
    let body = match read_file(&doc) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut request = format!("V {schema} {}\n", body.len()).into_bytes();
    request.extend_from_slice(&body);
    match round_trip(&addr, &request) {
        Ok(line) => {
            println!("{line}");
            i32::from(line != "ok")
        }
        Err(code) => code,
    }
}

/// `redet publish`: one framed `P` round-trip — compile-and-hot-swap a
/// schema on a running server without dropping its in-flight documents.
fn cmd_publish(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut schema: Option<String> = None;
    let mut dtd: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let result = match arg.as_str() {
            "--addr" => take_value(arg, &mut iter).map(|v| addr = Some(v.clone())),
            "--schema" => take_value(arg, &mut iter).map(|v| schema = Some(v.clone())),
            other if dtd.is_none() && !other.starts_with('-') => {
                dtd = Some(other.to_owned());
                Ok(())
            }
            other => {
                eprintln!("redet publish: unknown flag '{other}'");
                Err(2)
            }
        };
        if let Err(code) = result {
            return code;
        }
    }
    let (Some(addr), Some(schema), Some(dtd)) = (addr, schema, dtd) else {
        eprintln!("usage: redet publish --addr <host:port> --schema <id> <schema.dtd>");
        return 2;
    };
    let body = match read_file(&dtd) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut request = format!("P {schema} {}\n", body.len()).into_bytes();
    request.extend_from_slice(&body);
    match round_trip(&addr, &request) {
        Ok(line) => {
            println!("{line}");
            i32::from(line != "ok")
        }
        Err(code) => code,
    }
}

/// `redet shutdown`: sends the `Q` request and reports the response.
fn cmd_shutdown(args: &[String]) -> i32 {
    let addr = match args {
        [flag, value] if flag == "--addr" => value,
        [value] => value,
        _ => {
            eprintln!("usage: redet shutdown --addr <host:port>");
            return 2;
        }
    };
    match round_trip(addr, b"Q\n") {
        Ok(line) => {
            println!("{line}");
            i32::from(line != "ok")
        }
        Err(code) => code,
    }
}
