//! The `redet` binary. All behavior lives in [`redet_server::cli`]; this
//! file only owns the process boundary (argument collection, exit code).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(redet_server::cli::run(&args));
}
