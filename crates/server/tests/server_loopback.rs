//! Loopback integration tests: a real [`Server`] on `127.0.0.1`, real
//! `TcpStream` clients, and adversarial delivery schedules.
//!
//! The invariant under test is **wire/in-process parity**: whatever bytes
//! a connection delivers — one at a time, pipelined in a single write,
//! half-closed mid-document — the response line is byte-identical to
//! rendering an in-process `try_open` → `feed_bytes` → `finish` sequence
//! over the same document through [`wire::render_verdict`]. That includes
//! the governance refusals: `E305` under admission overload and `E306`
//! from the wall-clock-driven idle sweeper.

use redet_schema::{Schema, SchemaBuilder, ServiceLimits};
use redet_server::server::ShutdownHandle;
use redet_server::{wire, SchemaRouter, Server, ServerConfig, ServerReport};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

const BIB_DTD: &str = include_str!("../testdata/bibliography.dtd");
const CAT_DTD: &str = include_str!("../testdata/catalog.dtd");
const GOOD_BIB: &str = include_str!("../testdata/good_bibliography.xml");
const BAD_BIB: &str = include_str!("../testdata/bad_bibliography.xml");
const GOOD_CAT: &str = include_str!("../testdata/good_catalog.xml");

fn schema(dtd: &str) -> Arc<Schema> {
    SchemaBuilder::new().parse_dtd(dtd).build().unwrap()
}

/// The in-process reference: the response line the service itself produces
/// for `bytes`, rendered exactly as the server renders it.
fn reference(schema: &Arc<Schema>, limits: ServiceLimits, bytes: &[u8]) -> String {
    let mut service = schema.service_with_limits(limits);
    let doc = service.try_open().unwrap();
    let _ = service.feed_bytes(doc, bytes);
    wire::render_verdict(&service.finish(doc))
}

/// A running server plus the pieces a test needs to talk to and stop it.
struct Fixture {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: JoinHandle<ServerReport>,
}

impl Fixture {
    /// Binds an ephemeral port and runs the server on its own thread.
    fn start(router: SchemaRouter, config: ServerConfig) -> Fixture {
        let server = Server::bind("127.0.0.1:0", router, config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let thread = thread::spawn(move || server.run().unwrap());
        Fixture {
            addr,
            handle,
            thread,
        }
    }

    /// Both testdata schemas under default-ish limits.
    fn two_schemas(limits: ServiceLimits, config: ServerConfig) -> Fixture {
        let mut router = SchemaRouter::new();
        router.register("bib", schema(BIB_DTD), limits).unwrap();
        router.register("cat", schema(CAT_DTD), limits).unwrap();
        Fixture::start(router, config)
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(self.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
    }

    /// Shuts down and returns the server's lifetime report.
    fn stop(self) -> ServerReport {
        self.handle.shutdown();
        self.thread.join().unwrap()
    }
}

/// Reads exactly one `\n`-terminated response line.
fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "truncated response: {line:?}");
    line.pop();
    line
}

/// Sends one framed request in `chunk`-sized writes and returns the
/// response line.
fn framed_request(fixture: &Fixture, id: &str, body: &[u8], chunk: usize) -> String {
    let mut stream = fixture.connect();
    let mut request = format!("V {id} {}\n", body.len()).into_bytes();
    request.extend_from_slice(body);
    for piece in request.chunks(chunk.max(1)) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
    }
    let mut reader = BufReader::new(stream);
    read_line(&mut reader)
}

#[test]
fn chunked_schedules_match_in_process() {
    let limits = ServiceLimits::default();
    let fixture = Fixture::two_schemas(limits, ServerConfig::default());
    for (id, dtd, body) in [
        ("bib", BIB_DTD, GOOD_BIB),
        ("bib", BIB_DTD, BAD_BIB),
        ("cat", CAT_DTD, GOOD_CAT),
    ] {
        let expected = reference(&schema(dtd), limits, body.as_bytes());
        for chunk in [1usize, 2, 3, 7, 16, usize::MAX] {
            let got = framed_request(&fixture, id, body.as_bytes(), chunk);
            assert_eq!(got, expected, "schema {id}, chunk size {chunk}");
        }
    }
    let report = fixture.stop();
    assert_eq!(report.documents, 18);
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn pipelined_requests_cross_schemas_in_one_write() {
    let limits = ServiceLimits::default();
    let fixture = Fixture::two_schemas(limits, ServerConfig::default());

    // Five framed requests in a single write: two schemas interleaved, a
    // rejection in the middle, an unknown schema whose framed body must be
    // discarded without desynchronizing the request behind it.
    let mut batch = Vec::new();
    let mut expected = Vec::new();
    for (id, dtd, body) in [
        ("bib", Some(BIB_DTD), GOOD_BIB),
        ("cat", Some(CAT_DTD), GOOD_CAT),
        ("bib", Some(BIB_DTD), BAD_BIB),
        ("nope", None, GOOD_CAT),
        ("cat", Some(CAT_DTD), GOOD_CAT),
    ] {
        batch.extend_from_slice(format!("V {id} {}\n", body.len()).as_bytes());
        batch.extend_from_slice(body.as_bytes());
        expected.push(match dtd {
            Some(dtd) => reference(&schema(dtd), limits, body.as_bytes()),
            None => format!("err E103 - no schema registered under id '{id}'"),
        });
    }

    let mut stream = fixture.connect();
    stream.write_all(&batch).unwrap();
    let mut reader = BufReader::new(stream);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(&read_line(&mut reader), want, "response #{i}");
    }
    let report = fixture.stop();
    assert_eq!(report.documents, 5);
    assert_eq!(report.connections, 1);
}

#[test]
fn half_closed_unframed_requests_answer_at_eof() {
    let limits = ServiceLimits::default();
    let fixture = Fixture::two_schemas(limits, ServerConfig::default());

    // A complete document: the verdict is known as soon as the root
    // closes, no EOF needed.
    let mut stream = fixture.connect();
    stream.write_all(b"V bib\n").unwrap();
    stream.write_all(GOOD_BIB.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(
        read_line(&mut reader),
        reference(&schema(BIB_DTD), limits, GOOD_BIB.as_bytes())
    );

    // A truncated document: half-closing the write side is the only
    // signal the input is over, and the verdict matches finishing the
    // same partial byte stream in-process.
    let partial = &GOOD_BIB.as_bytes()[..40];
    let mut stream = fixture.connect();
    stream.write_all(b"V bib\n").unwrap();
    stream.write_all(partial).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_string(&mut response).unwrap();
    let expected = reference(&schema(BIB_DTD), limits, partial);
    assert_eq!(response, format!("{expected}\n"));
    assert!(response.starts_with("err "), "a cut-off document rejects");
    fixture.stop();
}

#[test]
fn overload_refusals_are_byte_identical_e305() {
    let limits = ServiceLimits::default().with_max_in_flight(1);
    let fixture = Fixture::two_schemas(limits, ServerConfig::default());

    // Connection A parks mid-body, pinning the only admission slot.
    let mut parked = fixture.connect();
    parked.write_all(b"V bib 1000\n<bibliography>").unwrap();
    thread::sleep(Duration::from_millis(200));

    // Connection B is refused at admission with the service's own E305.
    let expected = {
        let schema = schema(BIB_DTD);
        let mut service = schema.service_with_limits(limits);
        let _held = service.try_open().unwrap();
        let refusal = service.try_open().unwrap_err();
        wire::render_diagnostic(&refusal)
    };
    let got = framed_request(&fixture, "bib", GOOD_BIB.as_bytes(), usize::MAX);
    assert_eq!(got, expected);
    assert_eq!(
        got,
        "err E305 - service is at its in-flight handle cap of 1"
    );

    // The refusal was per-service: the other schema still admits.
    assert_eq!(
        framed_request(&fixture, "cat", GOOD_CAT.as_bytes(), usize::MAX),
        "ok"
    );

    // Releasing the parked handle frees the slot for the next request.
    drop(parked);
    thread::sleep(Duration::from_millis(200));
    assert_eq!(
        framed_request(&fixture, "bib", GOOD_BIB.as_bytes(), usize::MAX),
        "ok"
    );
    fixture.stop();
}

#[test]
fn idle_sweeps_surface_e306_without_more_input() {
    let limits = ServiceLimits::default().with_idle_budget(1);
    let config = ServerConfig {
        tick_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let fixture = Fixture::two_schemas(limits, config);

    // Park mid-document and just wait: the wall-clock timer source drives
    // the sweeper, and the server pushes the verdict unprompted.
    let mut stream = fixture.connect();
    stream.write_all(b"V bib 1000\n<bibliography>").unwrap();
    let mut reader = BufReader::new(stream);
    let got = read_line(&mut reader);

    let expected = {
        let schema = schema(BIB_DTD);
        let mut service = schema.service_with_limits(limits);
        let doc = service.try_open().unwrap();
        let _ = service.feed_bytes(doc, b"<bibliography>");
        service.tick(100);
        wire::render_verdict(&service.finish(doc))
    };
    assert_eq!(got, expected);
    assert!(got.starts_with("err E306 "), "got: {got}");
    let report = fixture.stop();
    assert_eq!(report.swept, 1);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let limits = ServiceLimits::default();
    let fixture = Fixture::two_schemas(limits, ServerConfig::default());

    // Park a request mid-body, then ask for shutdown.
    let mut stream = fixture.connect();
    let body = GOOD_BIB.as_bytes();
    stream
        .write_all(format!("V bib {}\n", body.len()).as_bytes())
        .unwrap();
    stream.write_all(&body[..20]).unwrap();
    thread::sleep(Duration::from_millis(100));
    fixture.handle.shutdown();
    thread::sleep(Duration::from_millis(100));

    // The draining server still serves the rest of the in-flight request.
    stream.write_all(&body[20..]).unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(
        read_line(&mut reader),
        reference(&schema(BIB_DTD), limits, body)
    );
    let report = fixture.thread.join().unwrap();
    assert_eq!(report.documents, 1);
    assert_eq!(report.accepted, 1);
}

#[test]
fn q_command_shuts_the_server_down() {
    let fixture = Fixture::two_schemas(ServiceLimits::default(), ServerConfig::default());
    let mut stream = fixture.connect();
    stream.write_all(b"Q\n").unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(read_line(&mut reader), "ok");
    let report = fixture.thread.join().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.documents, 0);
}

#[test]
fn disabled_q_command_is_a_protocol_error() {
    let config = ServerConfig {
        allow_shutdown_command: false,
        ..ServerConfig::default()
    };
    let fixture = Fixture::two_schemas(ServiceLimits::default(), config);
    let mut stream = fixture.connect();
    stream.write_all(b"Q\n").unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(
        read_line(&mut reader),
        "err E309 - the shutdown command is disabled"
    );
    let report = fixture.stop();
    assert_eq!(report.protocol_errors, 1);
}

#[test]
fn malformed_headers_are_protocol_errors() {
    let fixture = Fixture::two_schemas(ServiceLimits::default(), ServerConfig::default());
    for (request, want) in [
        (&b"X huh\n"[..], "err E309 - unrecognized header"),
        (&b"V\n"[..], "err E309 - V needs a schema id"),
        (
            &b"V bib nonsense\n"[..],
            "err E309 - unparsable body length",
        ),
        (
            &b"V bib 3 extra\n"[..],
            "err E309 - trailing tokens after the header",
        ),
    ] {
        let mut stream = fixture.connect();
        stream.write_all(request).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream);
        assert_eq!(read_line(&mut reader), want, "request {request:?}");
    }

    // Input that ends inside a header line is also a protocol error …
    let mut stream = fixture.connect();
    stream.write_all(b"V bib").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    assert_eq!(
        read_line(&mut reader),
        "err E309 - input ended inside a header line"
    );

    // … but a connection that closes between requests is just done.
    let mut stream = fixture.connect();
    stream.write_all(b"\n\n").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert_eq!(response, "");
    fixture.stop();
}
