//! Pins the stable single-line wire/CLI rendering of verdicts.
//!
//! Every assertion here compares against an **exact string literal**. The
//! rendering is shared by server responses and CLI output and is part of
//! the crate's compatibility surface: a client may parse these lines, so
//! any change to them must be deliberate and show up as an edit to this
//! file. The diagnostics themselves come from real API calls (the schema
//! compiler, the governed service), not hand-built structs, so the pins
//! also lock the end-to-end message text a user actually sees.

use redet_core::{Code, Diagnostic};
use redet_schema::{FeedStatus, SchemaBuilder, ServiceLimits};
use redet_server::wire::{render_diagnostic, render_verdict};

#[test]
fn ok_renders_as_ok() {
    assert_eq!(render_verdict(&Ok(())), "ok");
}

#[test]
fn parse_error_carries_its_byte_span() {
    let diagnostics = SchemaBuilder::new()
        .element("a", "(b,)")
        .build()
        .unwrap_err();
    let line = render_diagnostic(&diagnostics[0]);
    assert_eq!(diagnostics[0].code(), Code::Parse);
    assert!(
        line.starts_with("err E001 "),
        "expected an E001 line, got: {line}"
    );
    // The span is a concrete byte range, not the `-` placeholder.
    let span = line.split(' ').nth(2).unwrap();
    assert!(span.contains(".."), "expected start..end span, got: {line}");
}

#[test]
fn validation_error_appends_the_document_location() {
    let schema = SchemaBuilder::new()
        .element("bibliography", "(book)+")
        .element("book", "(author+, title)")
        .element_empty("author")
        .element_empty("title")
        .build()
        .unwrap();
    let mut service = schema.service();
    let doc = service.try_open().unwrap();
    assert_eq!(
        service.feed_bytes(doc, b"<bibliography><book><title/>"),
        FeedStatus::Rejected
    );
    let line = render_verdict(&service.finish(doc));
    assert_eq!(
        line,
        "err E202 - <title> cannot appear as child #0 of <book>: the content \
         model has no continuation for it here at /bibliography/book (event 2)"
    );
}

#[test]
fn overload_refusal_is_pinned() {
    let schema = SchemaBuilder::new().element_empty("leaf").build().unwrap();
    let mut service = schema.service_with_limits(ServiceLimits::default().with_max_in_flight(2));
    let _a = service.try_open().unwrap();
    let _b = service.try_open().unwrap();
    let refusal = service.try_open().unwrap_err();
    assert_eq!(
        render_diagnostic(&refusal),
        "err E305 - service is at its in-flight handle cap of 2"
    );
}

#[test]
fn idle_sweep_refusal_is_pinned() {
    let schema = SchemaBuilder::new()
        .element("root", "(leaf)*")
        .element_empty("leaf")
        .build()
        .unwrap();
    let mut service = schema.service_with_limits(ServiceLimits::default().with_idle_budget(1));
    let doc = service.try_open().unwrap();
    assert_eq!(service.feed_bytes(doc, b"<root>"), FeedStatus::NeedMore);
    assert_eq!(service.tick(100), 1);
    let line = render_verdict(&service.finish(doc));
    assert_eq!(
        line,
        "err E306 - document sat idle past the idle budget of 1 tick(s) \
         at /root (event 1)"
    );
}

#[test]
fn markup_diagnostics_are_pinned() {
    // The full-markup diagnostic family (attributes, character data,
    // entity references) renders through the same single-line grammar —
    // these lines reach clients byte-identically over the wire and from
    // the CLI, whichever transport fed the document.
    let dtd = "<!ELEMENT note (title, body?)>\
               <!ELEMENT title (#PCDATA)>\
               <!ELEMENT body EMPTY>\
               <!ATTLIST note id CDATA #REQUIRED lang CDATA #IMPLIED>";
    let schema = SchemaBuilder::new().parse_dtd(dtd).build().unwrap();
    let mut service = schema.service();
    let cases: [(&[u8], &str); 5] = [
        (
            b"<note lang='x'>",
            "err E210 - element 'note' is missing the required attribute 'id' \
             at /note (event 0)",
        ),
        (
            b"<note id='1' kind='x'>",
            "err E208 - attribute 'kind' is not declared on element 'note' \
             at /note (event 2)",
        ),
        (
            b"<note id='1' id='2'>",
            "err E209 - attribute 'id' appears more than once on element \
             'note' at /note (event 2)",
        ),
        (
            b"<note id='1'><title>t</title><body>text",
            "err E211 - element 'body' does not allow character data \
             at /note/body (event 6)",
        ),
        (
            b"<note id='1'><title>a &bogus; b",
            "err E207 - unknown entity reference at /note/title (event 4)",
        ),
    ];
    for (bytes, expected) in cases {
        let doc = service.try_open().unwrap();
        let _ = service.feed_bytes(doc, bytes);
        assert_eq!(render_verdict(&service.finish(doc)), expected);
    }
}

#[test]
fn messages_never_break_the_line() {
    let d = Diagnostic::new(Code::MalformedMarkup, "first\nsecond\rthird");
    assert_eq!(render_diagnostic(&d), "err E206 - first\\nsecond\\rthird");
}
