//! A tiny deterministic pseudo-random number generator.
//!
//! The workload generators only need reproducible streams of small integers
//! and booleans, so instead of depending on an external crate this module
//! implements SplitMix64 (Steele, Lea & Flood — "Fast splittable pseudorandom
//! number generators", OOPSLA 2014), a 64-bit generator with a full-period
//! counter state that passes BigCrush when used this way. The API mirrors
//! the subset of `rand` the generators use (`seed_from_u64`, `gen_range`,
//! `gen_bool`), so workload code reads conventionally.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// The default generator for workload synthesis.
pub type StdRng = SplitMix64;

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `range` (half-open, like `rand::gen_range`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Debiased multiply-shift (Lemire); the retry loop terminates with
        // overwhelming probability after one or two draws.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Samples uniformly from `range`.
    fn sample(rng: &mut SplitMix64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SplitMix64, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let width = (range.end as u64) - (range.start as u64);
                range.start + rng.bounded(width) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..4);
            assert!(y < 4);
        }
    }

    #[test]
    fn all_values_of_small_ranges_occur() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
