//! Synthetic content-model and word generators.
//!
//! The paper has no measurement section, but its complexity claims are made
//! against well-identified families of expressions that occur in real
//! schemas (Bex et al., Grijzenhout's DTD corpus — none of which are
//! redistributable here):
//!
//! * **mixed content** `(a₁ + … + a_m)*` — the family on which the Glushkov
//!   construction exhibits its `Θ(σ|e|)` blow-up (Section 1);
//! * **CHARE** — chains of optionally-starred disjunctions of symbols,
//!   reported to cover ≈90% of real-world content models;
//! * **1-ORE / k-ORE** — single- and bounded-occurrence expressions
//!   (Theorem 4.3's parameter `k`);
//! * **bounded alternation depth** — `c_e ≤ 4` in every DTD of the corpus
//!   (Theorem 4.10's parameter);
//! * **star-free** content models (Theorem 4.12).
//!
//! This crate synthesizes all of these families with controllable
//! parameters, plus member/non-member word samples, so the benchmark
//! harness (`redet-bench`) can reproduce the complexity *shapes* the paper
//! claims. Generators build **balanced** union/concatenation spines so that
//! very large instances do not overflow recursion in the analysis passes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;

use crate::rng::StdRng;
use redet_automata::GlushkovAutomaton;
use redet_syntax::{Alphabet, Regex, Symbol};
use redet_tree::PosId;

/// A DTD fragment with 22 element declarations — the schema-level workload
/// used by the document-validation benchmark (E11) and the allocation
/// regression test. It mixes every content shape the engine supports:
/// star-free sequences, DTD `+`/`*` models, a recursive element
/// (`section` within `section`), an XML-Schema-style counter, `ANY`, and
/// `(#PCDATA)`/`EMPTY` leaves, plus `<!ATTLIST …>` declarations (all
/// `#IMPLIED`, so element-only documents remain valid) for the full-markup
/// benchmark (E16) and the attribute/text equivalence suites.
pub const BOOK_DTD: &str = r#"
    <!ELEMENT book (front, body, back?)>
    <!ELEMENT front (title, subtitle?, author+, date?)>
    <!ELEMENT body (chapter+)>
    <!ELEMENT back ((appendix | index)*, colophon?)>
    <!ELEMENT chapter (title, epigraph?, (section | interlude)+)>
    <!ELEMENT section (title, (para | list | table | figure | code | section)*)>
    <!ELEMENT interlude (para+)>
    <!ELEMENT appendix (title, para*)>
    <!ELEMENT index (entry+)>
    <!ELEMENT entry (term, locator{1,4})>
    <!ELEMENT list (item+)>
    <!ELEMENT table (caption?, row+)>
    <!ELEMENT figure (caption?)>
    <!ELEMENT epigraph (para, attribution?)>
    <!ELEMENT colophon ANY>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT subtitle (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT date (#PCDATA)>
    <!ELEMENT para (#PCDATA | em | code)*>
    <!ELEMENT caption (#PCDATA)>
    <!ELEMENT row (cell+)>
    <!ATTLIST book lang CDATA #IMPLIED edition CDATA #IMPLIED>
    <!ATTLIST chapter id ID #IMPLIED>
    <!ATTLIST section id ID #IMPLIED>
    <!ATTLIST figure src CDATA #IMPLIED width CDATA #IMPLIED>
    <!ATTLIST para role CDATA #IMPLIED>
    <!ATTLIST locator page CDATA #IMPLIED>
"#;

/// A synthetic many-schema corpus: `total` DTD source texts drawn from
/// `distinct` structurally distinct schemas, in a seeded shuffled order —
/// the multi-tenant workload behind the schema-registry benchmarks (E17)
/// and the compile-cache dedup tests.
///
/// Variant `i` declares a root `rec{i}` over a short chain of
/// `f{i}_{j}` text fields — the first required, later ones decorated `?`
/// or `*` at random, so [`schema_corpus_document`]`(i)` (root plus first
/// field) is valid under every variant. Every variant is a small,
/// deterministic, *textually unique* DTD. Duplicates are exact repeats of
/// a variant's text: a content-hashing registry must compile exactly
/// `distinct` of the returned sources, however they are ordered.
pub fn schema_corpus(distinct: usize, total: usize, seed: u64) -> Vec<String> {
    assert!(distinct > 0, "need at least one distinct schema");
    assert!(
        total >= distinct,
        "total must cover every distinct schema at least once"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let variants: Vec<String> = (0..distinct)
        .map(|i| {
            let fields = rng.gen_range(2..6usize);
            let mut dtd = format!("<!ELEMENT rec{i} (f{i}_0");
            for j in 1..fields {
                let suffix = ["?", "*"][rng.gen_range(0..2usize)];
                dtd.push_str(&format!(", f{i}_{j}{suffix}"));
            }
            dtd.push_str(")>");
            for j in 0..fields {
                dtd.push_str(&format!("\n<!ELEMENT f{i}_{j} (#PCDATA)>"));
            }
            dtd
        })
        .collect();
    let mut sources: Vec<String> = (0..total).map(|k| variants[k % distinct].clone()).collect();
    // Seeded Fisher–Yates so repeats interleave unpredictably but
    // reproducibly.
    for k in (1..sources.len()).rev() {
        let j = usize::try_from(rng.next_u64() % (k as u64 + 1)).expect("index fits");
        sources.swap(k, j);
    }
    sources
}

/// A minimal document valid under variant `i` of [`schema_corpus`] — the
/// root plus its one always-required first field.
#[must_use]
pub fn schema_corpus_document(variant: usize) -> String {
    format!("<rec{variant}><f{variant}_0/></rec{variant}>")
}

/// A generated workload: an expression together with its alphabet.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The generated expression (deterministic unless stated otherwise by
    /// the generator).
    pub regex: Regex,
    /// The alphabet used by the expression.
    pub alphabet: Alphabet,
}

/// Balanced union of the given expressions.
fn balanced_union(mut parts: Vec<Regex>) -> Regex {
    assert!(!parts.is_empty());
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.or(b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop().expect("non-empty")
}

/// Balanced concatenation of the given expressions.
fn balanced_concat(mut parts: Vec<Regex>) -> Regex {
    assert!(!parts.is_empty());
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.then(b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop().expect("non-empty")
}

/// The "mixed content" family `(a₀ + a₁ + … + a_{m-1})*` of Section 1: the
/// expression is deterministic and linear in `m`, but its Glushkov automaton
/// has `Θ(m²)` transitions.
pub fn mixed_content(m: usize) -> Workload {
    let alphabet = Alphabet::with_generic_symbols(m);
    let parts: Vec<Regex> = alphabet.symbols().map(Regex::symbol).collect();
    Workload {
        regex: balanced_union(parts).star(),
        alphabet,
    }
}

/// A CHARE (chain regular expression): a sequence of factors
/// `(a₁ + … + a_n)`, each optionally decorated with `?` or `*`. All symbols
/// are distinct, so the result is a deterministic 1-ORE.
pub fn chare(num_factors: usize, symbols_per_factor: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alphabet = Alphabet::new();
    let mut factors = Vec::with_capacity(num_factors);
    let mut counter = 0usize;
    for _ in 0..num_factors {
        let width = 1 + rng.gen_range(0..symbols_per_factor.max(1));
        let symbols: Vec<Regex> = (0..width)
            .map(|_| {
                let sym = alphabet.intern(&format!("e{counter}"));
                counter += 1;
                Regex::symbol(sym)
            })
            .collect();
        let factor = balanced_union(symbols);
        factors.push(match rng.gen_range(0..4usize) {
            0 => factor.opt(),
            1 => factor.star(),
            _ => factor,
        });
    }
    Workload {
        regex: balanced_concat(factors),
        alphabet,
    }
}

/// A star-free CHARE: like [`chare`] but factors are only ever optional,
/// never starred — the workload of experiment E7 (Theorem 4.12).
pub fn star_free_chare(num_factors: usize, symbols_per_factor: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alphabet = Alphabet::new();
    let mut factors = Vec::with_capacity(num_factors);
    let mut counter = 0usize;
    for _ in 0..num_factors {
        let width = 1 + rng.gen_range(0..symbols_per_factor.max(1));
        let symbols: Vec<Regex> = (0..width)
            .map(|_| {
                let sym = alphabet.intern(&format!("e{counter}"));
                counter += 1;
                Regex::symbol(sym)
            })
            .collect();
        let factor = balanced_union(symbols);
        factors.push(if rng.gen_bool(0.4) {
            factor.opt()
        } else {
            factor
        });
    }
    Workload {
        regex: balanced_concat(factors),
        alphabet,
    }
}

/// A deterministic `k`-occurrence expression: `k` blocks of CHARE-like
/// factors over a *shared* alphabet, separated by unique separator symbols
/// so that equally-labeled positions in different blocks can never follow a
/// common position.
pub fn k_occurrence(
    k: usize,
    factors_per_block: usize,
    symbols_per_factor: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alphabet = Alphabet::new();
    let shared: Vec<Symbol> = (0..factors_per_block * symbols_per_factor)
        .map(|i| alphabet.intern(&format!("s{i}")))
        .collect();
    let mut blocks = Vec::with_capacity(2 * k);
    for block in 0..k {
        let sep = alphabet.intern(&format!("sep{block}"));
        blocks.push(Regex::symbol(sep));
        let mut factors = Vec::with_capacity(factors_per_block);
        for f in 0..factors_per_block {
            let width = 1 + rng.gen_range(0..symbols_per_factor.max(1));
            let symbols: Vec<Regex> = (0..width)
                .map(|i| Regex::symbol(shared[(f * symbols_per_factor + i) % shared.len()]))
                .collect();
            let factor = balanced_union(symbols);
            factors.push(if rng.gen_bool(0.5) {
                factor.opt()
            } else {
                factor
            });
        }
        blocks.push(balanced_concat(factors));
    }
    // Star the whole chain so that arbitrarily long words exist; the unique
    // block separators keep the expression deterministic.
    Workload {
        regex: balanced_concat(blocks).star(),
        alphabet,
    }
}

/// A deterministic expression with alternation depth (the paper's `c_e`)
/// approximately `depth`: nested blocks `prefix (x + y suffix (…))`.
pub fn deep_alternation(depth: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alphabet = Alphabet::new();
    let mut counter = 0usize;
    let mut fresh = |alphabet: &mut Alphabet| {
        let sym = alphabet.intern(&format!("d{counter}"));
        counter += 1;
        Regex::symbol(sym)
    };
    let mut expr = fresh(&mut alphabet);
    for _ in 0..depth {
        // Alternate · and + blocks: e ← a (b + c e) or e ← (a + b) c e.
        let a = fresh(&mut alphabet);
        let b = fresh(&mut alphabet);
        let c = fresh(&mut alphabet);
        expr = if rng.gen_bool(0.5) {
            a.then(b.or(c.then(expr)))
        } else {
            a.or(b).then(c.then(expr))
        };
    }
    Workload {
        regex: expr.star(),
        alphabet,
    }
}

/// A random (not necessarily deterministic) expression over a small
/// alphabet — the raw material for the cross-validation property tests.
pub fn random_expression(num_positions: usize, alphabet_size: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = Alphabet::with_generic_symbols(alphabet_size.max(1));
    let symbols: Vec<Symbol> = alphabet.symbols().collect();
    let regex = random_expr_rec(num_positions.max(1), &symbols, &mut rng, 0);
    Workload { regex, alphabet }
}

fn random_expr_rec(positions: usize, symbols: &[Symbol], rng: &mut StdRng, depth: usize) -> Regex {
    if positions <= 1 || depth > 40 {
        return Regex::symbol(symbols[rng.gen_range(0..symbols.len())]);
    }
    match rng.gen_range(0..10usize) {
        0..=3 => {
            let left = rng.gen_range(1..positions);
            random_expr_rec(left, symbols, rng, depth + 1).then(random_expr_rec(
                positions - left,
                symbols,
                rng,
                depth + 1,
            ))
        }
        4..=6 => {
            let left = rng.gen_range(1..positions);
            random_expr_rec(left, symbols, rng, depth + 1).or(random_expr_rec(
                positions - left,
                symbols,
                rng,
                depth + 1,
            ))
        }
        7 => random_expr_rec(positions, symbols, rng, depth + 1).opt(),
        8 => {
            let inner = random_expr_rec(positions, symbols, rng, depth + 1);
            // Half stars, half native one-or-more closures.
            if rng.gen_bool(0.5) {
                inner.star()
            } else {
                inner.plus()
            }
        }
        _ => {
            let min = rng.gen_range(0..3u32);
            let max = min + rng.gen_range(0..3u32);
            random_expr_rec(positions, symbols, rng, depth + 1).repeat(min, Some(max.max(1)))
        }
    }
}

/// Samples a word of approximately `target_len` symbols from `L(e)` by a
/// random walk over the Glushkov automaton (restarting the walk's greediness
/// near the target length so the word can actually end).
pub fn sample_member_word(regex: &Regex, target_len: usize, seed: u64) -> Vec<Symbol> {
    let mut rng = StdRng::seed_from_u64(seed);
    let automaton = GlushkovAutomaton::build(regex);
    let mut word = Vec::with_capacity(target_len);
    let mut current = automaton.begin();
    // Walk until we are allowed to stop at (or after) the target length.
    for step in 0..(target_len * 2 + 64) {
        let followers: Vec<PosId> = automaton
            .follow(current)
            .iter()
            .copied()
            .filter(|&q| automaton.symbol(q).is_some())
            .collect();
        let must_stop = followers.is_empty();
        let may_stop = automaton.can_end(current);
        if must_stop || (may_stop && (step >= target_len || rng.gen_bool(0.02))) {
            if may_stop {
                break;
            }
            if must_stop {
                break;
            }
        }
        let next = followers[rng.gen_range(0..followers.len())];
        word.push(
            automaton
                .symbol(next)
                .expect("filtered to labeled positions"),
        );
        current = next;
    }
    word
}

/// Samples a uniformly random word over the workload's alphabet (mostly a
/// non-member; used to exercise rejection paths).
pub fn sample_random_word(alphabet: &Alphabet, len: usize, seed: u64) -> Vec<Symbol> {
    let mut rng = StdRng::seed_from_u64(seed);
    let symbols: Vec<Symbol> = alphabet.symbols().collect();
    (0..len)
        .map(|_| symbols[rng.gen_range(0..symbols.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redet_automata::{glushkov_determinism, Matcher, NfaSimulationMatcher};

    #[test]
    fn mixed_content_shape() {
        let w = mixed_content(64);
        assert_eq!(w.regex.num_positions(), 64);
        assert!(w.regex.nullable());
        assert!(glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok());
    }

    #[test]
    fn chare_is_deterministic_1_ore() {
        for seed in 0..5 {
            let w = chare(20, 4, seed);
            let stats = redet_syntax::ExprStats::of(&w.regex);
            assert!(stats.is_single_occurrence());
            assert!(
                glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn star_free_chare_is_star_free_and_deterministic() {
        for seed in 0..5 {
            let w = star_free_chare(20, 4, seed);
            assert!(w.regex.is_star_free());
            assert!(glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok());
        }
    }

    #[test]
    fn k_occurrence_has_expected_k_and_is_deterministic() {
        for (k, seed) in [(2, 1), (4, 2), (8, 3)] {
            let w = k_occurrence(k, 5, 3, seed);
            let stats = redet_syntax::ExprStats::of(&w.regex);
            assert_eq!(stats.max_occurrences, k, "k (seed {seed})");
            assert!(
                glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok(),
                "k={k} seed {seed}"
            );
        }
    }

    #[test]
    fn deep_alternation_depth_grows() {
        for depth in [1, 3, 6] {
            let w = deep_alternation(depth, 7);
            let stats = redet_syntax::ExprStats::of(&w.regex);
            assert!(
                stats.plus_depth >= depth,
                "depth {depth} got {}",
                stats.plus_depth
            );
            assert!(glushkov_determinism(&GlushkovAutomaton::build(&w.regex)).is_ok());
        }
    }

    #[test]
    fn member_words_are_members() {
        for (name, w) in [
            ("mixed", mixed_content(16)),
            ("chare", chare(10, 3, 11)),
            ("deep", deep_alternation(4, 5)),
            ("kocc", k_occurrence(3, 4, 2, 9)),
        ] {
            let matcher = NfaSimulationMatcher::build(&w.regex);
            for seed in 0..5 {
                let word = sample_member_word(&w.regex, 50, seed);
                assert!(
                    matcher.matches(&word),
                    "{name}: sampled word is not a member"
                );
            }
        }
    }

    #[test]
    fn random_expressions_have_requested_size() {
        for seed in 0..10 {
            let w = random_expression(12, 3, seed);
            assert!(w.regex.num_positions() >= 1);
            assert!(w.regex.num_positions() <= 12);
        }
    }

    #[test]
    fn random_words_cover_the_alphabet() {
        let w = mixed_content(8);
        let word = sample_random_word(&w.alphabet, 100, 3);
        assert_eq!(word.len(), 100);
    }
}
