//! A counting global allocator for allocation-regression tests.
//!
//! The workspace's hot match loops promise **zero steady-state allocation**
//! (compile once, match many, reuse the scratch). That promise is enforced
//! by tests that install [`CountingAllocator`] as the global allocator and
//! assert that the measured region performs no allocation:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: redet_alloc_counter::CountingAllocator =
//!     redet_alloc_counter::CountingAllocator;
//!
//! let (allocations, _) = redet_alloc_counter::allocations_during(|| hot_loop());
//! assert_eq!(allocations, 0);
//! ```
//!
//! This crate is the only place in the workspace allowed to use `unsafe`
//! (the `GlobalAlloc` trait requires it); every method is a thin delegation
//! to [`System`] plus an atomic counter bump.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    // Const-initialized and `Drop`-free, so no lazy initializer or TLS
    // destructor runs inside the allocator; `try_with` covers the
    // thread-teardown window where the slot is gone.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// A `GlobalAlloc` that counts allocation events (alloc, alloc_zeroed,
/// realloc) — globally and per thread — and otherwise behaves exactly like
/// [`System`].
pub struct CountingAllocator;

// SAFETY: every method delegates directly to the system allocator with the
// caller's layout/pointer arguments; the only extra behaviour is a relaxed
// atomic increment plus a `Drop`-free const-initialized thread-local bump,
// which cannot violate any allocator invariant.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: same contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Number of allocation events since process start, across all threads.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Number of allocation events performed by the *calling thread* since it
/// started.
pub fn thread_allocation_count() -> u64 {
    THREAD_ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// Runs `f` and returns how many allocation events it performed, together
/// with its result. Only meaningful when [`CountingAllocator`] is installed
/// as the global allocator and no other threads allocate concurrently. For
/// multi-threaded tests, use [`thread_allocations_during`] on each worker
/// thread instead.
pub fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocation_count();
    let value = f();
    (allocation_count() - before, value)
}

/// Runs `f` and returns how many allocation events the **calling thread**
/// performed during it, together with its result. Immune to concurrent
/// allocation on other threads — this is what per-worker steady-state
/// assertions in parallel tests should use.
pub fn thread_allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = thread_allocation_count();
    let value = f();
    (thread_allocation_count() - before, value)
}
