//! Connection-oriented validation: many in-flight documents, fed in any
//! interleaving, over one shared [`Schema`].
//!
//! A real server does not see whole documents — it sees thousands of
//! connections delivering chunks in arbitrary order. The per-event state of
//! the streaming matchers is tiny (one `PosId` frame per open element), so
//! keeping a document *suspended* between chunks is cheap; this module is
//! the surface that exploits it:
//!
//! * [`ValidationService::open`] allocates a lightweight in-flight document
//!   — a slab slot holding a recycled [`DocumentValidator`] (frame stack +
//!   side stacks) and a byte [`Tokenizer`] — and returns a generation-checked
//!   [`DocId`] handle;
//! * [`ValidationService::feed`] advances any handle by any number of
//!   pre-interned [`DocEvent`]s; [`ValidationService::feed_bytes`] accepts
//!   raw bytes instead (tag soup, chunk boundaries anywhere — including
//!   mid-tag) and tokenizes them on the fly;
//! * feeding **fails fast**: at the first diagnostic the handle flips to
//!   [`FeedStatus::Rejected`], retains that earliest diagnostic — byte-for-
//!   byte the one a whole-document [`DocumentValidator`] run would report
//!   first — and stops consuming work until it is finished or closed;
//! * [`ValidationService::finish`] checks end-of-document acceptance and
//!   recycles the slot's buffers; [`ValidationService::close`] abandons a
//!   document without the end check.
//!
//! Everything is recycled through the slab and a spare list, so a warmed
//! service opens, feeds and finishes documents with **zero steady-state
//! allocation** on the valid path (enforced by the repository's
//! counting-allocator regression test). [`crate::ValidatorPool`] batches
//! are a thin client of this type — batch and interleaved serving share one
//! code path.

use crate::tokenizer::{Tag, Tokenizer};
use crate::validator::{DocEvent, DocumentValidator};
use crate::Schema;
use redet_core::Diagnostic;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Process-wide counter handing every [`ValidationService`] a distinct
/// identity, so a [`DocId`] can never resolve against the wrong service.
static NEXT_SERVICE_ID: AtomicU32 = AtomicU32::new(0);

/// A handle to one in-flight document of a [`ValidationService`].
///
/// Handles are generation-checked: using a `DocId` after `finish`/`close`
/// (or a handle from a different service) panics instead of silently
/// touching a recycled slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[must_use = "an open document handle must eventually be finished or closed"]
pub struct DocId {
    /// The issuing service's identity (see [`NEXT_SERVICE_ID`]).
    service: u32,
    index: u32,
    generation: u32,
}

/// What feeding a chunk did to an in-flight document.
///
/// Marked `#[non_exhaustive]`: later revisions may report finer-grained
/// progress — keep a wildcard arm when matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeedStatus {
    /// Everything fed so far is valid, but elements are still open (or no
    /// event has arrived yet) — the document needs more input.
    NeedMore,
    /// Everything fed so far is valid and every opened element has been
    /// closed: [`ValidationService::finish`] would succeed right now.
    Accepted,
    /// The document is invalid. The earliest diagnostic is retained (see
    /// [`ValidationService::diagnostic`]) until the handle is finished or
    /// closed; further feeds are no-ops — a rejected handle consumes no
    /// more matcher work.
    Rejected,
}

/// One in-flight document: the validator state, the byte-level scanner, and
/// the retained rejection. Recycled whole through the spare list.
struct InFlight {
    validator: DocumentValidator,
    tokenizer: Tokenizer,
    rejected: Option<Diagnostic>,
}

/// One slab slot. `generation` is bumped on every free, so stale [`DocId`]s
/// are detected instead of resolving to a recycled document.
struct Slot {
    generation: u32,
    doc: Option<InFlight>,
}

/// A connection-oriented validation front end over one [`Schema`]; see the
/// module docs.
///
/// ```
/// use redet_schema::{FeedStatus, SchemaBuilder};
///
/// let schema = SchemaBuilder::new()
///     .element("pair", "(left, right)")
///     .element_empty("left")
///     .element_empty("right")
///     .build()
///     .unwrap();
/// let mut service = redet_schema::ValidationService::new(schema);
///
/// // Two connections, interleaved, one fed as events, one as raw bytes.
/// let a = service.open();
/// let b = service.open();
/// assert_eq!(service.feed_bytes(a, b"<pair><le"), FeedStatus::NeedMore);
/// let pair = service.schema().lookup("pair").unwrap();
/// let left = service.schema().lookup("left").unwrap();
/// use redet_schema::DocEvent::{Close, Open};
/// assert_eq!(service.feed(b, &[Open(pair), Open(left), Close]), FeedStatus::NeedMore);
/// assert_eq!(service.feed_bytes(a, b"ft/><right/></pair>"), FeedStatus::Accepted);
/// assert!(service.finish(a).is_ok());
/// // `b` is missing <right>: the incompleteness is diagnosed at finish.
/// assert_eq!(service.feed(b, &[Close]), FeedStatus::Rejected);
/// assert!(service.finish(b).is_err());
/// ```
pub struct ValidationService {
    /// This service's identity, stamped into every issued [`DocId`].
    id: u32,
    schema: Arc<Schema>,
    slots: Vec<Slot>,
    /// Indices of empty slots, reused LIFO (warm slots first).
    free: Vec<u32>,
    /// Warmed per-document state of closed handles, reused by `open`.
    spare: Vec<InFlight>,
}

impl ValidationService {
    /// Creates a service over `schema` with no in-flight documents.
    #[must_use]
    pub fn new(schema: Arc<Schema>) -> Self {
        ValidationService {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// The shared schema every document is validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of currently open documents.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Opens a new in-flight document and returns its handle. Buffers of
    /// previously closed documents are recycled, so a warmed service opens
    /// without allocating.
    pub fn open(&mut self) -> DocId {
        let flight = self.spare.pop().unwrap_or_else(|| InFlight {
            validator: DocumentValidator::new(Arc::clone(&self.schema)),
            tokenizer: Tokenizer::default(),
            rejected: None,
        });
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    doc: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[index as usize];
        slot.doc = Some(flight);
        DocId {
            service: self.id,
            index,
            generation: slot.generation,
        }
    }

    /// Advances a document by any number of pre-interned events. Feeding
    /// stops at the first diagnostic: the handle flips to
    /// [`FeedStatus::Rejected`], retains that diagnostic, and ignores the
    /// rest of this chunk and all later feeds.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed(&mut self, doc: DocId, events: &[DocEvent]) -> FeedStatus {
        let flight = self.flight_mut(doc);
        if flight.rejected.is_some() {
            return FeedStatus::Rejected;
        }
        for &event in events {
            match event {
                DocEvent::Open(sym) => flight.validator.start_element_symbol(sym),
                DocEvent::Close => flight.validator.end_element(),
            }
            if !flight.validator.is_clean() {
                flight.rejected = flight.validator.take_first_diagnostic();
                return FeedStatus::Rejected;
            }
        }
        Self::progress(flight)
    }

    /// Advances a document by a chunk of raw bytes, tokenizing tag soup on
    /// the fly. Chunk boundaries may fall anywhere — mid-name, mid-
    /// attribute, mid-comment; the scanner state lives in the handle.
    /// Element names are resolved against the schema per tag; text content,
    /// comments, CDATA, PIs and doctypes are skipped. Fails fast exactly
    /// like [`ValidationService::feed`], with unparsable markup reported as
    /// a [`redet_core::Code::MalformedMarkup`] diagnostic.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed_bytes(&mut self, doc: DocId, bytes: &[u8]) -> FeedStatus {
        let flight = self.flight_mut(doc);
        if flight.rejected.is_some() {
            return FeedStatus::Rejected;
        }
        let validator = &mut flight.validator;
        let clean = flight.tokenizer.feed(bytes, &mut |tag| {
            match tag {
                Tag::Open(name) => validator.start_element_bytes(name),
                Tag::OpenClose(name) => {
                    validator.start_element_bytes(name);
                    if validator.is_clean() {
                        validator.end_element();
                    }
                }
                // XML well-formedness: the end tag must name the innermost
                // open element. (Event-level feeding has no names on close
                // events, so only bytes pay this.)
                Tag::Close(name) => validator.close_element_bytes(name),
                Tag::Error(message) => validator.report_markup(message.to_owned()),
            }
            validator.is_clean()
        });
        if !clean {
            flight.rejected = validator.take_first_diagnostic();
            return FeedStatus::Rejected;
        }
        Self::progress(flight)
    }

    /// The current status of a document, without feeding anything.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    pub fn status(&self, doc: DocId) -> FeedStatus {
        let flight = self.flight(doc);
        if flight.rejected.is_some() {
            FeedStatus::Rejected
        } else {
            Self::progress(flight)
        }
    }

    /// The retained diagnostic of a rejected document, if any.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    pub fn diagnostic(&self, doc: DocId) -> Option<&Diagnostic> {
        self.flight(doc).rejected.as_ref()
    }

    /// Number of currently open elements of a document.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    pub fn depth(&self, doc: DocId) -> usize {
        self.flight(doc).validator.depth()
    }

    /// Ends a document: checks end-of-document acceptance (every element
    /// closed, no markup left open), releases the handle and recycles its
    /// buffers. Returns the retained diagnostic for rejected documents —
    /// byte-identical to the *first* diagnostic a whole-document
    /// [`DocumentValidator`] run over the same events would report.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    #[must_use = "the validation verdict is the point of finish()"]
    pub fn finish(&mut self, doc: DocId) -> Result<(), Diagnostic> {
        let mut flight = self.take_flight(doc);
        let result = match flight.rejected.take() {
            Some(diagnostic) => {
                // Reset the abandoned mid-document state for recycling.
                let _ = flight.validator.finish();
                Err(diagnostic)
            }
            None if !flight.tokenizer.is_idle() => {
                flight
                    .validator
                    .report_markup("byte stream ended inside markup".to_owned());
                let diagnostic = flight
                    .validator
                    .take_first_diagnostic()
                    .expect("just recorded");
                let _ = flight.validator.finish();
                Err(diagnostic)
            }
            None => flight.validator.finish().map_err(|mut diagnostics| {
                // Only end-of-document diagnostics can be pending here —
                // anything earlier would have rejected the handle.
                diagnostics.remove(0)
            }),
        };
        flight.tokenizer.reset();
        self.spare.push(flight);
        result
    }

    /// Abandons a document without the end-of-document check, releasing the
    /// handle and recycling its buffers.
    ///
    /// # Panics
    /// Panics if `doc` was already finished/closed or belongs to another
    /// service.
    pub fn close(&mut self, doc: DocId) {
        let mut flight = self.take_flight(doc);
        flight.rejected = None;
        let _ = flight.validator.finish();
        flight.tokenizer.reset();
        self.spare.push(flight);
    }

    /// Validates one whole document given as a pre-interned event stream:
    /// `open` + `feed` + `finish` in one call. This is the loop
    /// [`crate::ValidatorPool`] workers run per document — batch validation
    /// and interleaved serving share this single code path.
    pub fn validate_events(&mut self, events: &[DocEvent]) -> Result<(), Diagnostic> {
        let doc = self.open();
        let _ = self.feed(doc, events);
        self.finish(doc)
    }

    /// Validates one whole document given as raw bytes: `open` +
    /// `feed_bytes` + `finish` in one call.
    pub fn validate_bytes(&mut self, bytes: &[u8]) -> Result<(), Diagnostic> {
        let doc = self.open();
        let _ = self.feed_bytes(doc, bytes);
        self.finish(doc)
    }

    /// The feed status of a live (non-rejected) document.
    fn progress(flight: &InFlight) -> FeedStatus {
        if flight.validator.depth() == 0
            && flight.validator.events() > 0
            && flight.tokenizer.is_idle()
        {
            FeedStatus::Accepted
        } else {
            FeedStatus::NeedMore
        }
    }

    fn flight(&self, doc: DocId) -> &InFlight {
        assert_eq!(
            doc.service, self.id,
            "DocId belongs to another ValidationService"
        );
        self.slots
            .get(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation)
            .and_then(|slot| slot.doc.as_ref())
            .expect("DocId was already finished/closed or belongs to another service")
    }

    fn flight_mut(&mut self, doc: DocId) -> &mut InFlight {
        assert_eq!(
            doc.service, self.id,
            "DocId belongs to another ValidationService"
        );
        self.slots
            .get_mut(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation)
            .and_then(|slot| slot.doc.as_mut())
            .expect("DocId was already finished/closed or belongs to another service")
    }

    /// Removes a document from its slot, freeing the slot for reuse and
    /// invalidating every copy of the handle.
    fn take_flight(&mut self, doc: DocId) -> InFlight {
        assert_eq!(
            doc.service, self.id,
            "DocId belongs to another ValidationService"
        );
        let slot = self
            .slots
            .get_mut(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation)
            .expect("DocId was already finished/closed or belongs to another service");
        let flight = slot
            .doc
            .take()
            .expect("DocId was already finished/closed or belongs to another service");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(doc.index);
        flight
    }
}

impl std::fmt::Debug for ValidationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationService")
            .field("schema", &self.schema)
            .field("in_flight", &self.in_flight())
            .field("spare", &self.spare.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;
    use redet_core::Code;

    fn bibliography() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("bibliography", "(book | article)*")
            .element("book", "(title, author+, year)")
            .element("article", "(title, author+, journal, year?)")
            .element_empty("title")
            .element_empty("author")
            .element_empty("year")
            .build()
            .unwrap()
    }

    fn events(schema: &Schema, names: &[&str]) -> Vec<DocEvent> {
        names
            .iter()
            .map(|name| match name.strip_prefix('/') {
                Some(_) => DocEvent::Close,
                None => DocEvent::Open(schema.lookup(name).unwrap()),
            })
            .collect()
    }

    const VALID: &[&str] = &[
        "bibliography",
        "book",
        "title",
        "/",
        "author",
        "/",
        "year",
        "/",
        "/",
        "/",
    ];

    #[test]
    fn interleaved_documents_do_not_interfere() {
        let schema = bibliography();
        let doc = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        // 8 concurrent handles, round-robin one event at a time.
        let handles: Vec<DocId> = (0..8).map(|_| service.open()).collect();
        assert_eq!(service.in_flight(), 8);
        for i in 0..doc.len() {
            for &h in &handles {
                let status = service.feed(h, &doc[i..=i]);
                if i + 1 == doc.len() {
                    assert_eq!(status, FeedStatus::Accepted);
                } else {
                    assert_eq!(status, FeedStatus::NeedMore);
                }
            }
        }
        for h in handles {
            assert!(service.finish(h).is_ok());
        }
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    fn rejected_handles_fail_fast_and_retain_the_first_diagnostic() {
        let schema = bibliography();
        // `author` before `title` rejects <book> at event 2.
        let bad = events(
            &schema,
            &[
                "bibliography",
                "book",
                "author",
                "/",
                "title",
                "/",
                "year",
                "/",
                "/",
                "/",
            ],
        );
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        assert_eq!(service.feed(doc, &bad[..2]), FeedStatus::NeedMore);
        assert_eq!(service.feed(doc, &bad[2..4]), FeedStatus::Rejected);
        let retained = service.diagnostic(doc).unwrap().to_string();
        // Further feeding is a no-op; the diagnostic does not change.
        assert_eq!(service.feed(doc, &bad[4..]), FeedStatus::Rejected);
        assert_eq!(service.diagnostic(doc).unwrap().to_string(), retained);
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.to_string(), retained);
        // Byte-identical to the first whole-document diagnostic.
        let mut whole = schema.validator();
        let expected = whole.validate_events(&bad).unwrap_err();
        assert_eq!(format!("{err:?}"), format!("{:?}", expected[0]));
    }

    #[test]
    fn finish_diagnoses_incomplete_and_unbalanced_documents() {
        let schema = bibliography();
        let doc = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        // Truncated: unbalanced at finish.
        let h = service.open();
        assert_eq!(service.feed(h, &doc[..3]), FeedStatus::NeedMore);
        assert_eq!(
            service.finish(h).unwrap_err().code(),
            Code::UnbalancedDocument
        );
        // Recycled slot, fresh generation: the old handle is dead.
        let h2 = service.open();
        assert_eq!(service.feed(h2, &doc), FeedStatus::Accepted);
        assert!(service.finish(h2).is_ok());
    }

    #[test]
    #[should_panic(expected = "already finished/closed")]
    fn stale_handles_panic() {
        let schema = bibliography();
        let mut service = ValidationService::new(schema);
        let doc = service.open();
        service.close(doc);
        let _ = service.status(doc);
    }

    #[test]
    fn byte_feeding_tolerates_any_split() {
        let schema = bibliography();
        let xml = "<?xml version=\"1.0\"?><bibliography><!-- two entries -->\
                   <book><title/>text<author kind=\"primary\"/><year/></book>\
                   </bibliography>";
        let mut service = ValidationService::new(Arc::clone(&schema));
        for chunk in [1usize, 2, 3, 7, 16, xml.len()] {
            let doc = service.open();
            let mut status = FeedStatus::NeedMore;
            for part in xml.as_bytes().chunks(chunk) {
                status = service.feed_bytes(doc, part);
            }
            assert_eq!(status, FeedStatus::Accepted, "chunk size {chunk}");
            assert!(service.finish(doc).is_ok(), "chunk size {chunk}");
        }
    }

    #[test]
    fn malformed_markup_is_a_diagnostic() {
        let schema = bibliography();
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
        // A byte stream ending inside a tag is malformed too.
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography></bibliogr"),
            FeedStatus::NeedMore
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
    }

    #[test]
    fn mismatched_end_tags_are_rejected() {
        let schema = bibliography();
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        // </bibliography> closes <book>: well-formedness violation, caught
        // whatever the chunking.
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><book></bibliography>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
        assert!(err.to_string().contains("</bibliography>"), "{err}");
        // Properly nested documents are unaffected.
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography></bibliography>"),
            FeedStatus::Accepted
        );
        assert!(service.finish(doc).is_ok());
    }

    #[test]
    #[should_panic(expected = "another ValidationService")]
    fn foreign_handles_panic() {
        let schema = bibliography();
        let mut first = ValidationService::new(Arc::clone(&schema));
        let mut second = ValidationService::new(schema);
        let doc = first.open();
        let _ = second.open(); // same slot index and generation — still foreign
        let _ = second.status(doc);
    }

    #[test]
    fn unknown_elements_reject_byte_documents() {
        let schema = bibliography();
        let mut service = ValidationService::new(schema);
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><pamphlet/>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::UnknownElement);
    }
}
