//! Connection-oriented validation: many in-flight documents, fed in any
//! interleaving, over one shared [`Schema`] — with resource governance.
//!
//! A real server does not see whole documents — it sees thousands of
//! connections delivering chunks in arbitrary order. The per-event state of
//! the streaming matchers is tiny (one `PosId` frame per open element), so
//! keeping a document *suspended* between chunks is cheap; this module is
//! the surface that exploits it:
//!
//! * [`ValidationService::open`] allocates a lightweight in-flight document
//!   — a slab slot holding a recycled [`DocumentValidator`] (frame stack +
//!   side stacks) and a byte [`Tokenizer`] — and returns a generation-checked
//!   [`DocId`] handle; [`ValidationService::try_open`] is the
//!   backpressure-aware form that refuses admission past the configured
//!   in-flight cap instead of panicking;
//! * [`ValidationService::feed`] advances any handle by any number of
//!   pre-interned [`DocEvent`]s; [`ValidationService::feed_bytes`] accepts
//!   raw bytes instead (tag soup, chunk boundaries anywhere — including
//!   mid-tag) and tokenizes them on the fly;
//! * feeding **fails fast**: at the first diagnostic the handle flips to
//!   [`FeedStatus::Rejected`], retains that earliest diagnostic — byte-for-
//!   byte the one a whole-document [`DocumentValidator`] run would report
//!   first — and stops consuming work until it is finished or closed;
//! * [`ValidationService::finish`] checks end-of-document acceptance and
//!   recycles the slot's buffers; [`ValidationService::close`] abandons a
//!   document without the end check (and is idempotent: closing an
//!   already-released handle is a no-op).
//!
//! # Resource governance
//!
//! The service trusts nobody. A [`ServiceLimits`] config caps what any one
//! document — or the whole caller population — can cost:
//!
//! * **per-document**: element depth (checked at the validator's frame
//!   push, so the frame stack itself stays bounded), total events, total
//!   raw bytes, and tag-name length (the tokenizer's 4 KiB default cap,
//!   lowered per config);
//! * **service-wide**: a maximum number of in-flight handles, enforced at
//!   admission ([`ValidationService::try_open`]);
//! * **time**: a logical idle budget — the front end calls
//!   [`ValidationService::tick`] from any timer source, and handles idle
//!   past the budget are swept to `Rejected` with an idle-timeout
//!   diagnostic while their buffers are recycled immediately.
//!
//! Every violation is a stable `E3xx` diagnostic (see [`redet_core::Code`])
//! recorded at a deterministic event index, so a limit rejection is
//! **byte-identical under every event/byte chunking** — the same contract
//! all schema rejections already honor. Stale handles (used after
//! `finish`/`close`, or after their slot was recycled) no longer panic:
//! feeding one reports [`FeedStatus::Stale`] and finishing one returns a
//! [`redet_core::Code::StaleHandle`] diagnostic. Only cross-service handle
//! mixups — a programming error, not a traffic pattern — still panic.
//!
//! Everything is recycled through the slab and a spare list, so a warmed
//! service opens, feeds and finishes documents with **zero steady-state
//! allocation** on the valid path — and its limit checks, no-op `tick`
//! sweeps and rejected-handle feeds are allocation-free too (enforced by
//! the repository's counting-allocator regression test).
//! [`crate::ValidatorPool`] batches are a thin client of this type — batch
//! and interleaved serving share one code path.

use crate::tokenizer::{
    is_entity_error, Tag, Tokenizer, ATTR_TOO_LONG, NAME_TOO_LONG, VALUE_TOO_LONG,
};
use crate::validator::{DocEvent, DocumentValidator};
use crate::Schema;
use redet_core::{Code, Diagnostic};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Process-wide counter handing every [`ValidationService`] a distinct
/// identity, so a [`DocId`] can never resolve against the wrong service.
static NEXT_SERVICE_ID: AtomicU32 = AtomicU32::new(0);

/// A handle to one in-flight document of a [`ValidationService`].
///
/// Handles are generation-checked: a `DocId` used after `finish`/`close`
/// (or after an idle sweep recycled its slot) is detected as **stale**
/// instead of silently touching a recycled slot — feeding it reports
/// [`FeedStatus::Stale`], finishing it returns a
/// [`redet_core::Code::StaleHandle`] diagnostic, closing it is a no-op.
/// Only a handle from a *different* service panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[must_use = "an open document handle must eventually be finished or closed"]
pub struct DocId {
    /// The issuing service's identity (see [`NEXT_SERVICE_ID`]).
    service: u32,
    index: u32,
    /// The generation *word*: the low 16 bits are the slot's recycling
    /// generation (staleness detection), the high 16 bits carry the
    /// service's routing [`ValidationService::tag`] — a multi-schema
    /// dispatch layer recovers which service issued a handle from the
    /// handle alone (see [`DocId::tag`]).
    generation: u32,
}

impl DocId {
    /// The issuing service's 16-bit routing tag, carried in the high half
    /// of the generation word. A front end serving several schemas tags
    /// each schema's service with its registry index
    /// ([`ValidationService::set_tag`]) and routes any handle back to the
    /// right service without tracking the mapping per connection. Untagged
    /// services issue tag `0`.
    #[must_use]
    pub fn tag(self) -> u16 {
        (self.generation >> 16) as u16
    }
}

/// What feeding a chunk did to an in-flight document.
///
/// Marked `#[non_exhaustive]`: later revisions may report finer-grained
/// progress — keep a wildcard arm when matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FeedStatus {
    /// Everything fed so far is valid, but elements are still open (or no
    /// event has arrived yet) — the document needs more input.
    NeedMore,
    /// Everything fed so far is valid and every opened element has been
    /// closed: [`ValidationService::finish`] would succeed right now.
    Accepted,
    /// The document is invalid. The earliest diagnostic is retained (see
    /// [`ValidationService::diagnostic`]) until the handle is finished or
    /// closed; further feeds are no-ops — a rejected handle consumes no
    /// more matcher work.
    Rejected,
    /// The handle is stale: its document was already finished or closed
    /// (or its slot swept and recycled). Nothing was fed. Use
    /// [`ValidationService::finish`] on a stale handle to obtain the
    /// [`redet_core::Code::StaleHandle`] diagnostic as an error value.
    Stale,
}

/// Resource-governance configuration of a [`ValidationService`] (also
/// threaded through [`crate::ValidatorPool`] batches). The default is
/// **ungoverned** — every cap unset — so existing single-tenant uses pay
/// nothing; a front end serving untrusted traffic configures the caps it
/// needs:
///
/// ```
/// use redet_schema::{FeedStatus, SchemaBuilder, ServiceLimits};
///
/// let schema = SchemaBuilder::new()
///     .element("list", "(item)*")
///     .element("item", "(item)?")
///     .build()
///     .unwrap();
/// let limits = ServiceLimits::default()
///     .with_max_depth(4)
///     .with_max_bytes(1 << 16)
///     .with_max_in_flight(2);
/// let mut service = redet_schema::ValidationService::with_limits(schema, limits);
///
/// // Admission control: the third concurrent handle is refused.
/// let a = service.try_open().unwrap();
/// let b = service.try_open().unwrap();
/// let refused = service.try_open().unwrap_err();
/// assert_eq!(refused.code(), redet_core::Code::ServiceOverloaded);
///
/// // Depth governance: nesting past the cap is a stable E301 rejection.
/// assert_eq!(
///     service.feed_bytes(a, b"<list><item><item><item><item>"),
///     FeedStatus::Rejected
/// );
/// assert_eq!(
///     service.finish(a).unwrap_err().code(),
///     redet_core::Code::DepthLimitExceeded
/// );
/// service.close(b);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceLimits {
    max_depth: Option<u32>,
    max_bytes: Option<u64>,
    max_events: Option<u64>,
    max_name_len: Option<u32>,
    max_in_flight: Option<u32>,
    idle_budget: Option<u64>,
}

impl ServiceLimits {
    /// Caps how deep elements may nest in any one document. The violation
    /// is a [`Code::DepthLimitExceeded`] (`E301`) rejection, and the
    /// validator's frame stack never grows past the cap.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Caps how many raw bytes any one document may be fed through
    /// [`ValidationService::feed_bytes`]. The first byte past the budget is
    /// a [`Code::ByteLimitExceeded`] (`E302`) rejection — at the same point
    /// whatever the chunk boundaries.
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Caps how many document events (element opens + closes) any one
    /// document may produce, whether fed as events or as bytes. The first
    /// event past the budget is a [`Code::EventLimitExceeded`] (`E303`)
    /// rejection.
    pub fn with_max_events(mut self, events: u64) -> Self {
        self.max_events = Some(events);
        self
    }

    /// Caps a tag name's length in bytes for raw-byte feeding, lowering
    /// the tokenizer's built-in [`Tokenizer::MAX_NAME_LEN`] default. A
    /// longer name is a [`Code::NameLimitExceeded`] (`E304`) rejection.
    /// Clamped to at least one byte.
    pub fn with_max_name_len(mut self, len: u32) -> Self {
        self.max_name_len = Some(len.max(1));
        self
    }

    /// Caps how many handles may be in flight at once. Admission past the
    /// cap is refused by [`ValidationService::try_open`] with a
    /// [`Code::ServiceOverloaded`] (`E305`) diagnostic. Swept handles
    /// count until they are finished or closed.
    pub fn with_max_in_flight(mut self, handles: u32) -> Self {
        self.max_in_flight = Some(handles);
        self
    }

    /// Enables idle sweeping: a handle whose last activity is more than
    /// `ticks` logical ticks in the past when [`ValidationService::tick`]
    /// runs is swept to `Rejected` with a [`Code::IdleTimeout`] (`E306`)
    /// diagnostic and its buffers are recycled.
    pub fn with_idle_budget(mut self, ticks: u64) -> Self {
        self.idle_budget = Some(ticks);
        self
    }

    /// The configured depth cap, if any.
    pub fn max_depth(&self) -> Option<u32> {
        self.max_depth
    }

    /// The configured raw-byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The configured event budget, if any.
    pub fn max_events(&self) -> Option<u64> {
        self.max_events
    }

    /// The configured tag-name length cap, if any.
    pub fn max_name_len(&self) -> Option<u32> {
        self.max_name_len
    }

    /// The configured in-flight handle cap, if any.
    pub fn max_in_flight(&self) -> Option<u32> {
        self.max_in_flight
    }

    /// The configured idle budget in logical ticks, if any.
    pub fn idle_budget(&self) -> Option<u64> {
        self.idle_budget
    }
}

/// One in-flight document: the validator state, the byte-level scanner,
/// the retained rejection, and its resource-accounting counters. Recycled
/// whole through the spare list.
struct InFlight {
    validator: DocumentValidator,
    tokenizer: Tokenizer,
    rejected: Option<Diagnostic>,
    /// Raw bytes consumed so far, charged against `ServiceLimits::max_bytes`.
    bytes_fed: u64,
    /// The service's logical clock value at the last open/feed — the idle
    /// sweep compares it against `ValidationService::tick`'s `now`.
    last_activity: u64,
}

/// The state a generation-valid slot holds for its document.
// Slots are sized for `Live` regardless (the slab keeps in-flight state
// inline so `feed` pays no pointer chase); the small `Swept` variant only
// occupies one transiently, between the sweep and the caller's close.
#[allow(clippy::large_enum_variant)]
enum DocState {
    /// A live in-flight document.
    Live(InFlight),
    /// Swept by the idle governor: the buffers were recycled immediately,
    /// only the cause is retained until the caller finishes or closes the
    /// handle (so `diagnostic`/`finish` still explain the rejection).
    Swept(Diagnostic),
}

/// One slab slot. `generation` (16 bits, wrapping — the low half of the
/// handle's generation word; the high half carries the service's routing
/// tag) is bumped on every free, so stale [`DocId`]s are detected instead
/// of resolving to a recycled document. A handle can only alias after
/// exactly 65 536 reuses of its slot while it is still being held — a
/// caller sitting on a dead handle across that much churn is already
/// outside every serving contract.
struct Slot {
    generation: u32,
    doc: Option<DocState>,
}

/// A connection-oriented validation front end over one [`Schema`]; see the
/// module docs.
///
/// ```
/// use redet_schema::{FeedStatus, SchemaBuilder};
///
/// let schema = SchemaBuilder::new()
///     .element("pair", "(left, right)")
///     .element_empty("left")
///     .element_empty("right")
///     .build()
///     .unwrap();
/// let mut service = redet_schema::ValidationService::new(schema);
///
/// // Two connections, interleaved, one fed as events, one as raw bytes.
/// let a = service.open();
/// let b = service.open();
/// assert_eq!(service.feed_bytes(a, b"<pair><le"), FeedStatus::NeedMore);
/// let pair = service.schema().lookup("pair").unwrap();
/// let left = service.schema().lookup("left").unwrap();
/// use redet_schema::DocEvent::{Close, Open};
/// assert_eq!(service.feed(b, &[Open(pair), Open(left), Close]), FeedStatus::NeedMore);
/// assert_eq!(service.feed_bytes(a, b"ft/><right/></pair>"), FeedStatus::Accepted);
/// assert!(service.finish(a).is_ok());
/// // `b` is missing <right>: the incompleteness is diagnosed at finish.
/// assert_eq!(service.feed(b, &[Close]), FeedStatus::Rejected);
/// assert!(service.finish(b).is_err());
/// ```
pub struct ValidationService {
    /// This service's identity, stamped into every issued [`DocId`].
    id: u32,
    /// The routing tag stamped into the high half of every issued handle's
    /// generation word; see [`ValidationService::set_tag`].
    tag: u16,
    schema: Arc<Schema>,
    limits: ServiceLimits,
    /// The logical clock: the largest `now` any [`ValidationService::tick`]
    /// call has reported. Feeds stamp it into their handle's
    /// `last_activity`.
    now: u64,
    slots: Vec<Slot>,
    /// Indices of empty slots, reused LIFO (warm slots first).
    free: Vec<u32>,
    /// Warmed per-document state of closed handles, reused by `open`.
    spare: Vec<InFlight>,
}

impl ValidationService {
    /// Creates an ungoverned service over `schema` with no in-flight
    /// documents (every [`ServiceLimits`] cap unset).
    #[must_use]
    pub fn new(schema: Arc<Schema>) -> Self {
        Self::with_limits(schema, ServiceLimits::default())
    }

    /// Creates a service over `schema` governed by `limits`; see
    /// [`ServiceLimits`] for what each cap enforces.
    #[must_use]
    pub fn with_limits(schema: Arc<Schema>, limits: ServiceLimits) -> Self {
        ValidationService {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            tag: 0,
            schema,
            limits,
            now: 0,
            slots: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// The shared schema every document is validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Atomically replaces the schema bound by *future* opens — the
    /// service-level half of a registry hot-swap (see
    /// `redet_schema::registry`).
    ///
    /// Semantics:
    ///
    /// * documents already in flight keep validating against the
    ///   [`Arc<Schema>`] they opened under (each handle's validator owns
    ///   its own clone of the `Arc`), so a swap never changes a verdict
    ///   mid-document;
    /// * every subsequent [`ValidationService::try_open`] binds the new
    ///   schema;
    /// * the old artifact is dropped once the last in-flight handle over
    ///   it is finished or closed (and the spare list below is cleared).
    ///
    /// Recycled validator buffers are schema-bound, so the spare list is
    /// discarded on swap and handles finishing under the old schema are
    /// not recycled — the first opens after a swap re-allocate, then the
    /// service warms up again. Swapping in the `Arc` already bound is a
    /// no-op.
    pub fn swap_schema(&mut self, schema: Arc<Schema>) {
        if Arc::ptr_eq(&self.schema, &schema) {
            return;
        }
        self.schema = schema;
        // Spare validators still hold the superseded artifact; recycling
        // one into a new document would validate against the old schema.
        self.spare.clear();
    }

    /// Returns a document's buffers to the spare list — unless its
    /// validator is bound to a superseded schema (the document outlived a
    /// [`ValidationService::swap_schema`]), in which case the buffers are
    /// dropped and the old artifact can finally be released.
    fn recycle(&mut self, flight: InFlight) {
        if std::ptr::eq(flight.validator.schema(), Arc::as_ptr(&self.schema)) {
            self.spare.push(flight);
        }
    }

    /// The resource-governance configuration this service enforces.
    pub fn limits(&self) -> ServiceLimits {
        self.limits
    }

    /// Sets the 16-bit routing tag stamped into the high half of the
    /// generation word of every *subsequently* issued handle (see
    /// [`DocId::tag`]). The tag is routing metadata only — staleness
    /// detection uses the low half of the word, so handles issued before a
    /// tag change stay valid. Multi-schema front ends set each service's
    /// tag to its registry index at startup, before opening documents.
    pub fn set_tag(&mut self, tag: u16) {
        self.tag = tag;
    }

    /// The routing tag currently stamped into issued handles (0 unless
    /// [`ValidationService::set_tag`] was called).
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// Number of currently open documents — live handles plus swept
    /// tombstones whose cause has not been collected yet. Slab hygiene is
    /// observable here: every `open` is balanced by exactly one
    /// `finish`/`close`, after which this returns to its prior value.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slab slots ever allocated (in-flight documents plus free
    /// slots) — a leak audit hook: churning open/finish/close cycles must
    /// not grow this past the high-water mark of concurrently open handles.
    pub fn slab_size(&self) -> usize {
        self.slots.len()
    }

    /// Opens a new in-flight document and returns its handle. Buffers of
    /// previously closed documents are recycled, so a warmed service opens
    /// without allocating.
    ///
    /// # Panics
    /// Panics if the service is at its configured in-flight cap — callers
    /// that configure [`ServiceLimits::with_max_in_flight`] should use
    /// [`ValidationService::try_open`] and handle the backpressure signal.
    pub fn open(&mut self) -> DocId {
        self.try_open()
            .unwrap_or_else(|refusal| panic!("{refusal} (use try_open to handle backpressure)"))
    }

    /// Opens a new in-flight document, refusing admission with a
    /// [`Code::ServiceOverloaded`] diagnostic when the configured
    /// in-flight cap is reached — the service-wide backpressure signal a
    /// front end sheds load on.
    pub fn try_open(&mut self) -> Result<DocId, Diagnostic> {
        if let Some(max) = self.limits.max_in_flight {
            if self.in_flight() >= max as usize {
                return Err(Diagnostic::new(
                    Code::ServiceOverloaded,
                    format!("service is at its in-flight handle cap of {max}"),
                ));
            }
        }
        let mut flight = self.spare.pop().unwrap_or_else(|| InFlight {
            validator: DocumentValidator::new(Arc::clone(&self.schema)),
            tokenizer: Tokenizer::default(),
            rejected: None,
            bytes_fed: 0,
            last_activity: 0,
        });
        flight.validator.set_limits(
            self.limits.max_depth.map_or(usize::MAX, |d| d as usize),
            self.limits
                .max_events
                .map_or(usize::MAX, |e| usize::try_from(e).unwrap_or(usize::MAX)),
        );
        flight.tokenizer.set_name_limit(
            self.limits
                .max_name_len
                .map_or(Tokenizer::MAX_NAME_LEN, |n| n as usize),
        );
        flight.bytes_fed = 0;
        flight.last_activity = self.now;
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    doc: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[index as usize];
        slot.doc = Some(DocState::Live(flight));
        Ok(DocId {
            service: self.id,
            index,
            generation: (u32::from(self.tag) << 16) | slot.generation,
        })
    }

    /// Advances a document by any number of pre-interned events. Feeding
    /// stops at the first diagnostic: the handle flips to
    /// [`FeedStatus::Rejected`], retains that diagnostic, and ignores the
    /// rest of this chunk and all later feeds. Feeding a stale handle does
    /// nothing and reports [`FeedStatus::Stale`].
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed(&mut self, doc: DocId, events: &[DocEvent]) -> FeedStatus {
        self.check_service(doc);
        let now = self.now;
        let flight = match self.doc_state_mut(doc) {
            None => return FeedStatus::Stale,
            Some(DocState::Swept(_)) => return FeedStatus::Rejected,
            Some(DocState::Live(flight)) => flight,
        };
        flight.last_activity = now;
        if flight.rejected.is_some() {
            return FeedStatus::Rejected;
        }
        for &event in events {
            match event {
                DocEvent::Open(sym) => flight.validator.start_element_symbol(sym),
                DocEvent::Close => flight.validator.end_element(),
                DocEvent::Attr(sym) => flight.validator.attribute(sym),
                DocEvent::Text => flight.validator.text(),
            }
            if !flight.validator.is_clean() {
                flight.rejected = flight.validator.take_first_diagnostic();
                return FeedStatus::Rejected;
            }
        }
        Self::progress(flight)
    }

    /// Advances a document by a chunk of raw bytes, tokenizing full markup
    /// on the fly. Chunk boundaries may fall anywhere — mid-name, mid-
    /// attribute-value, mid-text, mid-comment; the scanner state lives in
    /// the handle. Element and attribute names are resolved against the
    /// schema per tag, attribute values and character data (with the
    /// predefined entity and character references decoded) are checked
    /// against the schema's `<!ATTLIST>` tables and mixed-content rules;
    /// comments, PIs and doctypes are skipped. Fails fast exactly like
    /// [`ValidationService::feed`], with unparsable markup reported as a
    /// [`redet_core::Code::MalformedMarkup`] diagnostic and unknown entity
    /// references as [`redet_core::Code::UnknownEntity`]. When a byte
    /// budget is configured, bytes past it are never scanned: the chunk is
    /// truncated at the budget and the violation fires at the same point
    /// under every chunking. Feeding a stale handle does nothing and
    /// reports [`FeedStatus::Stale`].
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    #[must_use = "a rejected document should stop being fed"]
    pub fn feed_bytes(&mut self, doc: DocId, bytes: &[u8]) -> FeedStatus {
        self.check_service(doc);
        let now = self.now;
        let max_bytes = self.limits.max_bytes;
        let flight = match self.doc_state_mut(doc) {
            None => return FeedStatus::Stale,
            Some(DocState::Swept(_)) => return FeedStatus::Rejected,
            Some(DocState::Live(flight)) => flight,
        };
        flight.last_activity = now;
        if flight.rejected.is_some() {
            return FeedStatus::Rejected;
        }
        // Truncate the chunk at the byte budget, so the violation point —
        // and therefore the diagnostic — is chunking-independent.
        let (head, overflow) = match max_bytes {
            Some(max) => {
                let remaining = max.saturating_sub(flight.bytes_fed);
                if bytes.len() as u64 > remaining {
                    (&bytes[..remaining as usize], true)
                } else {
                    (bytes, false)
                }
            }
            None => (bytes, false),
        };
        let validator = &mut flight.validator;
        let clean = flight.tokenizer.feed(head, &mut |tag| {
            match tag {
                Tag::Open(name) => validator.start_element_bytes(name),
                Tag::Attr { name, .. } => validator.attribute_bytes(name),
                Tag::SelfClose => validator.end_element(),
                // XML well-formedness: the end tag must name the innermost
                // open element. (Event-level feeding has no names on close
                // events, so only bytes pay this.)
                Tag::Close(name) => validator.close_element_bytes(name),
                Tag::Text(segment) => validator.text_segment(segment),
                // The tokenizer's length caps are resource limits, not
                // grammar errors: report them under the E3xx family.
                Tag::Error(message) if message == NAME_TOO_LONG || message == ATTR_TOO_LONG => {
                    validator.report_limit(Code::NameLimitExceeded, message.to_owned());
                }
                Tag::Error(message) if message == VALUE_TOO_LONG => {
                    validator.report_limit(Code::ValueLimitExceeded, message.to_owned());
                }
                // Unknown/invalid entity references are markup-level `E2xx`
                // diagnostics with their own code.
                Tag::Error(message) if is_entity_error(message) => {
                    validator.report_limit(Code::UnknownEntity, message.to_owned());
                }
                Tag::Error(message) => validator.report_markup(message.to_owned()),
            }
            validator.is_clean()
        });
        flight.bytes_fed += head.len() as u64;
        if !clean {
            flight.rejected = flight.validator.take_first_diagnostic();
            return FeedStatus::Rejected;
        }
        if overflow {
            flight.validator.report_limit(
                Code::ByteLimitExceeded,
                format!(
                    "document exceeded the byte budget of {} byte(s)",
                    max_bytes.unwrap_or(u64::MAX)
                ),
            );
            flight.rejected = flight.validator.take_first_diagnostic();
            return FeedStatus::Rejected;
        }
        Self::progress(flight)
    }

    /// Advances the service's logical clock to `now` and sweeps every live
    /// handle whose last activity is more than the configured idle budget
    /// in the past: the handle flips to `Rejected` with a
    /// [`Code::IdleTimeout`] diagnostic (an earlier rejection, if any, is
    /// kept — the earliest-diagnostic contract), and its validator/
    /// tokenizer buffers are recycled immediately. Returns the number of
    /// handles swept. Without a configured idle budget this only advances
    /// the clock.
    ///
    /// The clock is dependency-free: drive it from any timer source — a
    /// poll-loop iteration counter, seconds since start, an epoll timeout
    /// generation. Clocks never run backwards (`now` below a previous
    /// `tick` is ignored).
    pub fn tick(&mut self, now: u64) -> usize {
        if now > self.now {
            self.now = now;
        }
        let Some(budget) = self.limits.idle_budget else {
            return 0;
        };
        let now = self.now;
        let mut swept = 0usize;
        // `self.spare` is pushed to while `self.slots` is mutably iterated
        // (disjoint fields), so the recycle() schema check is inlined here
        // against a raw pointer captured up front.
        let current_schema: *const Schema = Arc::as_ptr(&self.schema);
        for slot in &mut self.slots {
            let idle = matches!(
                slot.doc.as_ref(),
                Some(DocState::Live(flight)) if now.saturating_sub(flight.last_activity) > budget
            );
            if !idle {
                continue;
            }
            let Some(DocState::Live(mut flight)) = slot.doc.take() else {
                continue;
            };
            let diagnostic = match flight.rejected.take() {
                // An already-rejected handle keeps its earlier cause.
                Some(diagnostic) => diagnostic,
                None => {
                    flight.validator.report_limit(
                        Code::IdleTimeout,
                        format!("document sat idle past the idle budget of {budget} tick(s)"),
                    );
                    flight
                        .validator
                        .take_first_diagnostic()
                        .expect("just recorded")
                }
            };
            let _ = flight.validator.finish();
            flight.tokenizer.reset();
            slot.doc = Some(DocState::Swept(diagnostic));
            if std::ptr::eq(flight.validator.schema(), current_schema) {
                self.spare.push(flight);
            }
            swept += 1;
        }
        swept
    }

    /// The current status of a document, without feeding anything. Stale
    /// handles report [`FeedStatus::Stale`]; swept handles report
    /// [`FeedStatus::Rejected`].
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    pub fn status(&self, doc: DocId) -> FeedStatus {
        self.check_service(doc);
        match self.doc_state(doc) {
            None => FeedStatus::Stale,
            Some(DocState::Swept(_)) => FeedStatus::Rejected,
            Some(DocState::Live(flight)) if flight.rejected.is_some() => FeedStatus::Rejected,
            Some(DocState::Live(flight)) => Self::progress(flight),
        }
    }

    /// The retained diagnostic of a rejected (or swept) document, if any.
    /// Stale handles have no retained state and return `None`.
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    pub fn diagnostic(&self, doc: DocId) -> Option<&Diagnostic> {
        self.check_service(doc);
        match self.doc_state(doc)? {
            DocState::Live(flight) => flight.rejected.as_ref(),
            DocState::Swept(diagnostic) => Some(diagnostic),
        }
    }

    /// Whether a document was swept by the idle governor: its buffers are
    /// recycled and only the rejection cause is retained until the handle
    /// is finished or closed. A network front end uses this to answer a
    /// connection whose document was idled out without waiting for the
    /// peer to send more bytes. `false` for live and stale handles.
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    pub fn is_swept(&self, doc: DocId) -> bool {
        self.check_service(doc);
        matches!(self.doc_state(doc), Some(DocState::Swept(_)))
    }

    /// Number of currently open elements of a document (0 for stale and
    /// swept handles).
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    pub fn depth(&self, doc: DocId) -> usize {
        self.check_service(doc);
        match self.doc_state(doc) {
            Some(DocState::Live(flight)) => flight.validator.depth(),
            _ => 0,
        }
    }

    /// Ends a document: checks end-of-document acceptance (every element
    /// closed, no markup left open), releases the handle and recycles its
    /// buffers. Returns the retained diagnostic for rejected documents —
    /// byte-identical to the *first* diagnostic a whole-document
    /// [`DocumentValidator`] run over the same events would report — the
    /// idle-timeout diagnostic for swept documents, and a
    /// [`Code::StaleHandle`] diagnostic for stale handles (which hold no
    /// document to release).
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    #[must_use = "the validation verdict is the point of finish()"]
    pub fn finish(&mut self, doc: DocId) -> Result<(), Diagnostic> {
        self.check_service(doc);
        let Some(state) = self.take_doc_state(doc) else {
            return Err(Self::stale_diagnostic());
        };
        let mut flight = match state {
            DocState::Swept(diagnostic) => return Err(diagnostic),
            DocState::Live(flight) => flight,
        };
        let result = match flight.rejected.take() {
            Some(diagnostic) => {
                // Reset the abandoned mid-document state for recycling.
                let _ = flight.validator.finish();
                Err(diagnostic)
            }
            None if !flight.tokenizer.is_idle() => {
                flight
                    .validator
                    .report_markup("byte stream ended inside markup".to_owned());
                let diagnostic = flight
                    .validator
                    .take_first_diagnostic()
                    .expect("just recorded");
                let _ = flight.validator.finish();
                Err(diagnostic)
            }
            None => flight.validator.finish().map_err(|mut diagnostics| {
                // Only end-of-document diagnostics can be pending here —
                // anything earlier would have rejected the handle.
                diagnostics.remove(0)
            }),
        };
        flight.tokenizer.reset();
        self.recycle(flight);
        result
    }

    /// Abandons a document without the end-of-document check, releasing the
    /// handle and recycling its buffers. Idempotent: closing a stale handle
    /// (including a double close) is a no-op.
    ///
    /// # Panics
    /// Panics if `doc` belongs to another service.
    pub fn close(&mut self, doc: DocId) {
        self.check_service(doc);
        match self.take_doc_state(doc) {
            None | Some(DocState::Swept(_)) => {}
            Some(DocState::Live(mut flight)) => {
                flight.rejected = None;
                let _ = flight.validator.finish();
                flight.tokenizer.reset();
                self.recycle(flight);
            }
        }
    }

    /// Validates one whole document given as a pre-interned event stream:
    /// `open` + `feed` + `finish` in one call (admission-checked — at the
    /// in-flight cap the [`Code::ServiceOverloaded`] refusal is the
    /// verdict). This is the loop [`crate::ValidatorPool`] workers run per
    /// document — batch validation and interleaved serving share one code
    /// path.
    pub fn validate_events(&mut self, events: &[DocEvent]) -> Result<(), Diagnostic> {
        let doc = self.try_open()?;
        let _ = self.feed(doc, events);
        self.finish(doc)
    }

    /// Validates one whole document given as raw bytes: `open` +
    /// `feed_bytes` + `finish` in one call (admission-checked like
    /// [`ValidationService::validate_events`]).
    pub fn validate_bytes(&mut self, bytes: &[u8]) -> Result<(), Diagnostic> {
        let doc = self.try_open()?;
        let _ = self.feed_bytes(doc, bytes);
        self.finish(doc)
    }

    /// The feed status of a live (non-rejected) document.
    fn progress(flight: &InFlight) -> FeedStatus {
        if flight.validator.depth() == 0
            && flight.validator.events() > 0
            && flight.tokenizer.is_idle()
        {
            FeedStatus::Accepted
        } else {
            FeedStatus::NeedMore
        }
    }

    /// The diagnostic handed out for operations on stale handles.
    fn stale_diagnostic() -> Diagnostic {
        Diagnostic::new(
            Code::StaleHandle,
            "document handle is stale: already finished, closed, or swept and recycled",
        )
    }

    /// Mixing handles *across services* is a programming error (the slab
    /// indices would alias), not a traffic pattern — it panics rather than
    /// reporting a stale handle.
    fn check_service(&self, doc: DocId) {
        assert_eq!(
            doc.service, self.id,
            "DocId belongs to another ValidationService"
        );
    }

    /// The generation-checked state of a handle (`None` when stale). Only
    /// the low half of the generation word is compared — the high half is
    /// the routing tag, which never affects staleness.
    fn doc_state(&self, doc: DocId) -> Option<&DocState> {
        self.slots
            .get(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation & 0xFFFF)
            .and_then(|slot| slot.doc.as_ref())
    }

    /// Mutable [`ValidationService::doc_state`].
    fn doc_state_mut(&mut self, doc: DocId) -> Option<&mut DocState> {
        self.slots
            .get_mut(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation & 0xFFFF)
            .and_then(|slot| slot.doc.as_mut())
    }

    /// Removes a document from its slot, freeing the slot for reuse and
    /// invalidating every copy of the handle. `None` when stale.
    fn take_doc_state(&mut self, doc: DocId) -> Option<DocState> {
        let slot = self
            .slots
            .get_mut(doc.index as usize)
            .filter(|slot| slot.generation == doc.generation & 0xFFFF)?;
        let state = slot.doc.take()?;
        slot.generation = (slot.generation + 1) & 0xFFFF;
        self.free.push(doc.index);
        Some(state)
    }
}

impl std::fmt::Debug for ValidationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationService")
            .field("schema", &self.schema)
            .field("limits", &self.limits)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight())
            .field("spare", &self.spare.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;

    fn bibliography() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("bibliography", "(book | article)*")
            .element("book", "(title, author+, year)")
            .element("article", "(title, author+, journal, year?)")
            .element_text("title")
            .element_empty("author")
            .element_empty("year")
            .attribute("author", "kind", false)
            .build()
            .unwrap()
    }

    fn events(schema: &Schema, names: &[&str]) -> Vec<DocEvent> {
        names
            .iter()
            .map(|name| match name.strip_prefix('/') {
                Some(_) => DocEvent::Close,
                None => DocEvent::Open(schema.lookup(name).unwrap()),
            })
            .collect()
    }

    const VALID: &[&str] = &[
        "bibliography",
        "book",
        "title",
        "/",
        "author",
        "/",
        "year",
        "/",
        "/",
        "/",
    ];

    #[test]
    fn interleaved_documents_do_not_interfere() {
        let schema = bibliography();
        let doc = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        // 8 concurrent handles, round-robin one event at a time.
        let handles: Vec<DocId> = (0..8).map(|_| service.open()).collect();
        assert_eq!(service.in_flight(), 8);
        for i in 0..doc.len() {
            for &h in &handles {
                let status = service.feed(h, &doc[i..=i]);
                if i + 1 == doc.len() {
                    assert_eq!(status, FeedStatus::Accepted);
                } else {
                    assert_eq!(status, FeedStatus::NeedMore);
                }
            }
        }
        for h in handles {
            assert!(service.finish(h).is_ok());
        }
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    fn rejected_handles_fail_fast_and_retain_the_first_diagnostic() {
        let schema = bibliography();
        // `author` before `title` rejects <book> at event 2.
        let bad = events(
            &schema,
            &[
                "bibliography",
                "book",
                "author",
                "/",
                "title",
                "/",
                "year",
                "/",
                "/",
                "/",
            ],
        );
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        assert_eq!(service.feed(doc, &bad[..2]), FeedStatus::NeedMore);
        assert_eq!(service.feed(doc, &bad[2..4]), FeedStatus::Rejected);
        let retained = service.diagnostic(doc).unwrap().to_string();
        // Further feeding is a no-op; the diagnostic does not change.
        assert_eq!(service.feed(doc, &bad[4..]), FeedStatus::Rejected);
        assert_eq!(service.diagnostic(doc).unwrap().to_string(), retained);
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.to_string(), retained);
        // Byte-identical to the first whole-document diagnostic.
        let mut whole = schema.validator();
        let expected = whole.validate_events(&bad).unwrap_err();
        assert_eq!(format!("{err:?}"), format!("{:?}", expected[0]));
    }

    #[test]
    fn finish_diagnoses_incomplete_and_unbalanced_documents() {
        let schema = bibliography();
        let doc = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        // Truncated: unbalanced at finish.
        let h = service.open();
        assert_eq!(service.feed(h, &doc[..3]), FeedStatus::NeedMore);
        assert_eq!(
            service.finish(h).unwrap_err().code(),
            Code::UnbalancedDocument
        );
        // Recycled slot, fresh generation: the old handle is dead.
        let h2 = service.open();
        assert_eq!(service.feed(h2, &doc), FeedStatus::Accepted);
        assert!(service.finish(h2).is_ok());
    }

    #[test]
    fn stale_handles_are_reported_not_panicked() {
        let schema = bibliography();
        let doc = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        let h = service.open();
        service.close(h);
        // Every operation on the stale handle is graceful and distinct.
        assert_eq!(service.status(h), FeedStatus::Stale);
        assert_eq!(service.feed(h, &doc), FeedStatus::Stale);
        assert_eq!(service.feed_bytes(h, b"<bibliography/>"), FeedStatus::Stale);
        assert!(service.diagnostic(h).is_none());
        assert_eq!(service.depth(h), 0);
        let err = service.finish(h).unwrap_err();
        assert_eq!(err.code(), Code::StaleHandle);
        // Double close is a no-op — and the slab did not leak.
        service.close(h);
        service.close(h);
        assert_eq!(service.in_flight(), 0);
        // The recycled slot's new handle is unaffected by the stale one.
        let h2 = service.open();
        assert_eq!(service.feed(h, &doc), FeedStatus::Stale);
        assert_eq!(service.feed(h2, &doc), FeedStatus::Accepted);
        assert!(service.finish(h2).is_ok());
    }

    #[test]
    fn byte_feeding_tolerates_any_split() {
        let schema = bibliography();
        let xml = "<?xml version=\"1.0\"?><bibliography><!-- one entry -->\
                   <book><title>G &amp; S</title>\
                   <author kind=\"primary\"/><year/></book>\
                   </bibliography>";
        let mut service = ValidationService::new(Arc::clone(&schema));
        for chunk in [1usize, 2, 3, 7, 16, xml.len()] {
            let doc = service.open();
            let mut status = FeedStatus::NeedMore;
            for part in xml.as_bytes().chunks(chunk) {
                status = service.feed_bytes(doc, part);
            }
            assert_eq!(status, FeedStatus::Accepted, "chunk size {chunk}");
            assert!(service.finish(doc).is_ok(), "chunk size {chunk}");
        }
    }

    #[test]
    fn markup_diagnostics_are_chunking_invariant() {
        let schema = bibliography();
        let mut service = ValidationService::new(Arc::clone(&schema));
        let cases = [
            // Duplicate declared attribute.
            (
                "<bibliography><book><title>t</title>\
                 <author kind=\"x\" kind=\"y\"/><year/></book></bibliography>",
                Code::DuplicateAttribute,
            ),
            // Undeclared attribute on a declared element.
            (
                "<bibliography><book><title lang=\"en\">t</title>\
                 <author/><year/></book></bibliography>",
                Code::UndeclaredAttribute,
            ),
            // Character data where the content model is element-only.
            ("<bibliography>stray</bibliography>", Code::StrayText),
            // An entity reference outside the predefined five.
            (
                "<bibliography><book><title>&nope;</title>\
                 <author/><year/></book></bibliography>",
                Code::UnknownEntity,
            ),
        ];
        for (xml, code) in cases {
            let mut first: Option<String> = None;
            for chunk in [1usize, 2, 3, 7, xml.len()] {
                let doc = service.open();
                for part in xml.as_bytes().chunks(chunk) {
                    let _ = service.feed_bytes(doc, part);
                }
                let err = service.finish(doc).unwrap_err();
                assert_eq!(err.code(), code, "{xml} (chunk size {chunk})");
                let render = format!("{err:?}");
                match &first {
                    None => first = Some(render),
                    Some(expected) => {
                        assert_eq!(&render, expected, "{xml} (chunk size {chunk})");
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_markup_is_a_diagnostic() {
        let schema = bibliography();
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
        // A byte stream ending inside a tag is malformed too.
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography></bibliogr"),
            FeedStatus::NeedMore
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
    }

    #[test]
    fn mismatched_end_tags_are_rejected() {
        let schema = bibliography();
        let mut service = ValidationService::new(Arc::clone(&schema));
        let doc = service.open();
        // </bibliography> closes <book>: well-formedness violation, caught
        // whatever the chunking.
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><book></bibliography>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::MalformedMarkup);
        assert!(err.to_string().contains("</bibliography>"), "{err}");
        // Properly nested documents are unaffected.
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography></bibliography>"),
            FeedStatus::Accepted
        );
        assert!(service.finish(doc).is_ok());
    }

    #[test]
    fn tags_ride_the_generation_word() {
        let schema = bibliography();
        let doc_events = events(&schema, VALID);
        let mut service = ValidationService::new(Arc::clone(&schema));
        assert_eq!(service.tag(), 0);
        service.set_tag(7);
        assert_eq!(service.tag(), 7);
        // The tag is observable on the handle and does not disturb feeding.
        let h = service.open();
        assert_eq!(h.tag(), 7);
        assert_eq!(service.feed(h, &doc_events), FeedStatus::Accepted);
        assert!(service.finish(h).is_ok());
        // Staleness detection survives tagging: the released handle is dead
        // even though its slot was recycled under the same tag.
        let h2 = service.open();
        assert_eq!(h2.tag(), 7);
        assert_eq!(service.feed(h, &doc_events), FeedStatus::Stale);
        service.close(h2);
        // A tag change is routing metadata only: handles issued before it
        // stay valid.
        let h3 = service.open();
        service.set_tag(9);
        assert_eq!(service.feed(h3, &doc_events), FeedStatus::Accepted);
        assert!(service.finish(h3).is_ok());
        // The 16-bit slot generation wraps without ever resurrecting the
        // original stale handle.
        let dead = service.open();
        service.close(dead);
        for _ in 0..0x10000 {
            let h = service.open();
            service.close(h);
        }
        assert_eq!(service.status(dead), FeedStatus::Stale);
        assert_eq!(service.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "another ValidationService")]
    fn foreign_handles_panic() {
        let schema = bibliography();
        let mut first = ValidationService::new(Arc::clone(&schema));
        let mut second = ValidationService::new(schema);
        let doc = first.open();
        let _ = second.open(); // same slot index and generation — still foreign
        let _ = second.status(doc);
    }

    #[test]
    fn unknown_elements_reject_byte_documents() {
        let schema = bibliography();
        let mut service = ValidationService::new(schema);
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography><pamphlet/>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::UnknownElement);
    }

    #[test]
    fn admission_is_refused_at_the_in_flight_cap() {
        let schema = bibliography();
        let limits = ServiceLimits::default().with_max_in_flight(2);
        let mut service = ValidationService::with_limits(schema, limits);
        assert_eq!(service.limits().max_in_flight(), Some(2));
        let a = service.try_open().unwrap();
        let b = service.try_open().unwrap();
        let refused = service.try_open().unwrap_err();
        assert_eq!(refused.code(), Code::ServiceOverloaded);
        assert!(refused.to_string().contains("cap of 2"), "{refused}");
        // Releasing one handle re-admits.
        service.close(a);
        let c = service.try_open().unwrap();
        service.close(b);
        service.close(c);
        // validate_events under a zero cap degrades to the refusal verdict.
        let mut zero = ValidationService::with_limits(
            bibliography(),
            ServiceLimits::default().with_max_in_flight(0),
        );
        let err = zero.validate_events(&[]).unwrap_err();
        assert_eq!(err.code(), Code::ServiceOverloaded);
    }

    #[test]
    fn depth_limit_fires_at_the_frame_push() {
        let schema = SchemaBuilder::new()
            .element("item", "(item)?")
            .build()
            .unwrap();
        let limits = ServiceLimits::default().with_max_depth(3);
        let mut service = ValidationService::with_limits(Arc::clone(&schema), limits);
        let item = schema.lookup("item").unwrap();
        let doc = service.open();
        let deep: Vec<DocEvent> = (0..4).map(|_| DocEvent::Open(item)).collect();
        assert_eq!(service.feed(doc, &deep), FeedStatus::Rejected);
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::DepthLimitExceeded);
        assert_eq!(err.location().unwrap().event, 3);
        // Exactly at the cap is fine.
        let doc = service.open();
        let ok: Vec<DocEvent> = (0..3)
            .map(|_| DocEvent::Open(item))
            .chain((0..3).map(|_| DocEvent::Close))
            .collect();
        assert_eq!(service.feed(doc, &ok), FeedStatus::Accepted);
        assert!(service.finish(doc).is_ok());
    }

    #[test]
    fn event_budget_fires_on_the_first_event_past_it() {
        let schema = bibliography();
        let doc_events = events(&schema, VALID); // 10 events
        let limits = ServiceLimits::default().with_max_events(10);
        let mut service = ValidationService::with_limits(Arc::clone(&schema), limits);
        // Exactly the budget: accepted.
        let h = service.open();
        assert_eq!(service.feed(h, &doc_events), FeedStatus::Accepted);
        assert!(service.finish(h).is_ok());
        // A budget one short: the 10th event (index 9) trips E303.
        let mut tight = ValidationService::with_limits(
            Arc::clone(&schema),
            ServiceLimits::default().with_max_events(9),
        );
        let h = tight.open();
        assert_eq!(tight.feed(h, &doc_events), FeedStatus::Rejected);
        let err = tight.finish(h).unwrap_err();
        assert_eq!(err.code(), Code::EventLimitExceeded);
        assert_eq!(err.location().unwrap().event, 9);
        // The budget also governs byte feeding (events come from tags).
        let h = tight.open();
        assert_eq!(
            tight.feed_bytes(
                h,
                b"<bibliography><book><title/><author/><year/></book></bibliography>"
            ),
            FeedStatus::Rejected
        );
        let err = tight.finish(h).unwrap_err();
        assert_eq!(err.code(), Code::EventLimitExceeded);
    }

    #[test]
    fn byte_budget_truncates_at_the_same_point_under_any_chunking() {
        let schema = bibliography();
        let xml = b"<bibliography><book><title/><author/><year/></book></bibliography>";
        let limits = ServiceLimits::default().with_max_bytes(20);
        let mut service = ValidationService::with_limits(Arc::clone(&schema), limits);
        let mut renders = Vec::new();
        for chunk in [1usize, 3, 7, xml.len()] {
            let doc = service.open();
            let mut status = FeedStatus::NeedMore;
            for part in xml.chunks(chunk) {
                status = service.feed_bytes(doc, part);
                if status == FeedStatus::Rejected {
                    break;
                }
            }
            assert_eq!(status, FeedStatus::Rejected, "chunk size {chunk}");
            let err = service.finish(doc).unwrap_err();
            assert_eq!(err.code(), Code::ByteLimitExceeded);
            renders.push(format!("{err:?}"));
        }
        assert!(renders.windows(2).all(|w| w[0] == w[1]), "{renders:?}");
    }

    #[test]
    fn name_cap_is_an_e304_rejection() {
        let schema = bibliography();
        let limits = ServiceLimits::default().with_max_name_len(8);
        let mut service = ValidationService::with_limits(schema, limits);
        let doc = service.open();
        assert_eq!(
            service.feed_bytes(doc, b"<bibliography>"),
            FeedStatus::Rejected
        );
        let err = service.finish(doc).unwrap_err();
        assert_eq!(err.code(), Code::NameLimitExceeded);
    }

    #[test]
    fn tick_sweeps_idle_handles_and_recycles_their_buffers() {
        let schema = bibliography();
        let doc_events = events(&schema, VALID);
        let limits = ServiceLimits::default().with_idle_budget(5);
        let mut service = ValidationService::with_limits(Arc::clone(&schema), limits);
        let idle = service.open();
        let busy = service.open();
        assert_eq!(service.feed(idle, &doc_events[..1]), FeedStatus::NeedMore);
        // Within the budget nothing is swept.
        assert_eq!(service.tick(5), 0);
        assert_eq!(service.feed(busy, &doc_events[..1]), FeedStatus::NeedMore);
        // Past the budget only the idle handle goes.
        assert_eq!(service.tick(6), 1);
        assert_eq!(service.status(idle), FeedStatus::Rejected);
        assert_eq!(service.status(busy), FeedStatus::NeedMore);
        assert_eq!(service.diagnostic(idle).unwrap().code(), Code::IdleTimeout);
        // Feeding the swept handle is refused without work.
        assert_eq!(service.feed(idle, &doc_events[1..]), FeedStatus::Rejected);
        let err = service.finish(idle).unwrap_err();
        assert_eq!(err.code(), Code::IdleTimeout);
        // The busy handle was stamped by its feeds and is unaffected.
        assert_eq!(service.feed(busy, &doc_events[1..]), FeedStatus::Accepted);
        assert!(service.finish(busy).is_ok());
        assert_eq!(service.in_flight(), 0);
        // The clock never runs backwards.
        assert_eq!(service.tick(3), 0);
        // An already-rejected idle handle keeps its earlier diagnostic.
        let h = service.open();
        let bad = events(&schema, &["bibliography", "year"]);
        assert_eq!(service.feed(h, &bad), FeedStatus::Rejected);
        let retained = service.diagnostic(h).unwrap().to_string();
        assert_eq!(service.tick(100), 1);
        assert_eq!(service.diagnostic(h).unwrap().to_string(), retained);
        service.close(h);
    }
}
