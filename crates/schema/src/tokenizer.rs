//! A bulk-scanning streaming XML tokenizer: raw bytes in, tag events out.
//!
//! [`ValidationService::feed_bytes`] lets callers pipe socket buffers
//! straight into validation; this module is the state machine behind it. It
//! turns tag soup into open/close events and **tolerates chunk boundaries
//! anywhere** — mid-name, mid-attribute, mid-comment — by keeping the whole
//! scanner state (plus the bytes of a partial name) in the [`Tokenizer`]
//! value between `feed` calls.
//!
//! # Bulk scanning
//!
//! Every scanner state is either a *skip class* — "consume bytes until one
//! of a few interesting delimiters" — or a short discriminator (`<!-`,
//! `CDATA[`) handled byte by byte. [`Tokenizer::feed`] therefore does not
//! run a per-byte `match`: each skip-class state consumes its whole run
//! with one [`redet_core::bytescan`] SWAR search (eight bytes per step)
//! and only the delimiter byte itself pays the state dispatch:
//!
//! * character data skips to the next `<`;
//! * comments skip to the next `-`, CDATA sections to the next `]`,
//!   processing instructions to the next `?`;
//! * attribute lists skip to the next `>`/quote (with `<` screened as an
//!   error), quoted values and doctype literals to their closing quote,
//!   doctype internal subsets to the next quote/bracket/`>`;
//! * tag names run to the next non-name byte and are **borrowed straight
//!   out of the chunk** — the `name` buffer is written only when a tag
//!   actually straddles a chunk boundary, so a warmed tokenizer feeding
//!   whole documents never copies a name at all.
//!
//! The per-byte scalar scanner is retained as [`Tokenizer::feed_scalar`] —
//! the reference oracle the equivalence suite and the E14 benchmark compare
//! the bulk scanner against. Both scanners cap the partial-name buffer —
//! [`Tokenizer::MAX_NAME_LEN`] bytes by default, configurable down via
//! [`Tokenizer::set_name_limit`] (the `ServiceLimits` hook): a hostile
//! stream consisting of one never-ending tag name produces a bounded
//! buffer and a `Code::NameLimitExceeded` diagnostic instead of
//! unbounded growth.
//!
//! The tokenizer is deliberately minimal, scoped to what element-structure
//! validation needs:
//!
//! * start tags `<name …>` (attributes are skipped, with quote tracking so
//!   `>` inside an attribute value does not end the tag), end tags
//!   `</name>`, and self-closing tags `<name …/>`;
//! * character data, comments (`<!-- … -->`), CDATA sections
//!   (`<![CDATA[ … ]]>`), processing instructions (`<?…?>`) and doctype-ish
//!   `<!…>` constructs (with `[…]` internal-subset nesting) are consumed
//!   and ignored — content models constrain *element* children only, which
//!   matches [`DocumentValidator`]'s event model;
//! * anything unparsable (stray `<`, `<>`, `</>`, garbage after an end-tag
//!   name, an over-long element name) is reported as a [`Tag::Error`],
//!   which the service converts into a [`Code::MalformedMarkup`]
//!   diagnostic. Tag names themselves are handed to the sink as **raw
//!   bytes** — see [`Tag`] for why UTF-8 validation is deliberately the
//!   consumer's job.
//!
//! No byte is ever buffered except a chunk-straddling partial tag name, so
//! a warmed tokenizer feeds without allocating.
//!
//! [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
//! [`DocumentValidator`]: crate::DocumentValidator
//! [`Code::MalformedMarkup`]: redet_core::Code::MalformedMarkup

use redet_core::bytescan::{memchr, memchr2, memchr3, memchr_mask_zero, splat, zero_byte_markers};

/// One tag-level event produced by the tokenizer.
///
/// Names are the **raw bytes** of the stream, not `&str`: the tokenizer
/// never UTF-8-validates a name, so the hot path pays no per-tag
/// `from_utf8` walk. A consumer resolving names against a schema gets
/// UTF-8 for free on a hit (schema names are strings — byte equality
/// implies validity) and only needs to validate on the unknown-name cold
/// path, which is exactly what [`ValidationService::feed_bytes`] does.
///
/// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
#[derive(Debug, PartialEq, Eq)]
pub enum Tag<'a> {
    /// A start tag `<name …>`.
    Open(&'a [u8]),
    /// A self-closing tag `<name …/>`: open and immediately close.
    OpenClose(&'a [u8]),
    /// An end tag `</name>`. The service checks the name against the
    /// innermost open element (the tokenizer itself does no matching).
    Close(&'a [u8]),
    /// Markup the minimal grammar cannot parse.
    Error(&'static str),
}

/// Which quote character an attribute value is currently inside.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Quote {
    #[default]
    None,
    Single,
    Double,
}

/// The scanner position. Everything is `Copy` plain data; together with the
/// partial-name buffer it is the *entire* cross-chunk state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum State {
    /// Character data between tags (ignored). Skip class: `<`.
    #[default]
    Text,
    /// Just after `<`.
    Lt,
    /// Inside a start-tag name. Skip class: any non-name byte.
    OpenName,
    /// Inside an end-tag name. Skip class: any non-name byte.
    CloseName,
    /// Inside a start tag after the name, skipping attributes. `slash` is
    /// set when the previous meaningful byte was `/` (self-closing if `>`
    /// follows). Skip class: `>`, quotes (with `<` screened as an error).
    Attrs { quote: Quote, slash: bool },
    /// After `</name` — only whitespace may precede the `>`.
    CloseEnd,
    /// Just after `<!`, before the construct is identified.
    Bang,
    /// After `<!-`, expecting the second `-` of a comment opener.
    BangDash,
    /// Matching the `CDATA[` discriminator after `<![`, byte by byte.
    CdataPrefix { matched: u8 },
    /// Inside `<![CDATA[ … ]]>`; `brackets` counts trailing `]`s seen.
    /// Skip class (at `brackets == 0`): `]`.
    Cdata { brackets: u8 },
    /// Inside `<!-- … -->`; `dashes` counts trailing `-`s seen. Skip class
    /// (at `dashes == 0`): `-`.
    Comment { dashes: u8 },
    /// Inside a doctype-ish `<!…>` construct; `depth` tracks `[…]` nesting
    /// (internal subsets contain `>`s of their own) and `quote` an open
    /// system/public literal (which may legally contain `>`, `[`, `]`).
    /// Skip class: quotes, brackets and `>` (just the closing quote inside
    /// a literal).
    Doctype { depth: u8, quote: Quote },
    /// Inside `<?…?>`; `qm` is set when the previous byte was `?`. Skip
    /// class (at `!qm`): `?`.
    Pi { qm: bool },
}

/// Which tag the current byte completed; the name sits in the buffer and/or
/// the current chunk.
#[derive(Clone, Copy)]
enum Finish {
    Open,
    OpenClose,
    Close,
}

const CDATA_PREFIX: &[u8] = b"CDATA[";

/// The [`Tag::Error`] text for a name longer than the tokenizer's
/// name-length cap ([`Tokenizer::MAX_NAME_LEN`] unless lowered via
/// [`Tokenizer::set_name_limit`]). The service layer recognizes this
/// message and reports it under the `E3xx` resource-governance family.
pub(crate) const NAME_TOO_LONG: &str = "element name exceeds the name-length cap";

/// Bytes allowed in element names, precomputed so the name run loop is one
/// indexed load per byte. Deliberately permissive (tag soup): any byte that
/// cannot terminate or confuse a tag, including multi-byte UTF-8 sequences,
/// counts as a name byte; real name validation happens against the schema's
/// alphabet.
static NAME_BYTE: [bool; 256] = {
    let mut table = [false; 256];
    let mut b = 0usize;
    while b < 256 {
        table[b] = !((b as u8).is_ascii_whitespace()
            || matches!(
                b as u8,
                b'<' | b'>' | b'/' | b'!' | b'?' | b'=' | b'"' | b'\''
            ));
        b += 1;
    }
    table
};

#[inline]
fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

/// Scans a name run from `i` to its terminating non-name byte, returning
/// the terminator's index and value — `(bytes.len(), _)` when the chunk
/// ends first. Every possible terminator is ASCII below `0x40` and every
/// byte at or above it (letters, multi-byte UTF-8) is unconditionally a
/// name byte, so the scan masks with `0xC0` and only low bytes (digits,
/// `-`, `:`, the real terminators, …) consult the exact table.
///
/// The first arm settles the typical case — the rest of the name plus its
/// terminator inside one word — with a single load, keeping the terminator
/// in a register instead of re-loading it; the loop handles chunk tails,
/// low name bytes and names longer than a word.
#[inline]
fn scan_name_tail(bytes: &[u8], mut i: usize) -> (usize, u8) {
    if i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
        let z = zero_byte_markers(w & splat(0xC0));
        if z != 0 {
            let k = (z.trailing_zeros() / 8) as usize;
            let t = (w >> (8 * k)) as u8;
            if !is_name_byte(t) {
                return (i + k, t);
            }
        }
    }
    let len = bytes.len();
    let mut t = 0u8;
    while i < len {
        match memchr_mask_zero(0xC0, &bytes[i..]) {
            Some(k) => {
                i += k;
                t = bytes[i];
                if is_name_byte(t) {
                    i += 1;
                } else {
                    break;
                }
            }
            None => i = len,
        }
    }
    (i, t)
}

/// The earlier of two optional scan hits.
#[inline]
fn min_hit(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The streaming scanner; see the module docs. One per in-flight document —
/// chunk boundaries may fall anywhere, so the state must persist between
/// [`Tokenizer::feed`] calls.
///
/// ```
/// use redet_schema::tokenizer::{Tag, Tokenizer};
///
/// let mut tags = Vec::new();
/// let mut tokenizer = Tokenizer::default();
/// // Chunk boundaries may fall anywhere — even mid-name.
/// for chunk in [&b"<doc><!-- hi --><it"[..], &b"em/></doc>"[..]] {
///     tokenizer.feed(chunk, &mut |tag| {
///         tags.push(match tag {
///             Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
///             Tag::OpenClose(n) => format!("<{}/>", String::from_utf8_lossy(n)),
///             Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
///             Tag::Error(e) => format!("!{e}"),
///         });
///         true
///     });
/// }
/// assert_eq!(tags, ["<doc>", "<item/>", "</doc>"]);
/// assert!(tokenizer.is_idle());
/// ```
#[derive(Debug)]
pub struct Tokenizer {
    state: State,
    /// Bytes of the current tag name when it straddles a chunk boundary
    /// (names completed inside one chunk are borrowed, not copied).
    name: Vec<u8>,
    /// The active name-length cap (defaults to [`Tokenizer::MAX_NAME_LEN`]).
    name_limit: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            state: State::Text,
            name: Vec::new(),
            name_limit: Self::MAX_NAME_LEN,
        }
    }
}

impl Tokenizer {
    /// Default upper bound on a tag name's length in bytes. A longer "name"
    /// (a hostile unterminated-tag stream) is reported as a [`Tag::Error`]
    /// and the rest of the run is treated as character data, so the
    /// partial-name buffer a malicious connection can pin stays bounded.
    pub const MAX_NAME_LEN: usize = 4096;

    /// Lowers (or raises) the name-length cap. The cap is clamped to at
    /// least one byte so single-character names always scan; the emission
    /// point — the `(cap + 1)`-th name byte — is identical in the bulk and
    /// scalar scanners under every chunking.
    pub fn set_name_limit(&mut self, limit: usize) {
        self.name_limit = limit.max(1);
    }

    /// The active name-length cap in bytes.
    pub fn name_limit(&self) -> usize {
        self.name_limit
    }

    /// Whether the scanner is between constructs — the end-of-document
    /// well-formedness check (`finish` inside a tag is malformed markup).
    pub fn is_idle(&self) -> bool {
        self.state == State::Text
    }

    /// Resets the scanner for the next document, keeping the name buffer's
    /// capacity.
    pub fn reset(&mut self) {
        self.state = State::Text;
        self.name.clear();
    }

    /// Scans one chunk, invoking `sink` for every completed tag. The sink
    /// returns `false` to stop the scan (the service does this when the
    /// document is rejected); remaining bytes of the chunk are dropped and
    /// `feed` returns `false`. Returns `true` when the whole chunk was
    /// consumed.
    ///
    /// Tag names are borrowed out of `bytes` whenever the whole tag name
    /// lies inside this chunk; only chunk-straddling names are copied into
    /// the tokenizer's buffer. See the module docs for the bulk-scanning
    /// skip classes.
    pub fn feed(&mut self, bytes: &[u8], sink: &mut impl FnMut(Tag<'_>) -> bool) -> bool {
        let len = bytes.len();
        let mut i = 0usize;
        // Name bytes of the current tag found in *this* chunk and not yet
        // copied out: the pending name is `self.name ++ bytes[span.0..span.1]`.
        // Flushed into the buffer if the chunk ends before the tag does.
        let mut span = (0usize, 0usize);
        'chunk: while i < len {
            match self.state {
                State::Text => {
                    // Hot path: parse whole tags inline, looping locally
                    // for as long as the scanner stays between tags.
                    // Bouncing through the outer state dispatch between
                    // `<`, the name and the `>` costs a hard-to-predict
                    // indirect branch per step on tag-dense input; the
                    // fused path keeps the state implicit in straight-line
                    // code, re-enters the outer dispatch only for rare
                    // constructs, and writes `self.state` only when a tag
                    // is cut off by the chunk boundary.
                    while i < len {
                        if bytes[i] != b'<' {
                            match memchr(b'<', &bytes[i..]) {
                                Some(k) => i += k,
                                None => {
                                    i = len;
                                    break;
                                }
                            }
                        }
                        i += 1; // consume the '<'
                        if i == len {
                            self.state = State::Lt;
                            break 'chunk;
                        }
                        let b = bytes[i];
                        if is_name_byte(b) {
                            // `<name…` — a start tag: scan the name and
                            // dispatch on the terminator byte the scan
                            // already holds. The buffer is necessarily
                            // empty in `Text` (every emit clears it), so
                            // there is nothing to reset.
                            debug_assert!(self.name.is_empty());
                            let start = i;
                            let (end, t) = scan_name_tail(bytes, i + 1);
                            i = end;
                            if i - start > self.name_limit {
                                if !Self::emit_error(&mut self.name, &mut span, NAME_TOO_LONG, sink)
                                {
                                    return false;
                                }
                                continue;
                            }
                            if i == len {
                                // The tag straddles the chunk: bank the name.
                                self.name.extend_from_slice(&bytes[start..i]);
                                self.state = State::OpenName;
                                break 'chunk;
                            }
                            i += 1; // consume the terminator
                            match t {
                                b'>' => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Open, sink)
                                    {
                                        return false;
                                    }
                                }
                                b'/' => {
                                    span = (start, i - 1);
                                    self.state = State::Attrs {
                                        quote: Quote::None,
                                        slash: true,
                                    };
                                    break;
                                }
                                _ if t.is_ascii_whitespace() => {
                                    span = (start, i - 1);
                                    self.state = State::Attrs {
                                        quote: Quote::None,
                                        slash: false,
                                    };
                                    break;
                                }
                                b'<' => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "'<' inside a tag",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                                _ => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "malformed start tag",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                            }
                        } else if b == b'/' {
                            // `</name…` — an end tag.
                            debug_assert!(self.name.is_empty());
                            i += 1;
                            if i == len {
                                self.state = State::CloseName;
                                break 'chunk;
                            }
                            let start = i;
                            let (end, t) = scan_name_tail(bytes, i);
                            i = end;
                            if i - start > self.name_limit {
                                if !Self::emit_error(&mut self.name, &mut span, NAME_TOO_LONG, sink)
                                {
                                    return false;
                                }
                                continue;
                            }
                            if i == len {
                                self.name.extend_from_slice(&bytes[start..i]);
                                self.state = State::CloseName;
                                break 'chunk;
                            }
                            i += 1; // consume the terminator
                            match t {
                                b'>' if i - 1 == start => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "end tag '</>' has no name",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                                b'>' => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Close, sink)
                                    {
                                        return false;
                                    }
                                }
                                _ if t.is_ascii_whitespace() && i - 1 == start => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "end tag '</ ' has no name",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                                _ if t.is_ascii_whitespace() => {
                                    span = (start, i - 1);
                                    self.state = State::CloseEnd;
                                    break;
                                }
                                _ => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "malformed end tag",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                            }
                        } else {
                            i += 1;
                            match b {
                                b'!' => {
                                    self.state = State::Bang;
                                    break;
                                }
                                b'?' => {
                                    self.state = State::Pi { qm: false };
                                    break;
                                }
                                b'>' => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "empty tag '<>'",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                                _ => {
                                    if !Self::emit_error(
                                        &mut self.name,
                                        &mut span,
                                        "stray '<' is not followed by a tag name",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                }
                State::Lt => {
                    let b = bytes[i];
                    i += 1;
                    match b {
                        b'/' => {
                            self.name.clear();
                            self.state = State::CloseName;
                        }
                        b'!' => self.state = State::Bang,
                        b'?' => self.state = State::Pi { qm: false },
                        b'>' => {
                            self.state = State::Text;
                            if !Self::emit_error(&mut self.name, &mut span, "empty tag '<>'", sink)
                            {
                                return false;
                            }
                        }
                        _ if is_name_byte(b) => {
                            self.name.clear();
                            span = (i - 1, i);
                            self.state = State::OpenName;
                        }
                        _ => {
                            self.state = State::Text;
                            if !Self::emit_error(
                                &mut self.name,
                                &mut span,
                                "stray '<' is not followed by a tag name",
                                sink,
                            ) {
                                return false;
                            }
                        }
                    }
                }
                State::OpenName | State::CloseName => {
                    let closing = self.state == State::CloseName;
                    let start = i;
                    let (end, b) = scan_name_tail(bytes, i);
                    i = end;
                    if span.1 == span.0 {
                        span = (start, i);
                    } else {
                        debug_assert_eq!(span.1, start, "name runs are contiguous in a chunk");
                        span.1 = i;
                    }
                    if self.name.len() + (span.1 - span.0) > self.name_limit {
                        self.state = State::Text;
                        if !Self::emit_error(&mut self.name, &mut span, NAME_TOO_LONG, sink) {
                            return false;
                        }
                        continue;
                    }
                    if i == len {
                        break; // chunk ended mid-name; the span is flushed below
                    }
                    let empty = self.name.is_empty() && span.1 == span.0;
                    i += 1; // consume the terminator
                    let error = if closing {
                        match b {
                            b'>' if empty => Some("end tag '</>' has no name"),
                            b'>' => {
                                self.state = State::Text;
                                if !Self::emit_finish(
                                    &mut self.name,
                                    bytes,
                                    &mut span,
                                    Finish::Close,
                                    sink,
                                ) {
                                    return false;
                                }
                                None
                            }
                            _ if b.is_ascii_whitespace() && empty => {
                                Some("end tag '</ ' has no name")
                            }
                            _ if b.is_ascii_whitespace() => {
                                self.state = State::CloseEnd;
                                None
                            }
                            _ => Some("malformed end tag"),
                        }
                    } else {
                        match b {
                            b'>' => {
                                self.state = State::Text;
                                if !Self::emit_finish(
                                    &mut self.name,
                                    bytes,
                                    &mut span,
                                    Finish::Open,
                                    sink,
                                ) {
                                    return false;
                                }
                                None
                            }
                            b'/' => {
                                self.state = State::Attrs {
                                    quote: Quote::None,
                                    slash: true,
                                };
                                None
                            }
                            _ if b.is_ascii_whitespace() => {
                                self.state = State::Attrs {
                                    quote: Quote::None,
                                    slash: false,
                                };
                                None
                            }
                            b'<' => Some("'<' inside a tag"),
                            _ => Some("malformed start tag"),
                        }
                    };
                    if let Some(message) = error {
                        self.state = State::Text;
                        if !Self::emit_error(&mut self.name, &mut span, message, sink) {
                            return false;
                        }
                    }
                }
                State::Attrs {
                    quote: Quote::None,
                    slash,
                } => {
                    let rest = &bytes[i..];
                    let stop = memchr3(b'>', b'\'', b'"', rest);
                    let limit = stop.unwrap_or(rest.len());
                    if let Some(k) = memchr(b'<', &rest[..limit]) {
                        i += k + 1;
                        self.state = State::Text;
                        if !Self::emit_error(&mut self.name, &mut span, "'<' inside a tag", sink) {
                            return false;
                        }
                        continue;
                    }
                    match stop {
                        Some(k) => {
                            // `/` only matters directly before the `>`: every
                            // other skipped byte resets the slash flag anyway.
                            let slash_now = if k == 0 { slash } else { rest[k - 1] == b'/' };
                            let b = rest[k];
                            i += k + 1;
                            match b {
                                b'>' => {
                                    self.state = State::Text;
                                    let kind = if slash_now {
                                        Finish::OpenClose
                                    } else {
                                        Finish::Open
                                    };
                                    if !Self::emit_finish(
                                        &mut self.name,
                                        bytes,
                                        &mut span,
                                        kind,
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                                b'\'' => {
                                    self.state = State::Attrs {
                                        quote: Quote::Single,
                                        slash: false,
                                    };
                                }
                                _ => {
                                    self.state = State::Attrs {
                                        quote: Quote::Double,
                                        slash: false,
                                    };
                                }
                            }
                        }
                        None => {
                            self.state = State::Attrs {
                                quote: Quote::None,
                                slash: rest.last() == Some(&b'/'),
                            };
                            i = len;
                        }
                    }
                }
                State::Attrs { quote, .. } => {
                    let needle = if quote == Quote::Single { b'\'' } else { b'"' };
                    match memchr(needle, &bytes[i..]) {
                        Some(k) => {
                            i += k + 1;
                            self.state = State::Attrs {
                                quote: Quote::None,
                                slash: false,
                            };
                        }
                        None => i = len,
                    }
                }
                State::CloseEnd => {
                    while i < len && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    let b = bytes[i];
                    i += 1;
                    if b == b'>' {
                        self.state = State::Text;
                        if !Self::emit_finish(&mut self.name, bytes, &mut span, Finish::Close, sink)
                        {
                            return false;
                        }
                    } else {
                        self.state = State::Text;
                        if !Self::emit_error(
                            &mut self.name,
                            &mut span,
                            "garbage after an end-tag name",
                            sink,
                        ) {
                            return false;
                        }
                    }
                }
                State::Bang => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::BangDash,
                        b'[' => State::CdataPrefix { matched: 0 },
                        b'>' => State::Text,
                        _ => State::Doctype {
                            depth: 0,
                            quote: Quote::None,
                        },
                    };
                }
                State::BangDash => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::Comment { dashes: 0 },
                        b'>' => State::Text,
                        _ => State::Doctype {
                            depth: 0,
                            quote: Quote::None,
                        },
                    };
                }
                State::CdataPrefix { matched } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = if b == CDATA_PREFIX[matched as usize] {
                        if matched as usize + 1 == CDATA_PREFIX.len() {
                            State::Cdata { brackets: 0 }
                        } else {
                            State::CdataPrefix {
                                matched: matched + 1,
                            }
                        }
                    } else {
                        // Not a CDATA section after all (`<![INCLUDE[` …):
                        // treat it as a doctype-ish marked section. The `[`
                        // already consumed opened one nesting level.
                        let depth = match b {
                            b']' => 0,
                            b'[' => 2,
                            _ => 1,
                        };
                        State::Doctype {
                            depth,
                            quote: match b {
                                b'\'' => Quote::Single,
                                b'"' => Quote::Double,
                                _ => Quote::None,
                            },
                        }
                    };
                }
                State::Cdata { brackets: 0 } => match memchr(b']', &bytes[i..]) {
                    Some(k) => {
                        i += k + 1;
                        self.state = State::Cdata { brackets: 1 };
                    }
                    None => i = len,
                },
                State::Cdata { brackets } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b']' => State::Cdata {
                            brackets: (brackets + 1).min(2),
                        },
                        b'>' if brackets >= 2 => State::Text,
                        _ => State::Cdata { brackets: 0 },
                    };
                }
                State::Comment { dashes: 0 } => match memchr(b'-', &bytes[i..]) {
                    Some(k) => {
                        i += k + 1;
                        self.state = State::Comment { dashes: 1 };
                    }
                    None => i = len,
                },
                State::Comment { dashes } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::Comment {
                            dashes: (dashes + 1).min(2),
                        },
                        b'>' if dashes >= 2 => State::Text,
                        _ => State::Comment { dashes: 0 },
                    };
                }
                State::Doctype {
                    depth,
                    quote: Quote::None,
                } => {
                    let rest = &bytes[i..];
                    match min_hit(memchr3(b'\'', b'"', b'>', rest), memchr2(b'[', b']', rest)) {
                        Some(k) => {
                            let b = rest[k];
                            i += k + 1;
                            self.state = match b {
                                b'\'' => State::Doctype {
                                    depth,
                                    quote: Quote::Single,
                                },
                                b'"' => State::Doctype {
                                    depth,
                                    quote: Quote::Double,
                                },
                                b'[' => State::Doctype {
                                    depth: depth.saturating_add(1),
                                    quote: Quote::None,
                                },
                                b']' => State::Doctype {
                                    depth: depth.saturating_sub(1),
                                    quote: Quote::None,
                                },
                                _ if depth == 0 => State::Text,
                                _ => State::Doctype {
                                    depth,
                                    quote: Quote::None,
                                },
                            };
                        }
                        None => i = len,
                    }
                }
                State::Doctype { depth, quote } => {
                    // Inside a system/public literal everything is inert
                    // until the matching quote — literals legally contain
                    // `>`, `[` and `]`.
                    let needle = if quote == Quote::Single { b'\'' } else { b'"' };
                    match memchr(needle, &bytes[i..]) {
                        Some(k) => {
                            i += k + 1;
                            self.state = State::Doctype {
                                depth,
                                quote: Quote::None,
                            };
                        }
                        None => i = len,
                    }
                }
                State::Pi { qm: false } => match memchr(b'?', &bytes[i..]) {
                    Some(k) => {
                        i += k + 1;
                        self.state = State::Pi { qm: true };
                    }
                    None => i = len,
                },
                State::Pi { .. } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'?' => State::Pi { qm: true },
                        b'>' => State::Text,
                        _ => State::Pi { qm: false },
                    };
                }
            }
        }
        // The chunk ended with a tag still open: bank the borrowed name
        // bytes so the next chunk can continue them. The cap check above
        // ran before any `break`, so the buffer stays bounded.
        if span.1 > span.0 {
            self.name.extend_from_slice(&bytes[span.0..span.1]);
        }
        true
    }

    /// Resolves the pending name — buffered bytes plus the borrowed span —
    /// and emits the finished tag. Single-chunk names are borrowed straight
    /// out of `bytes`; only straddling names touch the buffer. Outlined:
    /// every call site inlines the sink (the whole validation path), and
    /// only resumption states reach this — keeping one copy keeps the hot
    /// fused path's code small.
    #[inline(never)]
    fn emit_finish(
        name: &mut Vec<u8>,
        bytes: &[u8],
        span: &mut (usize, usize),
        kind: Finish,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        let borrowed = &bytes[span.0..span.1];
        let name_bytes: &[u8] = if name.is_empty() {
            borrowed
        } else {
            name.extend_from_slice(borrowed);
            name.as_slice()
        };
        let keep_going = sink(match kind {
            Finish::Open => Tag::Open(name_bytes),
            Finish::OpenClose => Tag::OpenClose(name_bytes),
            Finish::Close => Tag::Close(name_bytes),
        });
        name.clear();
        *span = (0, 0);
        keep_going
    }

    /// Emits a tag whose name lies entirely inside the current chunk — the
    /// fused fast path's borrow-only emission (the name buffer is known
    /// empty and the span untouched, so there is nothing to reset).
    #[inline]
    fn emit_direct(
        name_bytes: &[u8],
        kind: Finish,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        sink(match kind {
            Finish::Open => Tag::Open(name_bytes),
            Finish::OpenClose => Tag::OpenClose(name_bytes),
            Finish::Close => Tag::Close(name_bytes),
        })
    }

    /// Emits a [`Tag::Error`], discarding any pending name. Malformed
    /// markup is never the hot path, and each of the many call sites would
    /// inline the sink — outline them all into this one cold copy.
    #[cold]
    #[inline(never)]
    fn emit_error(
        name: &mut Vec<u8>,
        span: &mut (usize, usize),
        message: &'static str,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        name.clear();
        *span = (0, 0);
        sink(Tag::Error(message))
    }

    /// The original byte-at-a-time scanner, kept verbatim (plus the shared
    /// name cap) as the reference oracle: `tests/tokenizer_equivalence.rs`
    /// property-checks [`Tokenizer::feed`] against it over random documents
    /// and every chunk split, and the E14 benchmark reports the bulk
    /// scanner's speedup relative to it. Semantics are identical; only the
    /// scanning strategy differs.
    #[doc(hidden)]
    pub fn feed_scalar(&mut self, bytes: &[u8], sink: &mut impl FnMut(Tag<'_>) -> bool) -> bool {
        for &b in bytes {
            let mut emit: Option<Tag<'static>> = None;
            // Set when the byte completes a tag whose name sits in the
            // buffer (resolved to UTF-8 outside the match, so the borrow of
            // `self.name` does not overlap `self.state`).
            let mut finish: Option<Finish> = None;
            self.state = match self.state {
                State::Text => match b {
                    b'<' => State::Lt,
                    _ => State::Text,
                },
                State::Lt => match b {
                    b'/' => {
                        self.name.clear();
                        State::CloseName
                    }
                    b'!' => State::Bang,
                    b'?' => State::Pi { qm: false },
                    b'>' => {
                        emit = Some(Tag::Error("empty tag '<>'"));
                        State::Text
                    }
                    _ if is_name_byte(b) => {
                        self.name.clear();
                        self.name.push(b);
                        State::OpenName
                    }
                    _ => {
                        emit = Some(Tag::Error("stray '<' is not followed by a tag name"));
                        State::Text
                    }
                },
                State::OpenName => match b {
                    b'>' => {
                        finish = Some(Finish::Open);
                        State::Text
                    }
                    b'/' => State::Attrs {
                        quote: Quote::None,
                        slash: true,
                    },
                    _ if b.is_ascii_whitespace() => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                    b'<' => {
                        emit = Some(Tag::Error("'<' inside a tag"));
                        State::Text
                    }
                    _ if is_name_byte(b) => {
                        if self.name.len() >= self.name_limit {
                            emit = Some(Tag::Error(NAME_TOO_LONG));
                            State::Text
                        } else {
                            self.name.push(b);
                            State::OpenName
                        }
                    }
                    _ => {
                        emit = Some(Tag::Error("malformed start tag"));
                        State::Text
                    }
                },
                State::Attrs { quote, slash } => match (quote, b) {
                    (Quote::Single, b'\'') | (Quote::Double, b'"') => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                    (Quote::Single, _) | (Quote::Double, _) => State::Attrs { quote, slash },
                    (Quote::None, b'>') => {
                        finish = Some(if slash {
                            Finish::OpenClose
                        } else {
                            Finish::Open
                        });
                        State::Text
                    }
                    (Quote::None, b'/') => State::Attrs {
                        quote: Quote::None,
                        slash: true,
                    },
                    (Quote::None, b'\'') => State::Attrs {
                        quote: Quote::Single,
                        slash: false,
                    },
                    (Quote::None, b'"') => State::Attrs {
                        quote: Quote::Double,
                        slash: false,
                    },
                    (Quote::None, b'<') => {
                        emit = Some(Tag::Error("'<' inside a tag"));
                        State::Text
                    }
                    (Quote::None, _) => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                },
                State::CloseName => match b {
                    b'>' if self.name.is_empty() => {
                        emit = Some(Tag::Error("end tag '</>' has no name"));
                        State::Text
                    }
                    b'>' => {
                        finish = Some(Finish::Close);
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() && self.name.is_empty() => {
                        emit = Some(Tag::Error("end tag '</ ' has no name"));
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() => State::CloseEnd,
                    _ if is_name_byte(b) => {
                        if self.name.len() >= self.name_limit {
                            emit = Some(Tag::Error(NAME_TOO_LONG));
                            State::Text
                        } else {
                            self.name.push(b);
                            State::CloseName
                        }
                    }
                    _ => {
                        emit = Some(Tag::Error("malformed end tag"));
                        State::Text
                    }
                },
                State::CloseEnd => match b {
                    b'>' => {
                        finish = Some(Finish::Close);
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() => State::CloseEnd,
                    _ => {
                        emit = Some(Tag::Error("garbage after an end-tag name"));
                        State::Text
                    }
                },
                State::Bang => match b {
                    b'-' => State::BangDash,
                    b'[' => State::CdataPrefix { matched: 0 },
                    b'>' => State::Text,
                    _ => State::Doctype {
                        depth: 0,
                        quote: Quote::None,
                    },
                },
                State::BangDash => match b {
                    b'-' => State::Comment { dashes: 0 },
                    b'>' => State::Text,
                    _ => State::Doctype {
                        depth: 0,
                        quote: Quote::None,
                    },
                },
                State::CdataPrefix { matched } => {
                    if b == CDATA_PREFIX[matched as usize] {
                        if matched as usize + 1 == CDATA_PREFIX.len() {
                            State::Cdata { brackets: 0 }
                        } else {
                            State::CdataPrefix {
                                matched: matched + 1,
                            }
                        }
                    } else {
                        let depth = match b {
                            b']' => 0,
                            b'[' => 2,
                            _ => 1,
                        };
                        State::Doctype {
                            depth,
                            quote: match b {
                                b'\'' => Quote::Single,
                                b'"' => Quote::Double,
                                _ => Quote::None,
                            },
                        }
                    }
                }
                State::Cdata { brackets } => match b {
                    b']' => State::Cdata {
                        brackets: (brackets + 1).min(2),
                    },
                    b'>' if brackets >= 2 => State::Text,
                    _ => State::Cdata { brackets: 0 },
                },
                State::Comment { dashes } => match b {
                    b'-' => State::Comment {
                        dashes: (dashes + 1).min(2),
                    },
                    b'>' if dashes >= 2 => State::Text,
                    _ => State::Comment { dashes: 0 },
                },
                State::Doctype { depth, quote } => match (quote, b) {
                    (Quote::Single, b'\'') | (Quote::Double, b'"') => State::Doctype {
                        depth,
                        quote: Quote::None,
                    },
                    (Quote::Single, _) | (Quote::Double, _) => State::Doctype { depth, quote },
                    (Quote::None, b'\'') => State::Doctype {
                        depth,
                        quote: Quote::Single,
                    },
                    (Quote::None, b'"') => State::Doctype {
                        depth,
                        quote: Quote::Double,
                    },
                    (Quote::None, b'[') => State::Doctype {
                        depth: depth.saturating_add(1),
                        quote: Quote::None,
                    },
                    (Quote::None, b']') => State::Doctype {
                        depth: depth.saturating_sub(1),
                        quote: Quote::None,
                    },
                    (Quote::None, b'>') if depth == 0 => State::Text,
                    (Quote::None, _) => State::Doctype {
                        depth,
                        quote: Quote::None,
                    },
                },
                State::Pi { qm } => match b {
                    b'?' => State::Pi { qm: true },
                    b'>' if qm => State::Text,
                    _ => State::Pi { qm: false },
                },
            };
            if let Some(kind) = finish {
                let keep_going = sink(match kind {
                    Finish::Open => Tag::Open(&self.name),
                    Finish::OpenClose => Tag::OpenClose(&self.name),
                    Finish::Close => Tag::Close(&self.name),
                });
                self.name.clear();
                if !keep_going {
                    return false;
                }
            } else if let Some(tag) = emit {
                self.name.clear();
                if !sink(tag) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects the tags of a byte stream, splitting it into chunks of
    /// `chunk` bytes (0 = one chunk); `scalar` selects the oracle scanner.
    fn scan_with(input: &[u8], chunk: usize, scalar: bool) -> Vec<String> {
        let mut t = Tokenizer::default();
        let mut out = Vec::new();
        let mut push = |tag: Tag<'_>| {
            out.push(match tag {
                Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
                Tag::OpenClose(n) => format!("<{}/>", String::from_utf8_lossy(n)),
                Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
                Tag::Error(e) => format!("!{e}"),
            });
            true
        };
        let parts: Vec<&[u8]> = if chunk == 0 {
            vec![input]
        } else {
            input.chunks(chunk).collect()
        };
        for part in parts {
            if scalar {
                assert!(t.feed_scalar(part, &mut push));
            } else {
                assert!(t.feed(part, &mut push));
            }
        }
        out
    }

    /// Scans with the bulk scanner, asserting the scalar oracle agrees at
    /// the same chunking and that the scanner ends between constructs.
    fn scan(input: &str, chunk: usize) -> Vec<String> {
        let bulk = scan_with(input.as_bytes(), chunk, false);
        let scalar = scan_with(input.as_bytes(), chunk, true);
        assert_eq!(bulk, scalar, "bulk and scalar scanners disagree");
        let mut t = Tokenizer::default();
        assert!(t.feed(input.as_bytes(), &mut |_| true));
        assert!(t.is_idle(), "scanner left inside a construct");
        bulk
    }

    #[test]
    fn plain_tags_and_text() {
        assert_eq!(scan("<a>text<b/>more</a>", 0), vec!["<a>", "<b/>", "</a>"]);
    }

    #[test]
    fn attributes_with_tricky_quotes() {
        assert_eq!(
            scan(r#"<a href="x>y" title='a/b'><b checked/></a>"#, 0),
            vec!["<a>", "<b/>", "</a>"]
        );
    }

    #[test]
    fn comments_cdata_pi_doctype_are_skipped() {
        let input = "<?xml version=\"1.0\"?>\
                     <!DOCTYPE doc [ <!ELEMENT doc (a)*> ]>\
                     <doc><!-- a > b --><a/><![CDATA[ <not-a-tag> ]]></doc>";
        assert_eq!(scan(input, 0), vec!["<doc>", "<a/>", "</doc>"]);
    }

    #[test]
    fn doctype_literals_may_contain_markup_characters() {
        // SystemLiteral legally contains '>' and '<'; quote tracking keeps
        // the doctype from terminating early.
        let input = "<!DOCTYPE doc SYSTEM \"x>y<z\" [ <!ENTITY e '>]'> ]><doc><a/></doc>";
        assert_eq!(scan(input, 0), vec!["<doc>", "<a/>", "</doc>"]);
        for chunk in 1..input.len() {
            assert_eq!(
                scan(input, chunk),
                vec!["<doc>", "<a/>", "</doc>"],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn every_chunk_size_agrees() {
        let input = "<?pi data?><doc attr=\"v>\"><!--c--><a x='1'/>t<b></b><![CDATA[]]]>]]></doc>";
        let whole = scan(input, 0);
        for chunk in 1..input.len() {
            assert_eq!(scan(input, chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn malformed_markup_is_reported() {
        assert_eq!(scan("<>", 0), vec!["!empty tag '<>'"]);
        assert_eq!(scan("</>", 0), vec!["!end tag '</>' has no name"]);
        assert_eq!(scan("<a=b>", 0)[0], "!malformed start tag");
        assert_eq!(
            scan("< a>", 0)[0],
            "!stray '<' is not followed by a tag name"
        );
        assert_eq!(scan("</a b>", 0)[0], "!garbage after an end-tag name");
    }

    #[test]
    fn idle_only_between_constructs() {
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<partial-na", &mut |_| true));
        assert!(!t.is_idle());
        assert!(t.feed(b"me>", &mut |tag| {
            assert_eq!(tag, Tag::Open(b"partial-name"));
            true
        }));
        assert!(t.is_idle());
        t.reset();
        assert!(t.is_idle());
    }

    #[test]
    fn sink_can_stop_the_scan() {
        let mut t = Tokenizer::default();
        let mut seen = 0;
        assert!(!t.feed(b"<a><b><c>", &mut |_| {
            seen += 1;
            false
        }));
        assert_eq!(seen, 1);
    }

    #[test]
    fn single_chunk_names_are_borrowed_not_buffered() {
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<alpha><beta attr='v'/></alpha>", &mut |_| true));
        // Completed-in-chunk names never touch the buffer.
        assert_eq!(t.name.capacity(), 0);
        // A straddling name does, and the flush covers exactly the name.
        assert!(t.feed(b"<gam", &mut |_| true));
        assert_eq!(t.name, b"gam");
    }

    #[test]
    fn over_long_names_are_capped_with_a_bounded_buffer() {
        let hostile = vec![b'a'; 10 * Tokenizer::MAX_NAME_LEN];
        for chunk in [0usize, 1, 7, 4096, 10_000] {
            let mut input = b"<x><".to_vec();
            input.extend_from_slice(&hostile);
            input.extend_from_slice(b" y='z'><x/>");
            let got = scan_with(&input, chunk, false);
            assert_eq!(got, scan_with(&input, chunk, true), "chunk {chunk}");
            // The one real tag, one error for the hostile name, and the
            // trailing `<x/>` recovered as markup again.
            assert_eq!(
                got,
                vec![
                    "<x>".to_owned(),
                    format!("!{NAME_TOO_LONG}"),
                    "<x/>".to_owned()
                ],
                "chunk {chunk}"
            );
        }
        // The buffer a hostile stream can pin stays bounded by the cap, not
        // the stream length.
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<", &mut |_| true));
        for chunk in hostile.chunks(977) {
            assert!(t.feed(chunk, &mut |tag| {
                assert_eq!(tag, Tag::Error(NAME_TOO_LONG));
                true
            }));
        }
        assert!(
            t.name.capacity() <= 2 * Tokenizer::MAX_NAME_LEN,
            "name buffer grew past the cap: {}",
            t.name.capacity()
        );
    }
}
