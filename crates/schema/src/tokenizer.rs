//! A bulk-scanning streaming XML tokenizer: raw bytes in, markup events out.
//!
//! [`ValidationService::feed_bytes`] lets callers pipe socket buffers
//! straight into validation; this module is the state machine behind it. It
//! turns tag soup into open/attribute/text/close events and **tolerates
//! chunk boundaries anywhere** — mid-name, mid-value, mid-entity,
//! mid-comment — by keeping the whole scanner state (plus the bytes of any
//! partial name/value) in the [`Tokenizer`] value between `feed` calls.
//!
//! # Bulk scanning
//!
//! Every scanner state is either a *skip class* — "consume bytes until one
//! of a few interesting delimiters" — or a short discriminator (`<!-`,
//! `CDATA[`, an entity reference) handled byte by byte. [`Tokenizer::feed`]
//! therefore does not run a per-byte `match`: each skip-class state consumes
//! its whole run with one [`redet_core::bytescan`] SWAR search (eight bytes
//! per step) and only the delimiter byte itself pays the state dispatch:
//!
//! * character data runs to the next `<` or `&` and is emitted as
//!   [`Tag::Text`] segments, **borrowed straight out of the chunk** unless
//!   an entity had to be decoded into the text buffer;
//! * attribute values run to their closing quote (or `&`/`<`) and are
//!   likewise borrowed when no entity intervenes;
//! * comments skip to the next `-`, CDATA sections scan to the next `]`
//!   (their content is text), processing instructions to the next `?`,
//!   doctype internals to the next quote/bracket/`>`;
//! * tag and attribute names run to the next non-name byte and are borrowed
//!   out of the chunk — the buffers are written only when a construct
//!   actually straddles a chunk boundary, so a warmed tokenizer feeding
//!   whole documents never copies at all.
//!
//! The per-byte scalar scanner is retained as [`Tokenizer::feed_scalar`] —
//! the reference oracle the equivalence suite and the E14 benchmark compare
//! the bulk scanner against. Both scanners bound every buffer: names by
//! [`Tokenizer::MAX_NAME_LEN`] (configurable via
//! [`Tokenizer::set_name_limit`], the `ServiceLimits` hook), attribute
//! values by [`Tokenizer::MAX_VALUE_LEN`], entity references by a few
//! bytes, and pending text is flushed as a [`Tag::Text`] segment at every
//! chunk edge instead of accumulating — a hostile stream can never pin an
//! unbounded buffer.
//!
//! # What the grammar accepts
//!
//! * start tags `<name a='v' b="w" flag>` emit [`Tag::Open`] at the end of
//!   the name, one [`Tag::Attr`] per attribute (valueless attributes carry
//!   an empty value), and — for `<name …/>` — a final [`Tag::SelfClose`];
//! * end tags `</name>` emit [`Tag::Close`];
//! * character data and CDATA content emit [`Tag::Text`] segments; a
//!   logical run may arrive as several segments (around entities, CDATA
//!   edges and chunk edges) but segments are never reordered, so
//!   concatenation is chunking-invariant;
//! * the five predefined entities (`&amp; &lt; &gt; &quot; &apos;`) and
//!   character references (`&#65;`, `&#x1F600;`) are decoded in text and in
//!   attribute values; unknown entities, malformed character references and
//!   unterminated references are [`Tag::Error`]s the service maps to
//!   `Code::UnknownEntity`;
//! * comments (`<!-- … -->`), processing instructions (`<?…?>`) and
//!   doctype-ish `<!…>` constructs (with `[…]` internal-subset nesting and
//!   quoted literals) are consumed and ignored;
//! * anything unparsable (stray `<`, `<>`, `</>`, an unquoted or
//!   `<`-containing attribute value, garbage between `/` and `>`, an
//!   over-long name or value) is reported as a [`Tag::Error`]. Names and
//!   values are handed to the sink as **raw bytes** — see [`Tag`] for why
//!   UTF-8 validation is deliberately the consumer's job.
//!
//! Compared to the attribute-*skipping* grammar this tokenizer grew out of,
//! three soups are now rejected instead of silently accepted: unquoted
//! attribute values (`<a x=1>`), whitespace between `/` and `>` in a
//! self-closing tag (`<a / >`), and a raw `<` inside a quoted value. Each
//! is malformed XML, and each would otherwise make attribute events
//! ambiguous.
//!
//! No byte is ever buffered except a chunk-straddling partial name/value
//! and entity-decoded content, so a warmed tokenizer feeds without
//! allocating.
//!
//! [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
//! [`Code::MalformedMarkup`]: redet_core::Code::MalformedMarkup

use redet_core::bytescan::{memchr, memchr2, memchr3, memchr_mask_zero, splat, zero_byte_markers};

/// One markup event produced by the tokenizer.
///
/// Names, values and text are the **raw bytes** of the stream, not `&str`:
/// the tokenizer never UTF-8-validates them, so the hot path pays no
/// per-event `from_utf8` walk. A consumer resolving names against a schema
/// gets UTF-8 for free on a hit (schema names are strings — byte equality
/// implies validity) and only needs to validate on the unknown-name cold
/// path, which is exactly what [`ValidationService::feed_bytes`] does.
///
/// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
#[derive(Debug, PartialEq, Eq)]
pub enum Tag<'a> {
    /// A start tag's name: `<name`. Emitted as soon as the name ends;
    /// the tag's attributes (if any) follow as [`Tag::Attr`] events.
    Open(&'a [u8]),
    /// One attribute of the most recent [`Tag::Open`]. The value has its
    /// entity references decoded; a valueless attribute (`<input checked>`)
    /// carries an empty value.
    Attr {
        /// The attribute's name bytes.
        name: &'a [u8],
        /// The attribute's decoded value bytes.
        value: &'a [u8],
    },
    /// The `/>` ending a self-closing tag: close the element opened by the
    /// most recent [`Tag::Open`]. Nameless — the name was already emitted,
    /// and the innermost open element is the only one `/>` can close.
    SelfClose,
    /// An end tag `</name>`. The service checks the name against the
    /// innermost open element (the tokenizer itself does no matching).
    Close(&'a [u8]),
    /// A segment of character data (including CDATA content), with entity
    /// references decoded. A logical text run may be split into several
    /// segments — around entities, CDATA boundaries and chunk boundaries —
    /// but never reordered: concatenating consecutive segments yields the
    /// same bytes under every chunking.
    Text(&'a [u8]),
    /// Markup the grammar cannot parse.
    Error(&'static str),
}

/// Which quote character delimits the current literal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Quote {
    #[default]
    None,
    Single,
    Double,
}

/// The scanner position. Everything is `Copy` plain data; together with the
/// partial name/value/text/entity buffers it is the *entire* cross-chunk
/// state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum State {
    /// Character data between tags. Skip class: `<`, `&`.
    #[default]
    Text,
    /// Inside `&…;` in character data; the reference's content accumulates
    /// in the entity buffer, byte by byte (references are a few bytes).
    Entity,
    /// Just after `<`.
    Lt,
    /// Inside a start-tag name. Skip class: any non-name byte.
    OpenName,
    /// Inside an end-tag name. Skip class: any non-name byte.
    CloseName,
    /// Inside a start tag, between attributes (whitespace run).
    AttrSpace,
    /// Inside an attribute name. Skip class: any non-name byte.
    AttrName,
    /// After a complete attribute name plus whitespace: `=` starts a value,
    /// a name byte means the previous attribute was valueless.
    AttrEq,
    /// After `=`, before the opening quote.
    AttrValueStart,
    /// Inside a quoted attribute value. Skip class: the closing quote, `&`,
    /// `<` (`quote` is never `None` here).
    AttrValue {
        /// The delimiter that closes this value.
        quote: Quote,
    },
    /// Inside `&…;` in an attribute value; decodes into the value buffer.
    AttrEntity {
        /// The delimiter of the enclosing value.
        quote: Quote,
    },
    /// After the `/` of a self-closing tag: only `>` may follow.
    SelfCloseEnd,
    /// After `</name` — only whitespace may precede the `>`.
    CloseEnd,
    /// Just after `<!`, before the construct is identified.
    Bang,
    /// After `<!-`, expecting the second `-` of a comment opener.
    BangDash,
    /// Matching the `CDATA[` discriminator after `<![`, byte by byte.
    CdataPrefix {
        /// How many prefix bytes have matched.
        matched: u8,
    },
    /// Inside `<![CDATA[ … ]]>`; `brackets` counts trailing `]`s seen
    /// (pending — they are content unless `]]>` completes). Skip class
    /// (at `brackets == 0`): `]`.
    Cdata {
        /// Trailing `]`s not yet known to be content or terminator.
        brackets: u8,
    },
    /// Inside `<!-- … -->`; `dashes` counts trailing `-`s seen. Skip class
    /// (at `dashes == 0`): `-`.
    Comment {
        /// Trailing `-`s seen.
        dashes: u8,
    },
    /// Inside a doctype-ish `<!…>` construct; `depth` tracks `[…]` nesting
    /// (internal subsets contain `>`s of their own) and `quote` an open
    /// system/public literal (which may legally contain `>`, `[`, `]`).
    /// Skip class: quotes, brackets and `>` (just the closing quote inside
    /// a literal).
    Doctype {
        /// `[…]` nesting depth.
        depth: u8,
        /// The literal delimiter currently open, if any.
        quote: Quote,
    },
    /// Inside `<?…?>`; `qm` is set when the previous byte was `?`. Skip
    /// class (at `!qm`): `?`.
    Pi {
        /// Whether the previous byte was `?`.
        qm: bool,
    },
}

/// Which named tag the current byte completed; the name sits in the buffer
/// and/or the current chunk.
#[derive(Clone, Copy)]
enum Finish {
    Open,
    Close,
}

const CDATA_PREFIX: &[u8] = b"CDATA[";

/// The [`Tag::Error`] text for an element name longer than the tokenizer's
/// name-length cap ([`Tokenizer::MAX_NAME_LEN`] unless lowered via
/// [`Tokenizer::set_name_limit`]). The service layer recognizes this
/// message and reports it under the `E3xx` resource-governance family.
pub(crate) const NAME_TOO_LONG: &str = "element name exceeds the name-length cap";

/// The [`Tag::Error`] text for an attribute name past the same cap.
pub(crate) const ATTR_TOO_LONG: &str = "attribute name exceeds the name-length cap";

/// The [`Tag::Error`] text for an attribute value past
/// [`Tokenizer::MAX_VALUE_LEN`].
pub(crate) const VALUE_TOO_LONG: &str = "attribute value exceeds the value-length cap";

/// The [`Tag::Error`] text for an entity reference that is neither a
/// predefined entity nor a character reference.
pub(crate) const UNKNOWN_ENTITY: &str = "unknown entity reference";

/// The [`Tag::Error`] text for a character reference that does not denote
/// a Unicode scalar value.
pub(crate) const BAD_CHAR_REF: &str = "invalid character reference";

/// The [`Tag::Error`] text for an `&` whose reference never reaches `;`.
pub(crate) const ENTITY_UNTERMINATED: &str = "entity reference is missing ';'";

/// Whether a [`Tag::Error`] message is one of the entity-reference errors
/// (the service maps these to `Code::UnknownEntity`).
pub(crate) fn is_entity_error(message: &str) -> bool {
    message == UNKNOWN_ENTITY || message == BAD_CHAR_REF || message == ENTITY_UNTERMINATED
}

/// Bytes allowed in element and attribute names, precomputed so the name
/// run loop is one indexed load per byte. Deliberately permissive (tag
/// soup): any byte that cannot terminate or confuse a tag, including
/// multi-byte UTF-8 sequences, counts as a name byte; real name validation
/// happens against the schema's alphabet.
static NAME_BYTE: [bool; 256] = {
    let mut table = [false; 256];
    let mut b = 0usize;
    while b < 256 {
        table[b] = !((b as u8).is_ascii_whitespace()
            || matches!(
                b as u8,
                b'<' | b'>' | b'/' | b'!' | b'?' | b'=' | b'"' | b'\''
            ));
        b += 1;
    }
    table
};

#[inline]
fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

/// Scans a name run from `i` to its terminating non-name byte, returning
/// the terminator's index and value — `(bytes.len(), _)` when the chunk
/// ends first. Every possible terminator is ASCII below `0x40` and every
/// byte at or above it (letters, multi-byte UTF-8) is unconditionally a
/// name byte, so the scan masks with `0xC0` and only low bytes (digits,
/// `-`, `:`, the real terminators, …) consult the exact table.
///
/// The first arm settles the typical case — the rest of the name plus its
/// terminator inside one word — with a single load, keeping the terminator
/// in a register instead of re-loading it; the loop handles chunk tails,
/// low name bytes and names longer than a word.
#[inline]
fn scan_name_tail(bytes: &[u8], mut i: usize) -> (usize, u8) {
    if i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte window"));
        let z = zero_byte_markers(w & splat(0xC0));
        if z != 0 {
            let k = (z.trailing_zeros() / 8) as usize;
            let t = (w >> (8 * k)) as u8;
            if !is_name_byte(t) {
                return (i + k, t);
            }
        }
    }
    let len = bytes.len();
    let mut t = 0u8;
    while i < len {
        match memchr_mask_zero(0xC0, &bytes[i..]) {
            Some(k) => {
                i += k;
                t = bytes[i];
                if is_name_byte(t) {
                    i += 1;
                } else {
                    break;
                }
            }
            None => i = len,
        }
    }
    (i, t)
}

/// The earlier of two optional scan hits.
#[inline]
fn min_hit(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Decodes one entity reference's content (the bytes between `&` and `;`)
/// into `out`: the five predefined entities plus decimal/hex character
/// references. On failure nothing is written.
fn decode_entity(ent: &[u8], out: &mut Vec<u8>) -> Result<(), &'static str> {
    match ent {
        b"amp" => out.push(b'&'),
        b"lt" => out.push(b'<'),
        b"gt" => out.push(b'>'),
        b"quot" => out.push(b'"'),
        b"apos" => out.push(b'\''),
        [b'#', digits @ ..] => {
            let (radix, digits) = match digits {
                [b'x' | b'X', hex @ ..] => (16, hex),
                dec => (10, dec),
            };
            if digits.is_empty() {
                return Err(BAD_CHAR_REF);
            }
            let mut code: u32 = 0;
            for &d in digits {
                let v = (d as char).to_digit(radix).ok_or(BAD_CHAR_REF)?;
                code = code
                    .checked_mul(radix)
                    .and_then(|c| c.checked_add(v))
                    .ok_or(BAD_CHAR_REF)?;
            }
            let c = char::from_u32(code).ok_or(BAD_CHAR_REF)?;
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
        _ => return Err(UNKNOWN_ENTITY),
    }
    Ok(())
}

/// Byte ranges of the current chunk not yet copied into the tokenizer's
/// buffers: the pending name is `tokenizer.name ++ bytes[name.0..name.1]`,
/// and likewise for the attribute value and the current text segment.
/// Flushed into the buffers (name, value) or emitted (text) if the chunk
/// ends before the construct does.
#[derive(Default)]
struct Spans {
    name: (usize, usize),
    value: (usize, usize),
    text: (usize, usize),
}

/// The streaming scanner; see the module docs. One per in-flight document —
/// chunk boundaries may fall anywhere, so the state must persist between
/// [`Tokenizer::feed`] calls.
///
/// ```
/// use redet_schema::tokenizer::{Tag, Tokenizer};
///
/// let mut events = Vec::new();
/// let mut tokenizer = Tokenizer::default();
/// // Chunk boundaries may fall anywhere — even mid-name or mid-value.
/// for chunk in [&b"<doc id='m&amp;m'><it"[..], &b"em/>ok</doc>"[..]] {
///     tokenizer.feed(chunk, &mut |tag| {
///         events.push(match tag {
///             Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
///             Tag::Attr { name, value } => format!(
///                 "{}={}",
///                 String::from_utf8_lossy(name),
///                 String::from_utf8_lossy(value)
///             ),
///             Tag::SelfClose => "/>".to_owned(),
///             Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
///             Tag::Text(t) => format!("'{}'", String::from_utf8_lossy(t)),
///             Tag::Error(e) => format!("!{e}"),
///         });
///         true
///     });
/// }
/// assert_eq!(
///     events,
///     ["<doc>", "id=m&m", "<item>", "/>", "'ok'", "</doc>"]
/// );
/// assert!(tokenizer.is_idle());
/// ```
#[derive(Debug)]
pub struct Tokenizer {
    state: State,
    /// Bytes of the current element/attribute name when it straddles a
    /// chunk boundary (names completed inside one chunk are borrowed).
    name: Vec<u8>,
    /// Bytes of the current attribute value when it straddles a chunk
    /// boundary or an entity was decoded into it.
    value: Vec<u8>,
    /// Decoded/copied character data: entity expansions and CDATA content.
    /// Flushed as a [`Tag::Text`] segment at every chunk edge, so it never
    /// accumulates across feeds.
    text: Vec<u8>,
    /// The content of the entity reference currently being read.
    ent: Vec<u8>,
    /// The active name-length cap (defaults to [`Tokenizer::MAX_NAME_LEN`]).
    name_limit: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            state: State::Text,
            name: Vec::new(),
            value: Vec::new(),
            text: Vec::new(),
            ent: Vec::new(),
            name_limit: Self::MAX_NAME_LEN,
        }
    }
}

impl Tokenizer {
    /// Default upper bound on an element or attribute name's length in
    /// bytes. A longer "name" (a hostile unterminated-tag stream) is
    /// reported as a [`Tag::Error`] and the rest of the run is treated as
    /// character data, so the partial-name buffer a malicious connection
    /// can pin stays bounded.
    pub const MAX_NAME_LEN: usize = 4096;

    /// Upper bound on an attribute value's length in bytes; a longer value
    /// is reported as a [`Tag::Error`] the service maps to
    /// `Code::ValueLimitExceeded`.
    pub const MAX_VALUE_LEN: usize = 65536;

    /// Upper bound on an entity reference's content — longer than any
    /// predefined entity or valid character reference (`#x10FFFF`).
    const MAX_ENTITY_LEN: usize = 10;

    /// Lowers (or raises) the name-length cap. The cap is clamped to at
    /// least one byte so single-character names always scan; the emission
    /// point — the `(cap + 1)`-th name byte — is identical in the bulk and
    /// scalar scanners under every chunking.
    pub fn set_name_limit(&mut self, limit: usize) {
        self.name_limit = limit.max(1);
    }

    /// The active name-length cap in bytes.
    pub fn name_limit(&self) -> usize {
        self.name_limit
    }

    /// Whether the scanner is between constructs — the end-of-document
    /// well-formedness check (`finish` inside a tag, a CDATA section or an
    /// entity reference is malformed markup).
    pub fn is_idle(&self) -> bool {
        self.state == State::Text
    }

    /// Resets the scanner for the next document, keeping the buffers'
    /// capacity.
    pub fn reset(&mut self) {
        self.state = State::Text;
        self.name.clear();
        self.value.clear();
        self.text.clear();
        self.ent.clear();
    }

    /// Scans one chunk, invoking `sink` for every completed event. The sink
    /// returns `false` to stop the scan (the service does this when the
    /// document is rejected); remaining bytes of the chunk are dropped and
    /// `feed` returns `false`. Returns `true` when the whole chunk was
    /// consumed.
    ///
    /// Names, values and text are borrowed out of `bytes` whenever the
    /// whole construct lies inside this chunk; only chunk-straddling
    /// constructs and decoded entities touch the tokenizer's buffers. Any
    /// text pending at the end of the chunk is flushed as a final
    /// [`Tag::Text`] segment (segment boundaries depend on chunking; their
    /// concatenation does not). See the module docs for the bulk-scanning
    /// skip classes.
    pub fn feed(&mut self, bytes: &[u8], sink: &mut impl FnMut(Tag<'_>) -> bool) -> bool {
        let len = bytes.len();
        let mut i = 0usize;
        let mut sp = Spans::default();
        'chunk: while i < len {
            match self.state {
                State::Text => {
                    // Hot path: parse whole tags inline, looping locally
                    // for as long as the scanner stays between tags.
                    // Bouncing through the outer state dispatch between
                    // `<`, the name and the `>` costs a hard-to-predict
                    // indirect branch per step on tag-dense input; the
                    // fused path keeps the state implicit in straight-line
                    // code, re-enters the outer dispatch only for rare
                    // constructs, and writes `self.state` only when a
                    // construct is cut off by the chunk boundary.
                    while i < len {
                        let b = bytes[i];
                        if b != b'<' {
                            if b == b'&' {
                                // Bank the text so far; the entity decodes
                                // into the text buffer after it.
                                if sp.text.1 > sp.text.0 {
                                    self.text.extend_from_slice(&bytes[sp.text.0..sp.text.1]);
                                    sp.text = (0, 0);
                                }
                                i += 1;
                                self.ent.clear();
                                self.state = State::Entity;
                                continue 'chunk;
                            }
                            // A text run: scan to the next delimiter and
                            // extend the borrowed segment.
                            let start = i;
                            match memchr2(b'<', b'&', &bytes[i..]) {
                                Some(k) => i += k,
                                None => i = len,
                            }
                            debug_assert!(sp.text.1 == sp.text.0 || sp.text.1 == start);
                            if sp.text.1 == sp.text.0 {
                                sp.text = (start, i);
                            } else {
                                sp.text.1 = i;
                            }
                            if i == len {
                                break 'chunk; // flushed at the chunk edge below
                            }
                            continue; // re-dispatch on the delimiter
                        }
                        // `<`: flush pending text, then parse the tag.
                        if (sp.text.1 > sp.text.0 || !self.text.is_empty())
                            && !self.flush_text(bytes, &mut sp, sink)
                        {
                            return false;
                        }
                        i += 1; // consume the '<'
                        if i == len {
                            self.state = State::Lt;
                            break 'chunk;
                        }
                        let b = bytes[i];
                        if is_name_byte(b) {
                            // `<name…` — a start tag: scan the name and
                            // dispatch on the terminator byte the scan
                            // already holds. The buffer is necessarily
                            // empty in `Text` (every emit clears it), so
                            // there is nothing to reset.
                            debug_assert!(self.name.is_empty());
                            let start = i;
                            let (end, t) = scan_name_tail(bytes, i + 1);
                            if end - start > self.name_limit {
                                // Consume exactly the (cap + 1)-th name
                                // byte — the scalar scanner's error point —
                                // so the text that follows is identical.
                                i = start + self.name_limit + 1;
                                if !self.emit_error(&mut sp, NAME_TOO_LONG, sink) {
                                    return false;
                                }
                                continue;
                            }
                            i = end;
                            if i == len {
                                // The tag straddles the chunk: bank the name.
                                self.name.extend_from_slice(&bytes[start..i]);
                                self.state = State::OpenName;
                                break 'chunk;
                            }
                            i += 1; // consume the terminator
                            match t {
                                b'>' => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Open, sink)
                                    {
                                        return false;
                                    }
                                }
                                b'/' => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Open, sink)
                                    {
                                        return false;
                                    }
                                    // Common case: `/>` completes inline.
                                    if i < len && bytes[i] == b'>' {
                                        i += 1;
                                        if !sink(Tag::SelfClose) {
                                            return false;
                                        }
                                    } else {
                                        self.state = State::SelfCloseEnd;
                                        break;
                                    }
                                }
                                _ if t.is_ascii_whitespace() => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Open, sink)
                                    {
                                        return false;
                                    }
                                    self.state = State::AttrSpace;
                                    break;
                                }
                                b'<' => {
                                    if !self.emit_error(&mut sp, "'<' inside a tag", sink) {
                                        return false;
                                    }
                                }
                                _ => {
                                    if !self.emit_error(&mut sp, "malformed start tag", sink) {
                                        return false;
                                    }
                                }
                            }
                        } else if b == b'/' {
                            // `</name…` — an end tag.
                            debug_assert!(self.name.is_empty());
                            i += 1;
                            if i == len {
                                self.state = State::CloseName;
                                break 'chunk;
                            }
                            let start = i;
                            let (end, t) = scan_name_tail(bytes, i);
                            if end - start > self.name_limit {
                                i = start + self.name_limit + 1;
                                if !self.emit_error(&mut sp, NAME_TOO_LONG, sink) {
                                    return false;
                                }
                                continue;
                            }
                            i = end;
                            if i == len {
                                self.name.extend_from_slice(&bytes[start..i]);
                                self.state = State::CloseName;
                                break 'chunk;
                            }
                            i += 1; // consume the terminator
                            match t {
                                b'>' if i - 1 == start => {
                                    if !self.emit_error(&mut sp, "end tag '</>' has no name", sink)
                                    {
                                        return false;
                                    }
                                }
                                b'>' => {
                                    if !Self::emit_direct(&bytes[start..i - 1], Finish::Close, sink)
                                    {
                                        return false;
                                    }
                                }
                                _ if t.is_ascii_whitespace() && i - 1 == start => {
                                    if !self.emit_error(&mut sp, "end tag '</ ' has no name", sink)
                                    {
                                        return false;
                                    }
                                }
                                _ if t.is_ascii_whitespace() => {
                                    sp.name = (start, i - 1);
                                    self.state = State::CloseEnd;
                                    break;
                                }
                                _ => {
                                    if !self.emit_error(&mut sp, "malformed end tag", sink) {
                                        return false;
                                    }
                                }
                            }
                        } else {
                            i += 1;
                            match b {
                                b'!' => {
                                    self.state = State::Bang;
                                    break;
                                }
                                b'?' => {
                                    self.state = State::Pi { qm: false };
                                    break;
                                }
                                b'>' => {
                                    if !self.emit_error(&mut sp, "empty tag '<>'", sink) {
                                        return false;
                                    }
                                }
                                _ => {
                                    if !self.emit_error(
                                        &mut sp,
                                        "stray '<' is not followed by a tag name",
                                        sink,
                                    ) {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                }
                State::Entity | State::AttrEntity { .. } => {
                    // Entity references are a handful of bytes; scan them
                    // byte by byte in both scanners so error positions
                    // trivially agree.
                    let in_text = self.state == State::Entity;
                    let b = bytes[i];
                    i += 1;
                    if let Err(message) = self.entity_byte(b) {
                        // A bad reference aborts an open text run: flush the
                        // text that preceded it first — a chunk boundary
                        // before the '&' would have flushed it already, and
                        // event streams must not depend on where chunks
                        // fall.
                        if in_text
                            && (sp.text.1 > sp.text.0 || !self.text.is_empty())
                            && !self.flush_text(bytes, &mut sp, sink)
                        {
                            return false;
                        }
                        if !self.emit_error(&mut sp, message, sink) {
                            return false;
                        }
                    }
                }
                State::Lt => {
                    let b = bytes[i];
                    i += 1;
                    match b {
                        b'/' => {
                            self.name.clear();
                            self.state = State::CloseName;
                        }
                        b'!' => self.state = State::Bang,
                        b'?' => self.state = State::Pi { qm: false },
                        b'>' => {
                            if !self.emit_error(&mut sp, "empty tag '<>'", sink) {
                                return false;
                            }
                        }
                        _ if is_name_byte(b) => {
                            self.name.clear();
                            sp.name = (i - 1, i);
                            self.state = State::OpenName;
                        }
                        _ => {
                            if !self.emit_error(
                                &mut sp,
                                "stray '<' is not followed by a tag name",
                                sink,
                            ) {
                                return false;
                            }
                        }
                    }
                }
                State::OpenName | State::CloseName => {
                    let closing = self.state == State::CloseName;
                    let start = i;
                    let (end, b) = scan_name_tail(bytes, i);
                    let buffered = self.name.len() + (sp.name.1 - sp.name.0);
                    if buffered + (end - start) > self.name_limit {
                        i = start + (self.name_limit - buffered) + 1;
                        if !self.emit_error(&mut sp, NAME_TOO_LONG, sink) {
                            return false;
                        }
                        continue;
                    }
                    i = end;
                    if sp.name.1 == sp.name.0 {
                        sp.name = (start, i);
                    } else {
                        debug_assert_eq!(sp.name.1, start, "name runs are contiguous in a chunk");
                        sp.name.1 = i;
                    }
                    if i == len {
                        break; // chunk ended mid-name; the span is flushed below
                    }
                    let empty = self.name.is_empty() && sp.name.1 == sp.name.0;
                    i += 1; // consume the terminator
                    let error = if closing {
                        match b {
                            b'>' if empty => Some("end tag '</>' has no name"),
                            b'>' => {
                                self.state = State::Text;
                                if !self.emit_name(bytes, &mut sp, Finish::Close, sink) {
                                    return false;
                                }
                                None
                            }
                            _ if b.is_ascii_whitespace() && empty => {
                                Some("end tag '</ ' has no name")
                            }
                            _ if b.is_ascii_whitespace() => {
                                self.state = State::CloseEnd;
                                None
                            }
                            _ => Some("malformed end tag"),
                        }
                    } else {
                        match b {
                            b'>' => {
                                self.state = State::Text;
                                if !self.emit_name(bytes, &mut sp, Finish::Open, sink) {
                                    return false;
                                }
                                None
                            }
                            b'/' => {
                                self.state = State::SelfCloseEnd;
                                if !self.emit_name(bytes, &mut sp, Finish::Open, sink) {
                                    return false;
                                }
                                None
                            }
                            _ if b.is_ascii_whitespace() => {
                                self.state = State::AttrSpace;
                                if !self.emit_name(bytes, &mut sp, Finish::Open, sink) {
                                    return false;
                                }
                                None
                            }
                            b'<' => Some("'<' inside a tag"),
                            _ => Some("malformed start tag"),
                        }
                    };
                    if let Some(message) = error {
                        if !self.emit_error(&mut sp, message, sink) {
                            return false;
                        }
                    }
                }
                State::AttrSpace => {
                    while i < len && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    let b = bytes[i];
                    if is_name_byte(b) {
                        // The attribute name starts here; its own arm scans it.
                        self.state = State::AttrName;
                    } else {
                        i += 1;
                        match b {
                            b'>' => self.state = State::Text,
                            b'/' => {
                                if i < len && bytes[i] == b'>' {
                                    i += 1;
                                    self.state = State::Text;
                                    if !sink(Tag::SelfClose) {
                                        return false;
                                    }
                                } else {
                                    self.state = State::SelfCloseEnd;
                                }
                            }
                            b'<' => {
                                if !self.emit_error(&mut sp, "'<' inside a tag", sink) {
                                    return false;
                                }
                            }
                            _ => {
                                if !self.emit_error(&mut sp, "malformed start tag", sink) {
                                    return false;
                                }
                            }
                        }
                    }
                }
                State::AttrName => {
                    let start = i;
                    let (end, b) = scan_name_tail(bytes, i);
                    let buffered = self.name.len() + (sp.name.1 - sp.name.0);
                    if buffered + (end - start) > self.name_limit {
                        i = start + (self.name_limit - buffered) + 1;
                        if !self.emit_error(&mut sp, ATTR_TOO_LONG, sink) {
                            return false;
                        }
                        continue;
                    }
                    i = end;
                    if sp.name.1 == sp.name.0 {
                        sp.name = (start, i);
                    } else {
                        debug_assert_eq!(sp.name.1, start, "name runs are contiguous in a chunk");
                        sp.name.1 = i;
                    }
                    if i == len {
                        break;
                    }
                    i += 1; // consume the terminator
                    match b {
                        b'=' => self.state = State::AttrValueStart,
                        _ if b.is_ascii_whitespace() => self.state = State::AttrEq,
                        b'>' => {
                            self.state = State::Text;
                            if !self.emit_attr(bytes, &mut sp, sink) {
                                return false;
                            }
                        }
                        b'/' => {
                            self.state = State::SelfCloseEnd;
                            if !self.emit_attr(bytes, &mut sp, sink) {
                                return false;
                            }
                        }
                        b'<' => {
                            if !self.emit_error(&mut sp, "'<' inside a tag", sink) {
                                return false;
                            }
                        }
                        _ => {
                            if !self.emit_error(&mut sp, "malformed start tag", sink) {
                                return false;
                            }
                        }
                    }
                }
                State::AttrEq => {
                    while i < len && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    let b = bytes[i];
                    if is_name_byte(b) {
                        // The previous attribute was valueless; this byte
                        // starts the next attribute's name.
                        self.state = State::AttrName;
                        if !self.emit_attr(bytes, &mut sp, sink) {
                            return false;
                        }
                    } else {
                        i += 1;
                        match b {
                            b'=' => self.state = State::AttrValueStart,
                            b'>' => {
                                self.state = State::Text;
                                if !self.emit_attr(bytes, &mut sp, sink) {
                                    return false;
                                }
                            }
                            b'/' => {
                                self.state = State::SelfCloseEnd;
                                if !self.emit_attr(bytes, &mut sp, sink) {
                                    return false;
                                }
                            }
                            b'<' => {
                                if !self.emit_error(&mut sp, "'<' inside a tag", sink) {
                                    return false;
                                }
                            }
                            _ => {
                                if !self.emit_error(&mut sp, "malformed start tag", sink) {
                                    return false;
                                }
                            }
                        }
                    }
                }
                State::AttrValueStart => {
                    while i < len && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    let b = bytes[i];
                    i += 1;
                    match b {
                        b'\'' => {
                            self.state = State::AttrValue {
                                quote: Quote::Single,
                            }
                        }
                        b'"' => {
                            self.state = State::AttrValue {
                                quote: Quote::Double,
                            }
                        }
                        b'<' => {
                            if !self.emit_error(&mut sp, "'<' inside a tag", sink) {
                                return false;
                            }
                        }
                        _ => {
                            if !self.emit_error(&mut sp, "attribute value must be quoted", sink) {
                                return false;
                            }
                        }
                    }
                }
                State::AttrValue { quote } => {
                    let needle = if quote == Quote::Single { b'\'' } else { b'"' };
                    let rest = &bytes[i..];
                    let stop = memchr3(needle, b'&', b'<', rest);
                    let run = stop.unwrap_or(rest.len());
                    let buffered = self.value.len() + (sp.value.1 - sp.value.0);
                    if buffered + run > Self::MAX_VALUE_LEN {
                        i += (Self::MAX_VALUE_LEN - buffered) + 1;
                        if !self.emit_error(&mut sp, VALUE_TOO_LONG, sink) {
                            return false;
                        }
                        continue;
                    }
                    let start = i;
                    i += run;
                    if sp.value.1 == sp.value.0 {
                        sp.value = (start, i);
                    } else {
                        debug_assert_eq!(sp.value.1, start, "value runs are contiguous in a chunk");
                        sp.value.1 = i;
                    }
                    if stop.is_none() {
                        break; // chunk ended mid-value; spans flushed below
                    }
                    let b = bytes[i];
                    i += 1;
                    match b {
                        b'&' => {
                            // Bank the value so far; the entity decodes
                            // into the value buffer after it.
                            if sp.value.1 > sp.value.0 {
                                self.value.extend_from_slice(&bytes[sp.value.0..sp.value.1]);
                                sp.value = (0, 0);
                            }
                            self.ent.clear();
                            self.state = State::AttrEntity { quote };
                        }
                        b'<' => {
                            if !self.emit_error(&mut sp, "'<' inside an attribute value", sink) {
                                return false;
                            }
                        }
                        _ => {
                            // The closing quote.
                            self.state = State::AttrSpace;
                            if !self.emit_attr(bytes, &mut sp, sink) {
                                return false;
                            }
                        }
                    }
                }
                State::SelfCloseEnd => {
                    let b = bytes[i];
                    i += 1;
                    if b == b'>' {
                        self.state = State::Text;
                        if !sink(Tag::SelfClose) {
                            return false;
                        }
                    } else if !self.emit_error(&mut sp, "expected '>' after '/' in a tag", sink) {
                        return false;
                    }
                }
                State::CloseEnd => {
                    while i < len && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                    let b = bytes[i];
                    i += 1;
                    if b == b'>' {
                        self.state = State::Text;
                        if !self.emit_name(bytes, &mut sp, Finish::Close, sink) {
                            return false;
                        }
                    } else if !self.emit_error(&mut sp, "garbage after an end-tag name", sink) {
                        return false;
                    }
                }
                State::Bang => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::BangDash,
                        b'[' => State::CdataPrefix { matched: 0 },
                        b'>' => State::Text,
                        _ => State::Doctype {
                            depth: 0,
                            quote: Quote::None,
                        },
                    };
                }
                State::BangDash => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::Comment { dashes: 0 },
                        b'>' => State::Text,
                        _ => State::Doctype {
                            depth: 0,
                            quote: Quote::None,
                        },
                    };
                }
                State::CdataPrefix { matched } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = if b == CDATA_PREFIX[matched as usize] {
                        if matched as usize + 1 == CDATA_PREFIX.len() {
                            State::Cdata { brackets: 0 }
                        } else {
                            State::CdataPrefix {
                                matched: matched + 1,
                            }
                        }
                    } else {
                        // Not a CDATA section after all (`<![INCLUDE[` …):
                        // treat it as a doctype-ish marked section. The `[`
                        // already consumed opened one nesting level.
                        let depth = match b {
                            b']' => 0,
                            b'[' => 2,
                            _ => 1,
                        };
                        State::Doctype {
                            depth,
                            quote: match b {
                                b'\'' => Quote::Single,
                                b'"' => Quote::Double,
                                _ => Quote::None,
                            },
                        }
                    };
                }
                State::Cdata { brackets: 0 } => match memchr(b']', &bytes[i..]) {
                    Some(k) => {
                        self.text.extend_from_slice(&bytes[i..i + k]);
                        i += k + 1;
                        self.state = State::Cdata { brackets: 1 };
                    }
                    None => {
                        self.text.extend_from_slice(&bytes[i..]);
                        i = len;
                    }
                },
                State::Cdata { brackets } => {
                    let b = bytes[i];
                    i += 1;
                    match b {
                        // At two pending `]`s the oldest is known content.
                        b']' if brackets >= 2 => self.text.push(b']'),
                        b']' => self.state = State::Cdata { brackets: 2 },
                        b'>' if brackets >= 2 => self.state = State::Text,
                        _ => {
                            // The pending `]`s were content after all.
                            for _ in 0..brackets {
                                self.text.push(b']');
                            }
                            self.text.push(b);
                            self.state = State::Cdata { brackets: 0 };
                        }
                    }
                }
                State::Comment { dashes: 0 } => match memchr(b'-', &bytes[i..]) {
                    Some(k) => {
                        i += k + 1;
                        self.state = State::Comment { dashes: 1 };
                    }
                    None => i = len,
                },
                State::Comment { dashes } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'-' => State::Comment {
                            dashes: (dashes + 1).min(2),
                        },
                        b'>' if dashes >= 2 => State::Text,
                        _ => State::Comment { dashes: 0 },
                    };
                }
                State::Doctype {
                    depth,
                    quote: Quote::None,
                } => {
                    let rest = &bytes[i..];
                    match min_hit(memchr3(b'\'', b'"', b'>', rest), memchr2(b'[', b']', rest)) {
                        Some(k) => {
                            let b = rest[k];
                            i += k + 1;
                            self.state = match b {
                                b'\'' => State::Doctype {
                                    depth,
                                    quote: Quote::Single,
                                },
                                b'"' => State::Doctype {
                                    depth,
                                    quote: Quote::Double,
                                },
                                b'[' => State::Doctype {
                                    depth: depth.saturating_add(1),
                                    quote: Quote::None,
                                },
                                b']' => State::Doctype {
                                    depth: depth.saturating_sub(1),
                                    quote: Quote::None,
                                },
                                _ if depth == 0 => State::Text,
                                _ => State::Doctype {
                                    depth,
                                    quote: Quote::None,
                                },
                            };
                        }
                        None => i = len,
                    }
                }
                State::Doctype { depth, quote } => {
                    // Inside a system/public literal everything is inert
                    // until the matching quote — literals legally contain
                    // `>`, `[` and `]`.
                    let needle = if quote == Quote::Single { b'\'' } else { b'"' };
                    match memchr(needle, &bytes[i..]) {
                        Some(k) => {
                            i += k + 1;
                            self.state = State::Doctype {
                                depth,
                                quote: Quote::None,
                            };
                        }
                        None => i = len,
                    }
                }
                State::Pi { qm: false } => match memchr(b'?', &bytes[i..]) {
                    Some(k) => {
                        i += k + 1;
                        self.state = State::Pi { qm: true };
                    }
                    None => i = len,
                },
                State::Pi { .. } => {
                    let b = bytes[i];
                    i += 1;
                    self.state = match b {
                        b'?' => State::Pi { qm: true },
                        b'>' => State::Text,
                        _ => State::Pi { qm: false },
                    };
                }
            }
        }
        // The chunk ended with a construct still open: bank the borrowed
        // name/value bytes so the next chunk can continue them (the cap
        // checks above ran before any `break`, so the buffers stay
        // bounded), and flush any pending text — character data is emitted
        // at chunk edges, never banked across them.
        if sp.name.1 > sp.name.0 {
            self.name.extend_from_slice(&bytes[sp.name.0..sp.name.1]);
        }
        if sp.value.1 > sp.value.0 {
            self.value.extend_from_slice(&bytes[sp.value.0..sp.value.1]);
        }
        if (sp.text.1 > sp.text.0 || !self.text.is_empty())
            && !self.flush_text(bytes, &mut sp, sink)
        {
            return false;
        }
        true
    }

    /// Advances an entity reference (text or attribute value) by one byte;
    /// shared verbatim between the bulk and scalar scanners so error
    /// positions trivially agree. `Err` carries the [`Tag::Error`] text.
    fn entity_byte(&mut self, b: u8) -> Result<(), &'static str> {
        if b == b';' {
            let back = self.state;
            match back {
                State::AttrEntity { .. } => decode_entity(&self.ent, &mut self.value)?,
                _ => decode_entity(&self.ent, &mut self.text)?,
            }
            self.ent.clear();
            self.state = match back {
                State::AttrEntity { quote } => State::AttrValue { quote },
                _ => State::Text,
            };
            Ok(())
        } else if b.is_ascii_alphanumeric() || b == b'#' {
            if self.ent.len() >= Self::MAX_ENTITY_LEN {
                Err(UNKNOWN_ENTITY)
            } else {
                self.ent.push(b);
                Ok(())
            }
        } else {
            Err(ENTITY_UNTERMINATED)
        }
    }

    /// Resolves the pending name — buffered bytes plus the borrowed span —
    /// and emits the finished open/close tag. Single-chunk names are
    /// borrowed straight out of `bytes`; only straddling names touch the
    /// buffer. Outlined: every call site inlines the sink (the whole
    /// validation path), and only resumption states reach this — keeping
    /// one copy keeps the hot fused path's code small.
    #[inline(never)]
    fn emit_name(
        &mut self,
        bytes: &[u8],
        sp: &mut Spans,
        kind: Finish,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        let borrowed = &bytes[sp.name.0..sp.name.1];
        let name_bytes: &[u8] = if self.name.is_empty() {
            borrowed
        } else {
            self.name.extend_from_slice(borrowed);
            self.name.as_slice()
        };
        let keep_going = sink(match kind {
            Finish::Open => Tag::Open(name_bytes),
            Finish::Close => Tag::Close(name_bytes),
        });
        self.name.clear();
        sp.name = (0, 0);
        keep_going
    }

    /// Resolves the pending attribute — name and value, buffered and/or
    /// borrowed — and emits it. Values with no decoded entity and no chunk
    /// straddle are borrowed straight out of `bytes`.
    #[inline(never)]
    fn emit_attr(
        &mut self,
        bytes: &[u8],
        sp: &mut Spans,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        let name_borrowed = &bytes[sp.name.0..sp.name.1];
        let value_borrowed = &bytes[sp.value.0..sp.value.1];
        let name_buffered = !self.name.is_empty();
        let value_buffered = !self.value.is_empty();
        if name_buffered {
            self.name.extend_from_slice(name_borrowed);
        }
        if value_buffered {
            self.value.extend_from_slice(value_borrowed);
        }
        let keep_going = sink(Tag::Attr {
            name: if name_buffered {
                &self.name
            } else {
                name_borrowed
            },
            value: if value_buffered {
                &self.value
            } else {
                value_borrowed
            },
        });
        self.name.clear();
        self.value.clear();
        sp.name = (0, 0);
        sp.value = (0, 0);
        keep_going
    }

    /// Emits the pending text — decoded buffer plus the borrowed segment —
    /// as one [`Tag::Text`] segment; a no-op when both are empty.
    #[inline(never)]
    fn flush_text(
        &mut self,
        bytes: &[u8],
        sp: &mut Spans,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        let borrowed = &bytes[sp.text.0..sp.text.1];
        sp.text = (0, 0);
        let keep_going = if self.text.is_empty() {
            if borrowed.is_empty() {
                return true;
            }
            sink(Tag::Text(borrowed))
        } else {
            self.text.extend_from_slice(borrowed);
            sink(Tag::Text(&self.text))
        };
        self.text.clear();
        keep_going
    }

    /// Emits a tag whose name lies entirely inside the current chunk — the
    /// fused fast path's borrow-only emission (the name buffer is known
    /// empty and the spans untouched, so there is nothing to reset).
    #[inline]
    fn emit_direct(
        name_bytes: &[u8],
        kind: Finish,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        sink(match kind {
            Finish::Open => Tag::Open(name_bytes),
            Finish::Close => Tag::Close(name_bytes),
        })
    }

    /// Emits a [`Tag::Error`], discarding every pending construct and
    /// resuming at character data. Malformed markup is never the hot path,
    /// and each of the many call sites would inline the sink — outline
    /// them all into this one cold copy.
    #[cold]
    #[inline(never)]
    fn emit_error(
        &mut self,
        sp: &mut Spans,
        message: &'static str,
        sink: &mut impl FnMut(Tag<'_>) -> bool,
    ) -> bool {
        self.name.clear();
        self.value.clear();
        self.text.clear();
        self.ent.clear();
        *sp = Spans::default();
        self.state = State::Text;
        sink(Tag::Error(message))
    }

    /// The byte-at-a-time scanner, kept as the reference oracle:
    /// `tests/tokenizer_equivalence.rs` property-checks [`Tokenizer::feed`]
    /// against it over random documents and every chunk split, and the E14
    /// benchmark reports the bulk scanner's speedup relative to it.
    /// Semantics are identical; only the scanning strategy differs.
    #[doc(hidden)]
    pub fn feed_scalar(&mut self, bytes: &[u8], sink: &mut impl FnMut(Tag<'_>) -> bool) -> bool {
        /// What the current byte completed, applied after the state step so
        /// the borrows of the buffers never overlap the state update.
        enum Emit {
            None,
            Name(Finish),
            Attr,
            /// Emit the pending attribute, then start the next attribute's
            /// name with this byte (a valueless attribute ran into the next
            /// name with no `=`).
            AttrThenName(u8),
            Text,
            SelfClose,
            Error(&'static str),
            /// Flush the aborted text run, then report the error (a bad
            /// entity reference mid-text).
            TextThenError(&'static str),
        }
        for &b in bytes {
            let mut emit = Emit::None;
            match self.state {
                State::Entity | State::AttrEntity { .. } => {
                    let in_text = self.state == State::Entity;
                    if let Err(message) = self.entity_byte(b) {
                        // Flush the text run the bad reference aborted —
                        // same order as the bulk scanner.
                        emit = if in_text && !self.text.is_empty() {
                            Emit::TextThenError(message)
                        } else {
                            Emit::Error(message)
                        };
                        self.state = State::Text;
                    }
                }
                _ => {
                    self.state = match self.state {
                        State::Entity | State::AttrEntity { .. } => unreachable!("handled above"),
                        State::Text => match b {
                            b'<' => {
                                if !self.text.is_empty() {
                                    emit = Emit::Text;
                                }
                                State::Lt
                            }
                            b'&' => {
                                self.ent.clear();
                                State::Entity
                            }
                            _ => {
                                self.text.push(b);
                                State::Text
                            }
                        },
                        State::Lt => match b {
                            b'/' => {
                                self.name.clear();
                                State::CloseName
                            }
                            b'!' => State::Bang,
                            b'?' => State::Pi { qm: false },
                            b'>' => {
                                emit = Emit::Error("empty tag '<>'");
                                State::Text
                            }
                            _ if is_name_byte(b) => {
                                self.name.clear();
                                self.name.push(b);
                                State::OpenName
                            }
                            _ => {
                                emit = Emit::Error("stray '<' is not followed by a tag name");
                                State::Text
                            }
                        },
                        State::OpenName => match b {
                            b'>' => {
                                emit = Emit::Name(Finish::Open);
                                State::Text
                            }
                            b'/' => {
                                emit = Emit::Name(Finish::Open);
                                State::SelfCloseEnd
                            }
                            _ if b.is_ascii_whitespace() => {
                                emit = Emit::Name(Finish::Open);
                                State::AttrSpace
                            }
                            b'<' => {
                                emit = Emit::Error("'<' inside a tag");
                                State::Text
                            }
                            _ if is_name_byte(b) => {
                                if self.name.len() >= self.name_limit {
                                    emit = Emit::Error(NAME_TOO_LONG);
                                    State::Text
                                } else {
                                    self.name.push(b);
                                    State::OpenName
                                }
                            }
                            _ => {
                                emit = Emit::Error("malformed start tag");
                                State::Text
                            }
                        },
                        State::AttrSpace => match b {
                            _ if b.is_ascii_whitespace() => State::AttrSpace,
                            b'>' => State::Text,
                            b'/' => State::SelfCloseEnd,
                            b'<' => {
                                emit = Emit::Error("'<' inside a tag");
                                State::Text
                            }
                            _ if is_name_byte(b) => {
                                self.name.push(b);
                                State::AttrName
                            }
                            _ => {
                                emit = Emit::Error("malformed start tag");
                                State::Text
                            }
                        },
                        State::AttrName => match b {
                            b'=' => State::AttrValueStart,
                            _ if b.is_ascii_whitespace() => State::AttrEq,
                            b'>' => {
                                emit = Emit::Attr;
                                State::Text
                            }
                            b'/' => {
                                emit = Emit::Attr;
                                State::SelfCloseEnd
                            }
                            b'<' => {
                                emit = Emit::Error("'<' inside a tag");
                                State::Text
                            }
                            _ if is_name_byte(b) => {
                                if self.name.len() >= self.name_limit {
                                    emit = Emit::Error(ATTR_TOO_LONG);
                                    State::Text
                                } else {
                                    self.name.push(b);
                                    State::AttrName
                                }
                            }
                            _ => {
                                emit = Emit::Error("malformed start tag");
                                State::Text
                            }
                        },
                        State::AttrEq => match b {
                            _ if b.is_ascii_whitespace() => State::AttrEq,
                            b'=' => State::AttrValueStart,
                            b'>' => {
                                emit = Emit::Attr;
                                State::Text
                            }
                            b'/' => {
                                emit = Emit::Attr;
                                State::SelfCloseEnd
                            }
                            b'<' => {
                                emit = Emit::Error("'<' inside a tag");
                                State::Text
                            }
                            _ if is_name_byte(b) => {
                                emit = Emit::AttrThenName(b);
                                State::AttrName
                            }
                            _ => {
                                emit = Emit::Error("malformed start tag");
                                State::Text
                            }
                        },
                        State::AttrValueStart => match b {
                            _ if b.is_ascii_whitespace() => State::AttrValueStart,
                            b'\'' => State::AttrValue {
                                quote: Quote::Single,
                            },
                            b'"' => State::AttrValue {
                                quote: Quote::Double,
                            },
                            b'<' => {
                                emit = Emit::Error("'<' inside a tag");
                                State::Text
                            }
                            _ => {
                                emit = Emit::Error("attribute value must be quoted");
                                State::Text
                            }
                        },
                        State::AttrValue { quote } => match (quote, b) {
                            (Quote::Single, b'\'') | (Quote::Double, b'"') => {
                                emit = Emit::Attr;
                                State::AttrSpace
                            }
                            (_, b'&') => {
                                self.ent.clear();
                                State::AttrEntity { quote }
                            }
                            (_, b'<') => {
                                emit = Emit::Error("'<' inside an attribute value");
                                State::Text
                            }
                            _ => {
                                if self.value.len() >= Self::MAX_VALUE_LEN {
                                    emit = Emit::Error(VALUE_TOO_LONG);
                                    State::Text
                                } else {
                                    self.value.push(b);
                                    State::AttrValue { quote }
                                }
                            }
                        },
                        State::SelfCloseEnd => match b {
                            b'>' => {
                                emit = Emit::SelfClose;
                                State::Text
                            }
                            _ => {
                                emit = Emit::Error("expected '>' after '/' in a tag");
                                State::Text
                            }
                        },
                        State::CloseName => match b {
                            b'>' if self.name.is_empty() => {
                                emit = Emit::Error("end tag '</>' has no name");
                                State::Text
                            }
                            b'>' => {
                                emit = Emit::Name(Finish::Close);
                                State::Text
                            }
                            _ if b.is_ascii_whitespace() && self.name.is_empty() => {
                                emit = Emit::Error("end tag '</ ' has no name");
                                State::Text
                            }
                            _ if b.is_ascii_whitespace() => State::CloseEnd,
                            _ if is_name_byte(b) => {
                                if self.name.len() >= self.name_limit {
                                    emit = Emit::Error(NAME_TOO_LONG);
                                    State::Text
                                } else {
                                    self.name.push(b);
                                    State::CloseName
                                }
                            }
                            _ => {
                                emit = Emit::Error("malformed end tag");
                                State::Text
                            }
                        },
                        State::CloseEnd => match b {
                            b'>' => {
                                emit = Emit::Name(Finish::Close);
                                State::Text
                            }
                            _ if b.is_ascii_whitespace() => State::CloseEnd,
                            _ => {
                                emit = Emit::Error("garbage after an end-tag name");
                                State::Text
                            }
                        },
                        State::Bang => match b {
                            b'-' => State::BangDash,
                            b'[' => State::CdataPrefix { matched: 0 },
                            b'>' => State::Text,
                            _ => State::Doctype {
                                depth: 0,
                                quote: Quote::None,
                            },
                        },
                        State::BangDash => match b {
                            b'-' => State::Comment { dashes: 0 },
                            b'>' => State::Text,
                            _ => State::Doctype {
                                depth: 0,
                                quote: Quote::None,
                            },
                        },
                        State::CdataPrefix { matched } => {
                            if b == CDATA_PREFIX[matched as usize] {
                                if matched as usize + 1 == CDATA_PREFIX.len() {
                                    State::Cdata { brackets: 0 }
                                } else {
                                    State::CdataPrefix {
                                        matched: matched + 1,
                                    }
                                }
                            } else {
                                let depth = match b {
                                    b']' => 0,
                                    b'[' => 2,
                                    _ => 1,
                                };
                                State::Doctype {
                                    depth,
                                    quote: match b {
                                        b'\'' => Quote::Single,
                                        b'"' => Quote::Double,
                                        _ => Quote::None,
                                    },
                                }
                            }
                        }
                        State::Cdata { brackets } => match b {
                            b']' if brackets >= 2 => {
                                self.text.push(b']');
                                State::Cdata { brackets: 2 }
                            }
                            b']' => State::Cdata {
                                brackets: brackets + 1,
                            },
                            b'>' if brackets >= 2 => State::Text,
                            _ => {
                                for _ in 0..brackets {
                                    self.text.push(b']');
                                }
                                self.text.push(b);
                                State::Cdata { brackets: 0 }
                            }
                        },
                        State::Comment { dashes } => match b {
                            b'-' => State::Comment {
                                dashes: (dashes + 1).min(2),
                            },
                            b'>' if dashes >= 2 => State::Text,
                            _ => State::Comment { dashes: 0 },
                        },
                        State::Doctype { depth, quote } => match (quote, b) {
                            (Quote::Single, b'\'') | (Quote::Double, b'"') => State::Doctype {
                                depth,
                                quote: Quote::None,
                            },
                            (Quote::Single, _) | (Quote::Double, _) => {
                                State::Doctype { depth, quote }
                            }
                            (Quote::None, b'\'') => State::Doctype {
                                depth,
                                quote: Quote::Single,
                            },
                            (Quote::None, b'"') => State::Doctype {
                                depth,
                                quote: Quote::Double,
                            },
                            (Quote::None, b'[') => State::Doctype {
                                depth: depth.saturating_add(1),
                                quote: Quote::None,
                            },
                            (Quote::None, b']') => State::Doctype {
                                depth: depth.saturating_sub(1),
                                quote: Quote::None,
                            },
                            (Quote::None, b'>') if depth == 0 => State::Text,
                            (Quote::None, _) => State::Doctype {
                                depth,
                                quote: Quote::None,
                            },
                        },
                        State::Pi { qm } => match b {
                            b'?' => State::Pi { qm: true },
                            b'>' if qm => State::Text,
                            _ => State::Pi { qm: false },
                        },
                    };
                }
            }
            match emit {
                Emit::None => {}
                Emit::Name(kind) => {
                    let keep_going = sink(match kind {
                        Finish::Open => Tag::Open(&self.name),
                        Finish::Close => Tag::Close(&self.name),
                    });
                    self.name.clear();
                    if !keep_going {
                        return false;
                    }
                }
                Emit::Attr => {
                    let keep_going = sink(Tag::Attr {
                        name: &self.name,
                        value: &self.value,
                    });
                    self.name.clear();
                    self.value.clear();
                    if !keep_going {
                        return false;
                    }
                }
                Emit::AttrThenName(next) => {
                    let keep_going = sink(Tag::Attr {
                        name: &self.name,
                        value: &self.value,
                    });
                    self.name.clear();
                    self.value.clear();
                    if !keep_going {
                        return false;
                    }
                    self.name.push(next);
                }
                Emit::Text => {
                    let keep_going = sink(Tag::Text(&self.text));
                    self.text.clear();
                    if !keep_going {
                        return false;
                    }
                }
                Emit::SelfClose => {
                    if !sink(Tag::SelfClose) {
                        return false;
                    }
                }
                Emit::Error(message) => {
                    self.name.clear();
                    self.value.clear();
                    self.text.clear();
                    self.ent.clear();
                    if !sink(Tag::Error(message)) {
                        return false;
                    }
                }
                Emit::TextThenError(message) => {
                    let keep_going = sink(Tag::Text(&self.text));
                    self.name.clear();
                    self.value.clear();
                    self.text.clear();
                    self.ent.clear();
                    if !keep_going || !sink(Tag::Error(message)) {
                        return false;
                    }
                }
            }
        }
        // Flush pending text at the chunk edge, mirroring the bulk scanner.
        if !self.text.is_empty() {
            let keep_going = sink(Tag::Text(&self.text));
            self.text.clear();
            if !keep_going {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders one event compactly: `<n>`, ` n='v'`, `/>`, `</n>`, `'t'`,
    /// `!err`.
    fn render(tag: &Tag<'_>) -> String {
        match tag {
            Tag::Open(n) => format!("<{}>", String::from_utf8_lossy(n)),
            Tag::Attr { name, value } => format!(
                " {}='{}'",
                String::from_utf8_lossy(name),
                String::from_utf8_lossy(value)
            ),
            Tag::SelfClose => "/>".to_owned(),
            Tag::Close(n) => format!("</{}>", String::from_utf8_lossy(n)),
            Tag::Text(t) => format!("'{}'", String::from_utf8_lossy(t)),
            Tag::Error(e) => format!("!{e}"),
        }
    }

    /// Collects the events of a byte stream, splitting it into chunks of
    /// `chunk` bytes (0 = one chunk); `scalar` selects the oracle scanner.
    fn scan_with(input: &[u8], chunk: usize, scalar: bool) -> Vec<String> {
        let mut t = Tokenizer::default();
        let mut out = Vec::new();
        let mut push = |tag: Tag<'_>| {
            out.push(render(&tag));
            true
        };
        let parts: Vec<&[u8]> = if chunk == 0 {
            vec![input]
        } else {
            input.chunks(chunk).collect()
        };
        for part in parts {
            if scalar {
                assert!(t.feed_scalar(part, &mut push));
            } else {
                assert!(t.feed(part, &mut push));
            }
        }
        out
    }

    /// Merges consecutive `Text` renderings — segment boundaries move with
    /// the chunking, their concatenation does not.
    fn normalize(events: Vec<String>) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in events {
            if e.starts_with('\'') && e.ends_with('\'') && e.len() >= 2 {
                if let Some(last) = out.last_mut() {
                    if last.starts_with('\'') && last.ends_with('\'') {
                        let inner = &e[1..e.len() - 1];
                        last.truncate(last.len() - 1);
                        last.push_str(inner);
                        last.push('\'');
                        continue;
                    }
                }
            }
            out.push(e);
        }
        out
    }

    /// Scans with the bulk scanner, asserting the scalar oracle agrees at
    /// the same chunking and that a whole-document scan ends idle.
    fn scan(input: &str, chunk: usize) -> Vec<String> {
        let bulk = scan_with(input.as_bytes(), chunk, false);
        let scalar = scan_with(input.as_bytes(), chunk, true);
        assert_eq!(bulk, scalar, "bulk and scalar scanners disagree");
        let mut t = Tokenizer::default();
        assert!(t.feed(input.as_bytes(), &mut |_| true));
        assert!(t.is_idle(), "scanner left inside a construct");
        bulk
    }

    /// Asserts the normalized event stream is `want` for the whole document
    /// and at every chunk size.
    fn scan_all_splits(input: &str, want: &[&str]) {
        assert_eq!(normalize(scan(input, 0)), want, "whole: {input}");
        for chunk in 1..input.len() {
            assert_eq!(
                normalize(scan(input, chunk)),
                want,
                "chunk {chunk}: {input}"
            );
        }
    }

    #[test]
    fn plain_tags_and_text() {
        assert_eq!(
            scan("<a>text<b/>more</a>", 0),
            vec!["<a>", "'text'", "<b>", "/>", "'more'", "</a>"]
        );
    }

    #[test]
    fn slash_inside_quoted_value_is_not_self_closing() {
        // A '/' inside a quoted attribute value must never mark the tag
        // self-closing: only a '/' directly before the closing '>' and
        // outside any quote does. Pinned across every chunk split so the
        // property stays provable through tokenizer refactors.
        scan_all_splits(
            r#"<a x='a/b'><c/></a>"#,
            &["<a>", " x='a/b'", "<c>", "/>", "</a>"],
        );
        scan_all_splits(r#"<a x="/"></a>"#, &["<a>", " x='/'", "</a>"]);
        scan_all_splits(r#"<a t='a/b'/>"#, &["<a>", " t='a/b'", "/>"]);
        scan_all_splits(
            r#"<a x='/' y="/"></a>"#,
            &["<a>", " x='/'", " y='/'", "</a>"],
        );
    }

    #[test]
    fn attributes_with_tricky_quotes() {
        scan_all_splits(
            r#"<a href="x>y" title='a"b'><b checked/></a>"#,
            &[
                "<a>",
                " href='x>y'",
                " title='a\"b'",
                "<b>",
                " checked=''",
                "/>",
                "</a>",
            ],
        );
    }

    #[test]
    fn valueless_attributes_and_spacing() {
        scan_all_splits(
            "<a one two = 'v' three>x</a>",
            &["<a>", " one=''", " two='v'", " three=''", "'x'", "</a>"],
        );
    }

    #[test]
    fn entities_decode_in_text_and_values() {
        scan_all_splits(
            "<a>x &amp; y &#65;&#x42;</a>",
            &["<a>", "'x & y AB'", "</a>"],
        );
        scan_all_splits(
            r#"<a q='&quot;&apos;' lt="&lt;&gt;"/>"#,
            &["<a>", " q='\"''", " lt='<>'", "/>"],
        );
    }

    #[test]
    fn entity_errors_are_reported() {
        assert_eq!(scan("<a>&nope;</a>", 0)[1], format!("!{UNKNOWN_ENTITY}"));
        assert_eq!(scan("<a>&#xD800;</a>", 0)[1], format!("!{BAD_CHAR_REF}"));
        assert_eq!(scan("<a>&# ;</a>", 0)[1], format!("!{ENTITY_UNTERMINATED}"));
        assert_eq!(scan("<a>&;</a>", 0)[1], format!("!{UNKNOWN_ENTITY}"));
        assert_eq!(
            scan("<a x='&aVeryLongEntityName;'/>", 0)[1],
            format!("!{UNKNOWN_ENTITY}")
        );
        // Bulk and scalar agree at every split even through the error.
        let input = "<a>pre&bogus;post</a>";
        for chunk in 1..input.len() {
            scan(input, chunk);
        }
    }

    #[test]
    fn comments_cdata_pi_doctype() {
        let input = "<?xml version=\"1.0\"?>\
                     <!DOCTYPE doc [ <!ELEMENT doc (a)*> ]>\
                     <doc><!-- a > b --><a/><![CDATA[ <not-a-tag> ]]></doc>";
        assert_eq!(
            normalize(scan(input, 0)),
            vec!["<doc>", "<a>", "/>", "' <not-a-tag> '", "</doc>"]
        );
    }

    #[test]
    fn cdata_bracket_runs_are_content() {
        scan_all_splits(
            "<doc><![CDATA[a]]b]]]>z]]></doc>",
            &["<doc>", "'a]]b]z]]>'", "</doc>"],
        );
    }

    #[test]
    fn doctype_literals_may_contain_markup_characters() {
        // SystemLiteral legally contains '>' and '<'; quote tracking keeps
        // the doctype from terminating early.
        let input = "<!DOCTYPE doc SYSTEM \"x>y<z\" [ <!ENTITY e '>]'> ]><doc><a/></doc>";
        scan_all_splits(input, &["<doc>", "<a>", "/>", "</doc>"]);
    }

    #[test]
    fn every_chunk_size_agrees() {
        let input = "<?pi data?><doc attr=\"v>\"><!--c--><a x='1'/>t&amp;u<b></b>\
                     <![CDATA[]]]>]]></doc>";
        let whole = normalize(scan(input, 0));
        for chunk in 1..input.len() {
            assert_eq!(normalize(scan(input, chunk)), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn malformed_markup_is_reported() {
        assert_eq!(scan("<>", 0), vec!["!empty tag '<>'"]);
        assert_eq!(scan("</>", 0), vec!["!end tag '</>' has no name"]);
        assert_eq!(scan("<a=b>", 0)[0], "!malformed start tag");
        assert_eq!(
            scan("< a>", 0)[0],
            "!stray '<' is not followed by a tag name"
        );
        assert_eq!(scan("</a b>", 0)[0], "!garbage after an end-tag name");
        // Stricter than the attribute-skipping grammar: these are real XML
        // errors that would make attribute events ambiguous.
        assert_eq!(scan("<a x=1>", 0)[1], "!attribute value must be quoted");
        assert_eq!(scan("<a / >", 0)[1], "!expected '>' after '/' in a tag");
        assert_eq!(scan("<a x='<'>", 0)[1], "!'<' inside an attribute value");
    }

    #[test]
    fn idle_only_between_constructs() {
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<partial-na", &mut |_| true));
        assert!(!t.is_idle());
        assert!(t.feed(b"me>", &mut |tag| {
            assert_eq!(tag, Tag::Open(b"partial-name"));
            true
        }));
        assert!(t.is_idle());
        t.reset();
        assert!(t.is_idle());
    }

    #[test]
    fn sink_can_stop_the_scan() {
        let mut t = Tokenizer::default();
        let mut seen = 0;
        assert!(!t.feed(b"<a><b><c>", &mut |_| {
            seen += 1;
            false
        }));
        assert_eq!(seen, 1);
    }

    #[test]
    fn single_chunk_events_are_borrowed_not_buffered() {
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<alpha><beta attr='v'/>text</alpha>", &mut |_| true));
        // Completed-in-chunk names, values and text never touch the buffers.
        assert_eq!(t.name.capacity(), 0);
        assert_eq!(t.value.capacity(), 0);
        assert_eq!(t.text.capacity(), 0);
        // A straddling name does, and the flush covers exactly the name.
        assert!(t.feed(b"<gam", &mut |_| true));
        assert_eq!(t.name, b"gam");
    }

    #[test]
    fn over_long_names_are_capped_with_a_bounded_buffer() {
        let hostile = vec![b'a'; 10 * Tokenizer::MAX_NAME_LEN];
        let mut input = b"<x><".to_vec();
        input.extend_from_slice(&hostile);
        input.extend_from_slice(b" y='z'><x/>");
        let whole = normalize(scan_with(&input, 0, false));
        assert_eq!(whole[0], "<x>");
        assert_eq!(whole[1], format!("!{NAME_TOO_LONG}"));
        // After the error the rest of the hostile run is plain text up to
        // the next '<'.
        assert!(whole[2].starts_with("'aaa"), "got {:?}", &whole[2]);
        assert_eq!(&whole[3..], ["<x>", "/>"]);
        for chunk in [1usize, 7, 4096, 10_000] {
            let bulk = scan_with(&input, chunk, false);
            assert_eq!(bulk, scan_with(&input, chunk, true), "chunk {chunk}");
            assert_eq!(normalize(bulk), whole, "chunk {chunk}");
        }
        // The buffer a hostile stream can pin stays bounded by the cap, not
        // the stream length.
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<", &mut |_| true));
        for chunk in hostile.chunks(977) {
            assert!(t.feed(chunk, &mut |_| true));
        }
        assert!(
            t.name.capacity() <= 2 * Tokenizer::MAX_NAME_LEN,
            "name buffer grew past the cap: {}",
            t.name.capacity()
        );
    }

    #[test]
    fn over_long_attribute_names_and_values_are_capped() {
        let long_name = "b".repeat(Tokenizer::MAX_NAME_LEN + 8);
        let input = format!("<a {long_name}='v'/>");
        let got = scan(&input, 0);
        assert_eq!(got[1], format!("!{ATTR_TOO_LONG}"));
        let long_value = "v".repeat(Tokenizer::MAX_VALUE_LEN + 8);
        let input = format!("<a x='{long_value}'/>");
        for chunk in [0usize, 1, 4096] {
            let bulk = scan_with(input.as_bytes(), chunk, false);
            assert_eq!(
                bulk,
                scan_with(input.as_bytes(), chunk, true),
                "chunk {chunk}"
            );
            assert_eq!(bulk[1], format!("!{VALUE_TOO_LONG}"), "chunk {chunk}");
        }
        // The pinned value buffer stays bounded by the cap.
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<a x='", &mut |_| true));
        for chunk in long_value.as_bytes().chunks(977) {
            assert!(t.feed(chunk, &mut |_| true));
        }
        assert!(
            t.value.capacity() <= 2 * Tokenizer::MAX_VALUE_LEN,
            "value buffer grew past the cap: {}",
            t.value.capacity()
        );
    }

    #[test]
    fn text_is_flushed_at_chunk_edges_never_banked() {
        let mut t = Tokenizer::default();
        let mut segments = Vec::new();
        for chunk in [&b"<a>hel"[..], &b"lo</a>"[..]] {
            assert!(t.feed(chunk, &mut |tag| {
                if let Tag::Text(s) = tag {
                    segments.push(String::from_utf8_lossy(s).into_owned());
                }
                true
            }));
            // Nothing pending between feeds: the segment was emitted.
            assert_eq!(t.text.capacity(), 0);
        }
        assert_eq!(segments, ["hel", "lo"]);
    }
}
