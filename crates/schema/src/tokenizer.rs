//! A minimal streaming XML tokenizer: raw bytes in, tag events out.
//!
//! [`ValidationService::feed_bytes`] lets callers pipe socket buffers
//! straight into validation; this module is the state machine behind it. It
//! turns tag soup into open/close events and **tolerates chunk boundaries
//! anywhere** — mid-name, mid-attribute, mid-comment — by keeping the whole
//! scanner state (plus the bytes of a partial name) in the [`Tokenizer`]
//! value between `feed` calls.
//!
//! The tokenizer is deliberately minimal, scoped to what element-structure
//! validation needs:
//!
//! * start tags `<name …>` (attributes are skipped, with quote tracking so
//!   `>` inside an attribute value does not end the tag), end tags
//!   `</name>`, and self-closing tags `<name …/>`;
//! * character data, comments (`<!-- … -->`), CDATA sections
//!   (`<![CDATA[ … ]]>`), processing instructions (`<?…?>`) and doctype-ish
//!   `<!…>` constructs (with `[…]` internal-subset nesting) are consumed
//!   and ignored — content models constrain *element* children only, which
//!   matches [`DocumentValidator`]'s event model;
//! * anything unparsable (stray `<`, `<>`, `</>`, garbage after an end-tag
//!   name, a non-UTF-8 element name) is reported as a [`Tag::Error`], which
//!   the service converts into a [`Code::MalformedMarkup`] diagnostic.
//!
//! No byte is ever buffered except the current partial tag name, so a
//! warmed tokenizer feeds without allocating.
//!
//! [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
//! [`DocumentValidator`]: crate::DocumentValidator
//! [`Code::MalformedMarkup`]: redet_core::Code::MalformedMarkup

/// One tag-level event produced by the tokenizer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Tag<'a> {
    /// A start tag `<name …>`.
    Open(&'a str),
    /// A self-closing tag `<name …/>`: open and immediately close.
    OpenClose(&'a str),
    /// An end tag `</name>`. The service checks the name against the
    /// innermost open element (the tokenizer itself does no matching).
    Close(&'a str),
    /// Markup the minimal grammar cannot parse.
    Error(&'static str),
}

/// Which quote character an attribute value is currently inside.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Quote {
    #[default]
    None,
    Single,
    Double,
}

/// The scanner position. Everything is `Copy` plain data; together with the
/// partial-name buffer it is the *entire* cross-chunk state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum State {
    /// Character data between tags (ignored).
    #[default]
    Text,
    /// Just after `<`.
    Lt,
    /// Accumulating a start-tag name into the buffer.
    OpenName,
    /// Accumulating an end-tag name into the buffer.
    CloseName,
    /// Inside a start tag after the name, skipping attributes. `slash` is
    /// set when the previous meaningful byte was `/` (self-closing if `>`
    /// follows).
    Attrs { quote: Quote, slash: bool },
    /// After `</name` — only whitespace may precede the `>`.
    CloseEnd,
    /// Just after `<!`, before the construct is identified.
    Bang,
    /// After `<!-`, expecting the second `-` of a comment opener.
    BangDash,
    /// Matching the `CDATA[` discriminator after `<![`, byte by byte.
    CdataPrefix { matched: u8 },
    /// Inside `<![CDATA[ … ]]>`; `brackets` counts trailing `]`s seen.
    Cdata { brackets: u8 },
    /// Inside `<!-- … -->`; `dashes` counts trailing `-`s seen.
    Comment { dashes: u8 },
    /// Inside a doctype-ish `<!…>` construct; `depth` tracks `[…]` nesting
    /// (internal subsets contain `>`s of their own) and `quote` an open
    /// system/public literal (which may legally contain `>`, `[`, `]`).
    Doctype { depth: u8, quote: Quote },
    /// Inside `<?…?>`; `qm` is set when the previous byte was `?`.
    Pi { qm: bool },
}

/// Which tag the current byte completed; the name sits in the buffer.
#[derive(Clone, Copy)]
enum Finish {
    Open,
    OpenClose,
    Close,
}

const CDATA_PREFIX: &[u8] = b"CDATA[";

/// The streaming scanner; see the module docs. One per in-flight document —
/// chunk boundaries may fall anywhere, so the state must persist between
/// [`Tokenizer::feed`] calls.
#[derive(Debug, Default)]
pub(crate) struct Tokenizer {
    state: State,
    /// Bytes of the current (possibly chunk-split) tag name.
    name: Vec<u8>,
}

impl Tokenizer {
    /// Whether the scanner is between constructs — the end-of-document
    /// well-formedness check (`finish` inside a tag is malformed markup).
    pub(crate) fn is_idle(&self) -> bool {
        self.state == State::Text
    }

    /// Resets the scanner for the next document, keeping the name buffer's
    /// capacity.
    pub(crate) fn reset(&mut self) {
        self.state = State::Text;
        self.name.clear();
    }

    /// Scans one chunk, invoking `sink` for every completed tag. The sink
    /// returns `false` to stop the scan (the service does this when the
    /// document is rejected); remaining bytes of the chunk are dropped and
    /// `feed` returns `false`. Returns `true` when the whole chunk was
    /// consumed.
    pub(crate) fn feed(&mut self, bytes: &[u8], sink: &mut dyn FnMut(Tag<'_>) -> bool) -> bool {
        for &b in bytes {
            let mut emit: Option<Tag<'static>> = None;
            // Set when the byte completes a tag whose name sits in the
            // buffer (resolved to UTF-8 outside the match, so the borrow of
            // `self.name` does not overlap `self.state`).
            let mut finish: Option<Finish> = None;
            self.state = match self.state {
                State::Text => match b {
                    b'<' => State::Lt,
                    _ => State::Text,
                },
                State::Lt => match b {
                    b'/' => {
                        self.name.clear();
                        State::CloseName
                    }
                    b'!' => State::Bang,
                    b'?' => State::Pi { qm: false },
                    b'>' => {
                        emit = Some(Tag::Error("empty tag '<>'"));
                        State::Text
                    }
                    _ if is_name_byte(b) => {
                        self.name.clear();
                        self.name.push(b);
                        State::OpenName
                    }
                    _ => {
                        emit = Some(Tag::Error("stray '<' is not followed by a tag name"));
                        State::Text
                    }
                },
                State::OpenName => match b {
                    b'>' => {
                        finish = Some(Finish::Open);
                        State::Text
                    }
                    b'/' => State::Attrs {
                        quote: Quote::None,
                        slash: true,
                    },
                    _ if b.is_ascii_whitespace() => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                    b'<' => {
                        emit = Some(Tag::Error("'<' inside a tag"));
                        State::Text
                    }
                    _ if is_name_byte(b) => {
                        self.name.push(b);
                        State::OpenName
                    }
                    _ => {
                        emit = Some(Tag::Error("malformed start tag"));
                        State::Text
                    }
                },
                State::Attrs { quote, slash } => match (quote, b) {
                    (Quote::Single, b'\'') | (Quote::Double, b'"') => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                    (Quote::Single, _) | (Quote::Double, _) => State::Attrs { quote, slash },
                    (Quote::None, b'>') => {
                        finish = Some(if slash {
                            Finish::OpenClose
                        } else {
                            Finish::Open
                        });
                        State::Text
                    }
                    (Quote::None, b'/') => State::Attrs {
                        quote: Quote::None,
                        slash: true,
                    },
                    (Quote::None, b'\'') => State::Attrs {
                        quote: Quote::Single,
                        slash: false,
                    },
                    (Quote::None, b'"') => State::Attrs {
                        quote: Quote::Double,
                        slash: false,
                    },
                    (Quote::None, b'<') => {
                        emit = Some(Tag::Error("'<' inside a tag"));
                        State::Text
                    }
                    (Quote::None, _) => State::Attrs {
                        quote: Quote::None,
                        slash: false,
                    },
                },
                State::CloseName => match b {
                    b'>' if self.name.is_empty() => {
                        emit = Some(Tag::Error("end tag '</>' has no name"));
                        State::Text
                    }
                    b'>' => {
                        finish = Some(Finish::Close);
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() && self.name.is_empty() => {
                        emit = Some(Tag::Error("end tag '</ ' has no name"));
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() => State::CloseEnd,
                    _ if is_name_byte(b) => {
                        self.name.push(b);
                        State::CloseName
                    }
                    _ => {
                        emit = Some(Tag::Error("malformed end tag"));
                        State::Text
                    }
                },
                State::CloseEnd => match b {
                    b'>' => {
                        finish = Some(Finish::Close);
                        State::Text
                    }
                    _ if b.is_ascii_whitespace() => State::CloseEnd,
                    _ => {
                        emit = Some(Tag::Error("garbage after an end-tag name"));
                        State::Text
                    }
                },
                State::Bang => match b {
                    b'-' => State::BangDash,
                    b'[' => State::CdataPrefix { matched: 0 },
                    b'>' => State::Text,
                    _ => State::Doctype {
                        depth: 0,
                        quote: Quote::None,
                    },
                },
                State::BangDash => match b {
                    b'-' => State::Comment { dashes: 0 },
                    b'>' => State::Text,
                    _ => State::Doctype {
                        depth: 0,
                        quote: Quote::None,
                    },
                },
                State::CdataPrefix { matched } => {
                    if b == CDATA_PREFIX[matched as usize] {
                        if matched as usize + 1 == CDATA_PREFIX.len() {
                            State::Cdata { brackets: 0 }
                        } else {
                            State::CdataPrefix {
                                matched: matched + 1,
                            }
                        }
                    } else {
                        // Not a CDATA section after all (`<![INCLUDE[` …):
                        // treat it as a doctype-ish marked section. The `[`
                        // already consumed opened one nesting level.
                        let depth = match b {
                            b']' => 0,
                            b'[' => 2,
                            _ => 1,
                        };
                        State::Doctype {
                            depth,
                            quote: match b {
                                b'\'' => Quote::Single,
                                b'"' => Quote::Double,
                                _ => Quote::None,
                            },
                        }
                    }
                }
                State::Cdata { brackets } => match b {
                    b']' => State::Cdata {
                        brackets: (brackets + 1).min(2),
                    },
                    b'>' if brackets >= 2 => State::Text,
                    _ => State::Cdata { brackets: 0 },
                },
                State::Comment { dashes } => match b {
                    b'-' => State::Comment {
                        dashes: (dashes + 1).min(2),
                    },
                    b'>' if dashes >= 2 => State::Text,
                    _ => State::Comment { dashes: 0 },
                },
                State::Doctype { depth, quote } => match (quote, b) {
                    // Inside a system/public literal everything is inert
                    // until the matching quote — literals legally contain
                    // `>`, `[` and `]`.
                    (Quote::Single, b'\'') | (Quote::Double, b'"') => State::Doctype {
                        depth,
                        quote: Quote::None,
                    },
                    (Quote::Single, _) | (Quote::Double, _) => State::Doctype { depth, quote },
                    (Quote::None, b'\'') => State::Doctype {
                        depth,
                        quote: Quote::Single,
                    },
                    (Quote::None, b'"') => State::Doctype {
                        depth,
                        quote: Quote::Double,
                    },
                    (Quote::None, b'[') => State::Doctype {
                        depth: depth.saturating_add(1),
                        quote: Quote::None,
                    },
                    (Quote::None, b']') => State::Doctype {
                        depth: depth.saturating_sub(1),
                        quote: Quote::None,
                    },
                    (Quote::None, b'>') if depth == 0 => State::Text,
                    (Quote::None, _) => State::Doctype {
                        depth,
                        quote: Quote::None,
                    },
                },
                State::Pi { qm } => match b {
                    b'?' => State::Pi { qm: true },
                    b'>' if qm => State::Text,
                    _ => State::Pi { qm: false },
                },
            };
            if let Some(kind) = finish {
                let keep_going = match std::str::from_utf8(&self.name) {
                    Ok(name) => sink(match kind {
                        Finish::Open => Tag::Open(name),
                        Finish::OpenClose => Tag::OpenClose(name),
                        Finish::Close => Tag::Close(name),
                    }),
                    Err(_) => sink(Tag::Error("element name is not valid UTF-8")),
                };
                self.name.clear();
                if !keep_going {
                    return false;
                }
            } else if let Some(tag) = emit {
                self.name.clear();
                if !sink(tag) {
                    return false;
                }
            }
        }
        true
    }
}

/// Bytes allowed in element names. Deliberately permissive (tag soup): any
/// byte that cannot terminate or confuse a tag, including multi-byte UTF-8
/// sequences, counts as a name byte; real name validation happens against
/// the schema's alphabet.
#[inline]
fn is_name_byte(b: u8) -> bool {
    !(b.is_ascii_whitespace()
        || matches!(b, b'<' | b'>' | b'/' | b'!' | b'?' | b'=' | b'"' | b'\''))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects the tags of a byte stream, splitting it into chunks of
    /// `chunk` bytes (0 = one chunk).
    fn scan(input: &str, chunk: usize) -> Vec<String> {
        let mut t = Tokenizer::default();
        let mut out = Vec::new();
        let mut push = |tag: Tag<'_>| {
            out.push(match tag {
                Tag::Open(n) => format!("<{n}>"),
                Tag::OpenClose(n) => format!("<{n}/>"),
                Tag::Close(n) => format!("</{n}>"),
                Tag::Error(e) => format!("!{e}"),
            });
            true
        };
        if chunk == 0 {
            assert!(t.feed(input.as_bytes(), &mut push));
        } else {
            for part in input.as_bytes().chunks(chunk) {
                assert!(t.feed(part, &mut push));
            }
        }
        assert!(t.is_idle(), "scanner left inside a construct");
        out
    }

    #[test]
    fn plain_tags_and_text() {
        assert_eq!(scan("<a>text<b/>more</a>", 0), vec!["<a>", "<b/>", "</a>"]);
    }

    #[test]
    fn attributes_with_tricky_quotes() {
        assert_eq!(
            scan(r#"<a href="x>y" title='a/b'><b checked/></a>"#, 0),
            vec!["<a>", "<b/>", "</a>"]
        );
    }

    #[test]
    fn comments_cdata_pi_doctype_are_skipped() {
        let input = "<?xml version=\"1.0\"?>\
                     <!DOCTYPE doc [ <!ELEMENT doc (a)*> ]>\
                     <doc><!-- a > b --><a/><![CDATA[ <not-a-tag> ]]></doc>";
        assert_eq!(scan(input, 0), vec!["<doc>", "<a/>", "</doc>"]);
    }

    #[test]
    fn doctype_literals_may_contain_markup_characters() {
        // SystemLiteral legally contains '>' and '<'; quote tracking keeps
        // the doctype from terminating early.
        let input = "<!DOCTYPE doc SYSTEM \"x>y<z\" [ <!ENTITY e '>]'> ]><doc><a/></doc>";
        assert_eq!(scan(input, 0), vec!["<doc>", "<a/>", "</doc>"]);
        for chunk in 1..input.len() {
            assert_eq!(
                scan(input, chunk),
                vec!["<doc>", "<a/>", "</doc>"],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn every_chunk_size_agrees() {
        let input = "<?pi data?><doc attr=\"v>\"><!--c--><a x='1'/>t<b></b><![CDATA[]]]>]]></doc>";
        let whole = scan(input, 0);
        for chunk in 1..input.len() {
            assert_eq!(scan(input, chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn malformed_markup_is_reported() {
        assert_eq!(scan("<>", 0), vec!["!empty tag '<>'"]);
        assert_eq!(scan("</>", 0), vec!["!end tag '</>' has no name"]);
        assert_eq!(scan("<a=b>", 0)[0], "!malformed start tag");
        assert_eq!(
            scan("< a>", 0)[0],
            "!stray '<' is not followed by a tag name"
        );
        assert_eq!(scan("</a b>", 0)[0], "!garbage after an end-tag name");
    }

    #[test]
    fn idle_only_between_constructs() {
        let mut t = Tokenizer::default();
        assert!(t.feed(b"<partial-na", &mut |_| true));
        assert!(!t.is_idle());
        assert!(t.feed(b"me>", &mut |tag| {
            assert_eq!(tag, Tag::Open("partial-name"));
            true
        }));
        assert!(t.is_idle());
        t.reset();
        assert!(t.is_idle());
    }

    #[test]
    fn sink_can_stop_the_scan() {
        let mut t = Tokenizer::default();
        let mut seen = 0;
        assert!(!t.feed(b"<a><b><c>", &mut |_| {
            seen += 1;
            false
        }));
        assert_eq!(seen, 1);
    }
}
