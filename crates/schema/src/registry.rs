//! Multi-tenant schema registry: content-hashed compile cache, concurrent
//! corpus compilation, and atomic hot-swap.
//!
//! A validation *service* assumes one compiled [`Schema`]; a validation
//! *fleet* sees thousands of schemas arriving, repeating, and changing
//! while documents are in flight. This module is the layer between
//! compilation and serving that makes that cheap:
//!
//! * **Content-hashed cache** — [`Registry::compile`] keys compiled
//!   artifacts by a 128-bit hash of the *whitespace-normalized* DTD text
//!   ([`content_hash`]), so byte-identical schema text — across tenants,
//!   reconnects, and repeated `redet serve --schema` flags — compiles
//!   exactly once and shares one `Arc<Schema>`. Hit/miss/compile counters
//!   ([`Registry::stats`]) make the dedup auditable.
//! * **Concurrent corpus compilation** — [`Registry::compile_corpus`] fans
//!   a batch of DTD sources across `std::thread::scope` workers (the same
//!   sharding pattern as [`crate::ValidatorPool`]), deduplicating by hash
//!   *before* any thread spawns, and returns input-order results. This is
//!   the multi-threaded entry point into [`crate::SchemaBuilder`] — the
//!   builder and its [`redet_core::Pipeline`] are owned per worker, and
//!   the produced [`Schema`]s are `Send + Sync`.
//! * **Atomic hot-swap** — [`SharedSchema`] is a per-schema-id epoch
//!   handle: [`SharedSchema::publish`] atomically replaces the current
//!   `Arc<Schema>` and bumps the epoch, [`SharedSchema::load`] binds a
//!   caller to whatever is current. Handles already validating keep their
//!   own `Arc` clone until they finish, so the old artifact drops exactly
//!   when its last in-flight document closes. Built on
//!   `RwLock<Arc<Schema>>`: the workspace forbids `unsafe`, which rules
//!   out a homemade ArcSwap, and the write lock is held only for a
//!   pointer-sized store — readers clone an `Arc` under a read lock, a
//!   few nanoseconds, never across validation work.
//!
//! ```
//! use redet_schema::registry::Registry;
//!
//! let mut registry = Registry::new();
//! let a = registry.compile("<!ELEMENT note (#PCDATA)>").unwrap();
//! let b = registry.compile("<!ELEMENT  note  (#PCDATA)>  ").unwrap();
//! assert!(std::sync::Arc::ptr_eq(&a, &b)); // normalized text, one artifact
//! assert_eq!(registry.stats().compiled, 1);
//! assert_eq!(registry.stats().hits, 1);
//! ```

use crate::{Schema, SchemaBuilder};
use redet_core::Diagnostic;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Content hash of DTD source text: 128-bit FNV-1a over the
/// whitespace-normalized bytes.
///
/// Normalization folds every run of ASCII whitespace (space, tab, CR, LF,
/// form feed) to a single space and ignores leading/trailing whitespace,
/// so reformatting a DTD — reflowing declarations, converting line
/// endings, trailing newlines — does not change its identity. Anything
/// inside the text that survives normalization (names, models, attribute
/// defaults) does. The hash is dependency-free and streaming: no
/// intermediate normalized string is allocated.
#[must_use]
pub fn content_hash(source: &str) -> u128 {
    let mut hash = FNV_OFFSET;
    let mut pending_space = false;
    let mut started = false;
    for &byte in source.as_bytes() {
        if byte.is_ascii_whitespace() {
            pending_space = started;
            continue;
        }
        if pending_space {
            hash = (hash ^ u128::from(b' ')).wrapping_mul(FNV_PRIME);
            pending_space = false;
        }
        started = true;
        hash = (hash ^ u128::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Where a [`Registry::compile_traced`] artifact came from: a cache hit or
/// a fresh pipeline compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// The normalized source hashed to an already-compiled artifact.
    Cached,
    /// The source was compiled through a fresh [`SchemaBuilder`] pipeline.
    Compiled,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Provenance::Cached => "cached",
            Provenance::Compiled => "compiled",
        })
    }
}

/// Cache-audit counters of a [`Registry`]; see [`Registry::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Compile requests served from the content-hash cache (including
    /// batch-mates of a source compiled earlier in the same
    /// [`Registry::compile_corpus`] call).
    pub hits: u64,
    /// Compile requests that could not be served from the cache — each
    /// distinct new text counts once per request that forced or awaited
    /// its compilation's first run (failures count every time: rejected
    /// sources are never cached).
    pub misses: u64,
    /// Pipeline compilations actually performed (successes and failures).
    /// For a corpus of 256 sources with 32 distinct texts on a fresh
    /// registry this is exactly 32.
    pub compiled: u64,
    /// Distinct artifacts currently cached.
    pub cached: usize,
}

/// A per-schema-id hot-swap handle: the atomically publishable "current
/// schema" slot of the registry.
///
/// Cheap to share (`Arc<SharedSchema>`): front ends hold one handle per
/// schema id and [`SharedSchema::load`] the current artifact when opening
/// a document. [`SharedSchema::publish`] replaces the artifact atomically
/// and bumps the [`SharedSchema::epoch`] — loads that raced before the
/// publish keep their (old) `Arc` and finish on it; loads after bind the
/// new one. The old artifact is freed by `Arc` reference counting the
/// moment its last holder drops — the registry never has to track
/// in-flight documents.
#[derive(Debug)]
pub struct SharedSchema {
    current: RwLock<Arc<Schema>>,
    epoch: AtomicU64,
}

impl SharedSchema {
    /// Wraps `schema` as the handle's first published artifact (epoch 0).
    #[must_use]
    pub fn new(schema: Arc<Schema>) -> Self {
        SharedSchema {
            current: RwLock::new(schema),
            epoch: AtomicU64::new(0),
        }
    }

    /// The currently published artifact. The returned `Arc` is the
    /// caller's to keep: a publish after this load does not affect it.
    #[must_use]
    pub fn load(&self) -> Arc<Schema> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the published artifact and returns the new
    /// epoch. Loads strictly ordered after this call observe `schema`;
    /// earlier loads keep the artifact they bound.
    pub fn publish(&self, schema: Arc<Schema>) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(PoisonError::into_inner);
        *slot = schema;
        // Bumped while the write lock is held, so epoch observations under
        // a subsequent load() are never behind the artifact they saw.
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// How many times [`SharedSchema::publish`] has replaced the artifact
    /// (0 for a freshly created handle).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// The multi-tenant schema registry: a content-hashed compile cache plus
/// named hot-swap slots.
///
/// Compilation goes through [`Registry::compile`] (or the batched,
/// multi-threaded [`Registry::compile_corpus`]): identical normalized DTD
/// text compiles once and every caller shares the same `Arc<Schema>`.
/// Serving goes through named slots: [`Registry::publish`] compiles (or
/// cache-hits) a source and installs it under a schema id's
/// [`SharedSchema`] handle, which front ends watch for hot-swaps.
///
/// The registry itself is single-writer (`&mut self` for compilation and
/// publishing) — concurrency lives in `compile_corpus`'s scoped workers
/// and in the `SharedSchema` handles, which are freely shared across
/// threads.
#[derive(Debug, Default)]
pub struct Registry {
    cache: HashMap<u128, Arc<Schema>>,
    slots: Vec<(String, Arc<SharedSchema>)>,
    hits: u64,
    misses: u64,
    compiled: u64,
}

impl Registry {
    /// Creates an empty registry: no cached artifacts, no published ids.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Compiles DTD source text, serving byte-identical (after whitespace
    /// normalization) text from the cache. On failure the *first* build
    /// diagnostic is returned — run [`SchemaBuilder`] directly for the
    /// full list — and nothing is cached: rejected text recompiles on
    /// every request.
    pub fn compile(&mut self, source: &str) -> Result<Arc<Schema>, Diagnostic> {
        self.compile_traced(source).map(|(schema, _)| schema)
    }

    /// [`Registry::compile`] plus the artifact's [`Provenance`] — whether
    /// this request hit the cache or performed a pipeline compilation.
    pub fn compile_traced(
        &mut self,
        source: &str,
    ) -> Result<(Arc<Schema>, Provenance), Diagnostic> {
        let hash = content_hash(source);
        if let Some(schema) = self.cache.get(&hash) {
            self.hits += 1;
            return Ok((Arc::clone(schema), Provenance::Cached));
        }
        self.misses += 1;
        self.compiled += 1;
        let schema = Self::build_one(source)?;
        self.cache.insert(hash, Arc::clone(&schema));
        Ok((schema, Provenance::Compiled))
    }

    /// Compiles a batch of DTD sources across up to `workers` scoped
    /// threads, returning one result per source in input order.
    ///
    /// Sources are hashed and deduplicated — against the cache *and*
    /// within the batch — before any thread spawns, so a corpus of 256
    /// sources with 32 distinct texts performs exactly 32 pipeline
    /// compilations, however the duplicates are ordered. Every occurrence
    /// of the same text receives the same `Arc<Schema>` (or, for text
    /// that fails to build, a clone of the same first diagnostic —
    /// failures compile once per batch but are never cached across
    /// calls). Each worker owns its own [`SchemaBuilder`] pipeline;
    /// `workers` is clamped to the number of pending distinct sources,
    /// and a single-shard batch compiles inline on the caller's thread.
    pub fn compile_corpus<S: AsRef<str> + Sync>(
        &mut self,
        sources: &[S],
        workers: usize,
    ) -> Vec<Result<Arc<Schema>, Diagnostic>> {
        let hashes: Vec<u128> = sources
            .iter()
            .map(|source| content_hash(source.as_ref()))
            .collect();
        let cached_at_entry: Vec<bool> = hashes
            .iter()
            .map(|hash| self.cache.contains_key(hash))
            .collect();
        // Dedup before spawning: one job per distinct uncached text.
        let mut pending: Vec<(u128, &str)> = Vec::new();
        for (index, &hash) in hashes.iter().enumerate() {
            if !cached_at_entry[index] && !pending.iter().any(|&(seen, _)| seen == hash) {
                pending.push((hash, sources[index].as_ref()));
            }
        }

        let mut outcomes: Vec<Option<Result<Arc<Schema>, Diagnostic>>> = Vec::new();
        outcomes.resize_with(pending.len(), || None);
        let shards = workers.max(1).min(pending.len().max(1));
        if shards <= 1 {
            for ((_, source), slot) in pending.iter().zip(&mut outcomes) {
                *slot = Some(Self::build_one(source));
            }
        } else {
            // Balanced contiguous shards, same split as ValidatorPool.
            let base = pending.len() / shards;
            let extra = pending.len() % shards;
            std::thread::scope(|scope| {
                let mut job_rest = pending.as_slice();
                let mut out_rest = outcomes.as_mut_slice();
                for shard in 0..shards {
                    let take = base + usize::from(shard < extra);
                    let (jobs, jobs_tail) = job_rest.split_at(take);
                    let (outs, outs_tail) = out_rest.split_at_mut(take);
                    job_rest = jobs_tail;
                    out_rest = outs_tail;
                    scope.spawn(move || {
                        for ((_, source), slot) in jobs.iter().zip(outs) {
                            *slot = Some(Self::build_one(source));
                        }
                    });
                }
            });
        }

        self.compiled += pending.len() as u64;
        let mut failures: Vec<(u128, Diagnostic)> = Vec::new();
        for ((hash, _), outcome) in pending.iter().zip(outcomes) {
            match outcome.expect("every shard fills its assigned slots") {
                Ok(schema) => {
                    self.cache.insert(*hash, schema);
                }
                Err(diagnostic) => failures.push((*hash, diagnostic)),
            }
        }

        let mut counted_first: Vec<u128> = Vec::new();
        hashes
            .iter()
            .zip(cached_at_entry)
            .map(|(&hash, was_cached)| {
                if let Some(schema) = self.cache.get(&hash) {
                    // First occurrence of a batch-compiled text is the
                    // miss; its batch-mates hit the just-filled cache.
                    if was_cached || counted_first.contains(&hash) {
                        self.hits += 1;
                    } else {
                        self.misses += 1;
                        counted_first.push(hash);
                    }
                    Ok(Arc::clone(schema))
                } else {
                    self.misses += 1;
                    let diagnostic = failures
                        .iter()
                        .find(|(failed, _)| *failed == hash)
                        .map(|(_, diagnostic)| diagnostic.clone())
                        .expect("uncached batch source must have a recorded failure");
                    Err(diagnostic)
                }
            })
            .collect()
    }

    /// Compiles `source` and installs it as schema id `id`'s current
    /// artifact — creating the id's [`SharedSchema`] handle on first
    /// publish, atomically hot-swapping (epoch bump) on re-publish.
    /// Returns the published artifact; on a build failure nothing is
    /// swapped and the id keeps its previous artifact.
    pub fn publish(&mut self, id: &str, source: &str) -> Result<Arc<Schema>, Diagnostic> {
        let schema = self.compile(source)?;
        match self.slots.iter().find(|(slot_id, _)| slot_id == id) {
            Some((_, shared)) => {
                shared.publish(Arc::clone(&schema));
            }
            None => {
                self.slots.push((
                    id.to_owned(),
                    Arc::new(SharedSchema::new(Arc::clone(&schema))),
                ));
            }
        }
        Ok(schema)
    }

    /// The hot-swap handle of a published schema id, if any. Clone the
    /// `Arc` out to watch the id from other threads.
    #[must_use]
    pub fn handle(&self, id: &str) -> Option<&Arc<SharedSchema>> {
        self.slots
            .iter()
            .find(|(slot_id, _)| slot_id == id)
            .map(|(_, shared)| shared)
    }

    /// Published schema ids, in first-publish order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|(id, _)| id.as_str())
    }

    /// Cache-audit counters: cumulative hits/misses/compilations plus the
    /// current number of cached artifacts.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits,
            misses: self.misses,
            compiled: self.compiled,
            cached: self.cache.len(),
        }
    }

    fn build_one(source: &str) -> Result<Arc<Schema>, Diagnostic> {
        SchemaBuilder::new()
            .parse_dtd(source)
            .build()
            .map_err(|mut diagnostics| diagnostics.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note_dtd(extra: &str) -> String {
        format!("<!ELEMENT note (line{extra})*> <!ELEMENT line (#PCDATA)>")
    }

    #[test]
    fn hash_normalizes_whitespace() {
        let canonical = content_hash("<!ELEMENT a (b)> <!ELEMENT b EMPTY>");
        assert_eq!(
            content_hash("  <!ELEMENT a\t(b)>\r\n<!ELEMENT b EMPTY>\n"),
            canonical
        );
        assert_ne!(
            content_hash("<!ELEMENT a (b)> <!ELEMENT c EMPTY>"),
            canonical
        );
        // Whitespace folding must not merge adjacent tokens.
        assert_ne!(content_hash("a b"), content_hash("ab"));
    }

    #[test]
    fn identical_text_compiles_once() {
        let mut registry = Registry::new();
        let first = registry.compile(&note_dtd("")).unwrap();
        let second = registry.compile(&format!("  {}\n", note_dtd(""))).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.compiled, stats.cached),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn failures_are_not_cached() {
        let mut registry = Registry::new();
        let bad = "<!ELEMENT a (b | b)>"; // not deterministic
        assert!(registry.compile(bad).is_err());
        assert!(registry.compile(bad).is_err());
        let stats = registry.stats();
        assert_eq!((stats.misses, stats.compiled, stats.cached), (2, 2, 0));
    }

    #[test]
    fn corpus_dedups_before_compiling() {
        let mut registry = Registry::new();
        let sources: Vec<String> = (0..64).map(|i| note_dtd(&format!("{}", i % 8))).collect();
        let results = registry.compile_corpus(&sources, 4);
        assert_eq!(results.len(), 64);
        for (i, result) in results.iter().enumerate() {
            let schema = result.as_ref().unwrap();
            assert!(Arc::ptr_eq(schema, results[i % 8].as_ref().unwrap()));
        }
        let stats = registry.stats();
        assert_eq!(stats.compiled, 8);
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 56);
        assert_eq!(stats.cached, 8);
    }

    #[test]
    fn corpus_reports_per_source_failures() {
        let mut registry = Registry::new();
        let good = note_dtd("");
        let bad = "<!ELEMENT a (b | b)>".to_owned();
        let sources = [good.clone(), bad.clone(), good.clone(), bad.clone()];
        let results = registry.compile_corpus(&sources, 2);
        assert!(results[0].is_ok() && results[2].is_ok());
        let first = results[1].as_ref().unwrap_err();
        let second = results[3].as_ref().unwrap_err();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        let stats = registry.stats();
        // The failing text compiled once in the batch but is not cached.
        assert_eq!((stats.compiled, stats.cached), (2, 1));
        assert_eq!((stats.hits, stats.misses), (1, 3));
    }

    #[test]
    fn publish_creates_then_hot_swaps() {
        let mut registry = Registry::new();
        let v1 = registry.publish("notes", &note_dtd("")).unwrap();
        let handle = Arc::clone(registry.handle("notes").unwrap());
        assert_eq!(handle.epoch(), 0);
        assert!(Arc::ptr_eq(&handle.load(), &v1));

        let v2 = registry.publish("notes", &note_dtd("2")).unwrap();
        assert_eq!(handle.epoch(), 1);
        assert!(Arc::ptr_eq(&handle.load(), &v2));
        assert!(!Arc::ptr_eq(&v1, &v2));
        assert_eq!(registry.ids().collect::<Vec<_>>(), ["notes"]);

        // A failed publish keeps the previous artifact and epoch.
        assert!(registry
            .publish("notes", "<!ELEMENT note (line | line)>")
            .is_err());
        assert_eq!(handle.epoch(), 1);
        assert!(Arc::ptr_eq(&handle.load(), &v2));
    }

    #[test]
    fn registry_and_handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<SharedSchema>();
        assert_send_sync::<RegistryStats>();
    }

    #[test]
    fn shared_schema_loads_race_free_across_threads() {
        let mut registry = Registry::new();
        registry.publish("doc", &note_dtd("")).unwrap();
        let handle = Arc::clone(registry.handle("doc").unwrap());
        let variants: Vec<Arc<Schema>> = (0..4)
            .map(|i| registry.compile(&note_dtd(&format!("{i}"))).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let handle = &handle;
                let variants = &variants;
                scope.spawn(move || {
                    for round in 0..200 {
                        let schema = handle.load();
                        // Every load observes some fully published artifact.
                        assert!(schema.lookup("note").is_some());
                        if round % 5 == worker {
                            handle.publish(Arc::clone(&variants[round % variants.len()]));
                        }
                    }
                });
            }
        });
        assert!(handle.epoch() >= 1);
    }
}
