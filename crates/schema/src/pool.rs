//! Sharded parallel validation: one schema, many worker services.
//!
//! A compiled [`Schema`] is immutable and `Send + Sync`; validation state
//! lives entirely in the per-thread [`ValidationService`]s. A
//! [`ValidatorPool`] exploits that split: it keeps `M` warmed services
//! (each owning a clone of the schema's `Arc` plus its own recycled
//! validator buffers) and fans a batch of `N` documents across them with
//! [`std::thread::scope`] — balanced contiguous shards, results in input
//! order.
//!
//! The pool is a **thin client** of [`ValidationService`]: each worker runs
//! [`ValidationService::validate_events`] (`open` → `feed` → `finish`) per
//! document, so batch validation and interleaved connection serving share
//! one code path — including the service's fail-fast contract (each failed
//! document reports the earliest diagnostic of its validation) and its
//! [`ServiceLimits`] resource governance (see
//! [`ValidatorPool::with_limits`]).
//!
//! Workers are also **poison-tolerant**: each per-document validation runs
//! under [`std::panic::catch_unwind`], so a document that panics the
//! validator (a bug, or a hostile input hitting one) degrades to a
//! [`redet_core::Code::PoisonedDocument`] diagnostic for *that document
//! only*. The panicked worker's state is discarded and a fresh service is
//! warmed in its place; the batch keeps its input-order result contract
//! and every other document is unaffected.
//!
//! The pool outlives its batches, so the per-worker warm-up cost (frame
//! stack and counted-state buffers sized to the documents) is paid once:
//! after the first batch each worker's validation loop performs **no
//! allocation** for valid documents (enforced per-thread by the
//! counting-allocator regression test). Exactly one scoped thread is
//! spawned per *non-empty* shard — degenerate batches with fewer documents
//! than workers never spawn idle threads, and a single-shard batch runs
//! inline on the calling thread.

use crate::service::{ServiceLimits, ValidationService};
use crate::validator::DocEvent;
use crate::Schema;
use redet_core::{Code, Diagnostic};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A fixed set of warmed worker services over one shared [`Schema`]; see
/// the module docs.
///
/// ```
/// use redet_schema::{DocEvent, SchemaBuilder, ValidatorPool};
///
/// let schema = SchemaBuilder::new()
///     .element("pair", "(left, right)")
///     .element_empty("left")
///     .element_empty("right")
///     .build()
///     .unwrap();
/// let s = |name: &str| schema.lookup(name).unwrap();
/// let doc = vec![
///     DocEvent::Open(s("pair")),
///     DocEvent::Open(s("left")),
///     DocEvent::Close,
///     DocEvent::Open(s("right")),
///     DocEvent::Close,
///     DocEvent::Close,
/// ];
/// let documents = vec![doc.clone(), doc[..2].to_vec(), doc];
/// let mut pool = ValidatorPool::new(schema, 2);
/// let results = pool.validate_batch(&documents);
/// assert!(results[0].is_ok());
/// assert!(results[1].is_err()); // truncated document
/// assert!(results[2].is_ok());
/// ```
pub struct ValidatorPool {
    /// Kept for warming replacement workers after a poisoned document.
    schema: Arc<Schema>,
    limits: ServiceLimits,
    workers: Vec<ValidationService>,
}

impl ValidatorPool {
    /// Creates a pool of `workers` ungoverned services (at least one) over
    /// `schema`.
    #[must_use]
    pub fn new(schema: Arc<Schema>, workers: usize) -> Self {
        Self::with_limits(schema, workers, ServiceLimits::default())
    }

    /// Creates a pool whose workers are governed by `limits` — every
    /// per-document cap (depth, bytes, events, name length) applies to
    /// each batched document exactly as it would to an interleaved-serving
    /// handle, producing the same `E3xx` diagnostics. (The in-flight cap
    /// and idle budget are connection-serving concerns; batch workers hold
    /// one handle at a time and never idle mid-document.)
    #[must_use]
    pub fn with_limits(schema: Arc<Schema>, workers: usize, limits: ServiceLimits) -> Self {
        let workers = workers.max(1);
        ValidatorPool {
            workers: (0..workers)
                .map(|_| ValidationService::with_limits(Arc::clone(&schema), limits))
                .collect(),
            schema,
            limits,
        }
    }

    /// The shared schema the workers validate against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The resource-governance configuration each worker enforces.
    pub fn limits(&self) -> ServiceLimits {
        self.limits
    }

    /// Number of worker services.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Validates a batch of pre-interned documents, sharding them
    /// contiguously across the workers — balanced shard sizes, exactly one
    /// scoped thread per non-empty shard (fewer documents than workers
    /// never spawn idle threads; one shard runs inline). Results are
    /// returned in input order; each entry is exactly what a
    /// [`ValidationService::validate_events`] call would produce for that
    /// document (workers never share mutable state, so diagnostics are
    /// deterministic). A document that *panics* the validator yields a
    /// [`redet_core::Code::PoisonedDocument`] error in its slot — the
    /// worker is replaced and the rest of the batch is unaffected.
    pub fn validate_batch<D: AsRef<[DocEvent]> + Sync>(
        &mut self,
        documents: &[D],
    ) -> Vec<Result<(), Diagnostic>> {
        let mut results: Vec<Result<(), Diagnostic>> = Vec::with_capacity(documents.len());
        results.resize_with(documents.len(), || Ok(()));
        let shards = self.workers.len().min(documents.len());
        if shards == 0 {
            return results;
        }
        let schema = &self.schema;
        let limits = self.limits;
        if shards == 1 {
            // One shard: run inline on the calling thread — spawning a
            // scoped thread would add per-batch cost for zero parallelism.
            let worker = &mut self.workers[0];
            for (doc, slot) in documents.iter().zip(&mut results) {
                *slot = Self::validate_isolated(worker, schema, limits, doc.as_ref());
            }
            return results;
        }
        // Balanced contiguous shards: the first `extra` shards take one
        // extra document, so no worker idles while another holds two more.
        let base = documents.len() / shards;
        let extra = documents.len() % shards;
        std::thread::scope(|scope| {
            let mut docs_rest = documents;
            let mut results_rest = results.as_mut_slice();
            for (i, worker) in self.workers.iter_mut().take(shards).enumerate() {
                let take = base + usize::from(i < extra);
                let (docs, dr) = docs_rest.split_at(take);
                let (out, rr) = results_rest.split_at_mut(take);
                docs_rest = dr;
                results_rest = rr;
                scope.spawn(move || {
                    for (doc, slot) in docs.iter().zip(out) {
                        *slot = Self::validate_isolated(worker, schema, limits, doc.as_ref());
                    }
                });
            }
        });
        results
    }

    /// Runs one document under `catch_unwind`. On a panic the worker's
    /// state is suspect (an open handle, a half-pushed frame), so the
    /// whole service is discarded and a fresh one warmed in its place —
    /// which is also why `AssertUnwindSafe` is sound here: the only state
    /// the closure can leave broken is thrown away on the panic path.
    fn validate_isolated(
        worker: &mut ValidationService,
        schema: &Arc<Schema>,
        limits: ServiceLimits,
        events: &[DocEvent],
    ) -> Result<(), Diagnostic> {
        match catch_unwind(AssertUnwindSafe(|| worker.validate_events(events))) {
            Ok(verdict) => verdict,
            Err(payload) => {
                *worker = ValidationService::with_limits(Arc::clone(schema), limits);
                Err(Self::poisoned(payload.as_ref()))
            }
        }
    }

    /// The per-document diagnostic for a panicking validation, carrying
    /// the panic message when it is a string (the overwhelmingly common
    /// payload shape).
    fn poisoned(payload: &(dyn Any + Send)) -> Diagnostic {
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned());
        Diagnostic::new(
            Code::PoisonedDocument,
            match message {
                Some(message) => format!("document validation panicked: {message}"),
                None => "document validation panicked".to_owned(),
            },
        )
    }
}

impl std::fmt::Debug for ValidatorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidatorPool")
            .field("workers", &self.workers.len())
            .field("limits", &self.limits)
            .field("schema", self.schema())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;
    use redet_syntax::Symbol;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("doc", "(section)*")
            .element("section", "(para)*")
            .element_empty("para")
            .build()
            .unwrap()
    }

    fn document(schema: &Schema, sections: usize, valid: bool) -> Vec<DocEvent> {
        let doc = schema.lookup("doc").unwrap();
        let section = schema.lookup("section").unwrap();
        let para = schema.lookup("para").unwrap();
        let mut events = vec![DocEvent::Open(doc)];
        for _ in 0..sections {
            events.push(DocEvent::Open(section));
            events.push(DocEvent::Open(para));
            events.push(DocEvent::Close);
            events.push(DocEvent::Close);
        }
        if !valid {
            events.push(DocEvent::Open(para)); // para under doc: rejected
            events.push(DocEvent::Close);
        }
        events.push(DocEvent::Close);
        events
    }

    #[test]
    fn batches_preserve_input_order_and_verdicts() {
        let schema = schema();
        let documents: Vec<Vec<DocEvent>> = (0..23)
            .map(|i| document(&schema, i % 5, i % 3 != 0))
            .collect();
        let mut pool = ValidatorPool::new(Arc::clone(&schema), 4);
        assert_eq!(pool.workers(), 4);
        let results = pool.validate_batch(&documents);
        assert_eq!(results.len(), documents.len());
        let mut single = schema.service();
        for (i, (doc, result)) in documents.iter().zip(&results).enumerate() {
            let expected = single.validate_events(doc);
            assert_eq!(expected.is_ok(), result.is_ok(), "document {i}");
            assert_eq!(
                format!("{expected:?}"),
                format!("{result:?}"),
                "document {i}: diagnostics differ"
            );
        }
        // The pool is reusable (warmed workers).
        let again = pool.validate_batch(&documents);
        assert_eq!(format!("{results:?}"), format!("{again:?}"));
    }

    #[test]
    fn degenerate_batches() {
        let schema = schema();
        let mut pool = ValidatorPool::new(Arc::clone(&schema), 8);
        // Empty batch.
        assert!(pool.validate_batch::<Vec<DocEvent>>(&[]).is_empty());
        // Fewer documents than workers: every spawned shard is non-empty.
        for n in 1..8 {
            let documents: Vec<Vec<DocEvent>> =
                (0..n).map(|i| document(&schema, i, true)).collect();
            let results = pool.validate_batch(&documents);
            assert_eq!(results.len(), n);
            assert!(results.iter().all(Result::is_ok));
        }
        // Zero requested workers clamps to one.
        assert_eq!(ValidatorPool::new(schema, 0).workers(), 1);
    }

    #[test]
    fn schema_validate_batch_is_the_one_shot_form() {
        let schema = schema();
        let documents: Vec<Vec<DocEvent>> = (0..7).map(|i| document(&schema, i, true)).collect();
        let results = schema.validate_batch(&documents, 3);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn limits_thread_through_batches() {
        let schema = schema();
        let limits = ServiceLimits::default().with_max_depth(2);
        let mut pool = ValidatorPool::with_limits(Arc::clone(&schema), 2, limits);
        assert_eq!(pool.limits().max_depth(), Some(2));
        // depth 3 (doc > section > para) trips the cap; depth ≤ 2 passes.
        let shallow = vec![
            DocEvent::Open(schema.lookup("doc").unwrap()),
            DocEvent::Open(schema.lookup("section").unwrap()),
            DocEvent::Close,
            DocEvent::Close,
        ];
        let deep = document(&schema, 1, true);
        let results = pool.validate_batch(&[shallow, deep]);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err().code(),
            Code::DepthLimitExceeded
        );
    }

    /// A document whose symbol was never handed out by the schema's
    /// alphabet: feeding it violates `start_element_symbol`'s contract and
    /// panics the validator — deterministic poison for isolation tests.
    fn poison() -> Vec<DocEvent> {
        vec![DocEvent::Open(Symbol::from_index(9999))]
    }

    #[test]
    fn poisoned_documents_degrade_per_document() {
        let schema = schema();
        // Keep the panic backtraces out of the test output.
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut pool = ValidatorPool::new(Arc::clone(&schema), 3);
        let mut documents: Vec<Vec<DocEvent>> =
            (0..12).map(|i| document(&schema, i % 4, true)).collect();
        documents[2] = poison();
        documents[7] = poison();
        let results = pool.validate_batch(&documents);
        std::panic::set_hook(prior);
        assert_eq!(results.len(), 12);
        for (i, result) in results.iter().enumerate() {
            if i == 2 || i == 7 {
                let err = result.as_ref().unwrap_err();
                assert_eq!(err.code(), Code::PoisonedDocument, "document {i}");
            } else {
                assert!(result.is_ok(), "document {i}: {result:?}");
            }
        }
        // The pool healed: the replaced workers serve the next batch.
        documents[2] = document(&schema, 1, true);
        documents[7] = document(&schema, 2, true);
        let healed = pool.validate_batch(&documents);
        assert!(healed.iter().all(Result::is_ok));
    }
}
