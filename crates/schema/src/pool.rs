//! Sharded parallel validation: one schema, many worker services.
//!
//! A compiled [`Schema`] is immutable and `Send + Sync`; validation state
//! lives entirely in the per-thread [`ValidationService`]s. A
//! [`ValidatorPool`] exploits that split: it keeps `M` warmed services
//! (each owning a clone of the schema's `Arc` plus its own recycled
//! validator buffers) and fans a batch of `N` documents across them with
//! [`std::thread::scope`] — balanced contiguous shards, results in input
//! order.
//!
//! The pool is a **thin client** of [`ValidationService`]: each worker runs
//! [`ValidationService::validate_events`] (`open` → `feed` → `finish`) per
//! document, so batch validation and interleaved connection serving share
//! one code path — including the service's fail-fast contract (each failed
//! document reports the earliest diagnostic of its validation).
//!
//! The pool outlives its batches, so the per-worker warm-up cost (frame
//! stack and counted-state buffers sized to the documents) is paid once:
//! after the first batch each worker's validation loop performs **no
//! allocation** for valid documents (enforced per-thread by the
//! counting-allocator regression test). Exactly one scoped thread is
//! spawned per *non-empty* shard — degenerate batches with fewer documents
//! than workers never spawn idle threads, and a single-shard batch runs
//! inline on the calling thread.

use crate::service::ValidationService;
use crate::validator::DocEvent;
use crate::Schema;
use redet_core::Diagnostic;
use std::sync::Arc;

/// A fixed set of warmed worker services over one shared [`Schema`]; see
/// the module docs.
///
/// ```
/// use redet_schema::{DocEvent, SchemaBuilder, ValidatorPool};
///
/// let schema = SchemaBuilder::new()
///     .element("pair", "(left, right)")
///     .element_empty("left")
///     .element_empty("right")
///     .build()
///     .unwrap();
/// let s = |name: &str| schema.lookup(name).unwrap();
/// let doc = vec![
///     DocEvent::Open(s("pair")),
///     DocEvent::Open(s("left")),
///     DocEvent::Close,
///     DocEvent::Open(s("right")),
///     DocEvent::Close,
///     DocEvent::Close,
/// ];
/// let documents = vec![doc.clone(), doc[..2].to_vec(), doc];
/// let mut pool = ValidatorPool::new(schema, 2);
/// let results = pool.validate_batch(&documents);
/// assert!(results[0].is_ok());
/// assert!(results[1].is_err()); // truncated document
/// assert!(results[2].is_ok());
/// ```
pub struct ValidatorPool {
    workers: Vec<ValidationService>,
}

impl ValidatorPool {
    /// Creates a pool of `workers` services (at least one) over `schema`.
    #[must_use]
    pub fn new(schema: Arc<Schema>, workers: usize) -> Self {
        let workers = workers.max(1);
        ValidatorPool {
            workers: (0..workers)
                .map(|_| ValidationService::new(Arc::clone(&schema)))
                .collect(),
        }
    }

    /// The shared schema the workers validate against.
    pub fn schema(&self) -> &Schema {
        self.workers[0].schema()
    }

    /// Number of worker services.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Validates a batch of pre-interned documents, sharding them
    /// contiguously across the workers — balanced shard sizes, exactly one
    /// scoped thread per non-empty shard (fewer documents than workers
    /// never spawn idle threads; one shard runs inline). Results are
    /// returned in input order; each entry is exactly what a
    /// [`ValidationService::validate_events`] call would produce for that
    /// document (workers never share mutable state, so diagnostics are
    /// deterministic).
    pub fn validate_batch<D: AsRef<[DocEvent]> + Sync>(
        &mut self,
        documents: &[D],
    ) -> Vec<Result<(), Diagnostic>> {
        let mut results: Vec<Result<(), Diagnostic>> = Vec::with_capacity(documents.len());
        results.resize_with(documents.len(), || Ok(()));
        let shards = self.workers.len().min(documents.len());
        if shards == 0 {
            return results;
        }
        if shards == 1 {
            // One shard: run inline on the calling thread — spawning a
            // scoped thread would add per-batch cost for zero parallelism.
            let worker = &mut self.workers[0];
            for (doc, slot) in documents.iter().zip(&mut results) {
                *slot = worker.validate_events(doc.as_ref());
            }
            return results;
        }
        // Balanced contiguous shards: the first `extra` shards take one
        // extra document, so no worker idles while another holds two more.
        let base = documents.len() / shards;
        let extra = documents.len() % shards;
        std::thread::scope(|scope| {
            let mut docs_rest = documents;
            let mut results_rest = results.as_mut_slice();
            for (i, worker) in self.workers.iter_mut().take(shards).enumerate() {
                let take = base + usize::from(i < extra);
                let (docs, dr) = docs_rest.split_at(take);
                let (out, rr) = results_rest.split_at_mut(take);
                docs_rest = dr;
                results_rest = rr;
                scope.spawn(move || {
                    for (doc, slot) in docs.iter().zip(out) {
                        *slot = worker.validate_events(doc.as_ref());
                    }
                });
            }
        });
        results
    }
}

impl std::fmt::Debug for ValidatorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidatorPool")
            .field("workers", &self.workers.len())
            .field("schema", self.schema())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("doc", "(section)*")
            .element("section", "(para)*")
            .element_empty("para")
            .build()
            .unwrap()
    }

    fn document(schema: &Schema, sections: usize, valid: bool) -> Vec<DocEvent> {
        let doc = schema.lookup("doc").unwrap();
        let section = schema.lookup("section").unwrap();
        let para = schema.lookup("para").unwrap();
        let mut events = vec![DocEvent::Open(doc)];
        for _ in 0..sections {
            events.push(DocEvent::Open(section));
            events.push(DocEvent::Open(para));
            events.push(DocEvent::Close);
            events.push(DocEvent::Close);
        }
        if !valid {
            events.push(DocEvent::Open(para)); // para under doc: rejected
            events.push(DocEvent::Close);
        }
        events.push(DocEvent::Close);
        events
    }

    #[test]
    fn batches_preserve_input_order_and_verdicts() {
        let schema = schema();
        let documents: Vec<Vec<DocEvent>> = (0..23)
            .map(|i| document(&schema, i % 5, i % 3 != 0))
            .collect();
        let mut pool = ValidatorPool::new(Arc::clone(&schema), 4);
        assert_eq!(pool.workers(), 4);
        let results = pool.validate_batch(&documents);
        assert_eq!(results.len(), documents.len());
        let mut single = schema.service();
        for (i, (doc, result)) in documents.iter().zip(&results).enumerate() {
            let expected = single.validate_events(doc);
            assert_eq!(expected.is_ok(), result.is_ok(), "document {i}");
            assert_eq!(
                format!("{expected:?}"),
                format!("{result:?}"),
                "document {i}: diagnostics differ"
            );
        }
        // The pool is reusable (warmed workers).
        let again = pool.validate_batch(&documents);
        assert_eq!(format!("{results:?}"), format!("{again:?}"));
    }

    #[test]
    fn degenerate_batches() {
        let schema = schema();
        let mut pool = ValidatorPool::new(Arc::clone(&schema), 8);
        // Empty batch.
        assert!(pool.validate_batch::<Vec<DocEvent>>(&[]).is_empty());
        // Fewer documents than workers: every spawned shard is non-empty.
        for n in 1..8 {
            let documents: Vec<Vec<DocEvent>> =
                (0..n).map(|i| document(&schema, i, true)).collect();
            let results = pool.validate_batch(&documents);
            assert_eq!(results.len(), n);
            assert!(results.iter().all(Result::is_ok));
        }
        // Zero requested workers clamps to one.
        assert_eq!(ValidatorPool::new(schema, 0).workers(), 1);
    }

    #[test]
    fn schema_validate_batch_is_the_one_shot_form() {
        let schema = schema();
        let documents: Vec<Vec<DocEvent>> = (0..7).map(|i| document(&schema, i, true)).collect();
        let results = schema.validate_batch(&documents, 3);
        assert!(results.iter().all(Result::is_ok));
    }
}
