//! Schema-level validation: many content models, one alphabet, streaming
//! documents.
//!
//! The paper's algorithms exist to validate *streams of XML documents
//! against whole DTDs/XSDs* — many deterministic content models sharing one
//! element-name alphabet, matched event-by-event as documents arrive. This
//! crate is that production surface:
//!
//! * [`SchemaBuilder`] collects element and attribute declarations —
//!   programmatically or from a DTD fragment (`<!ELEMENT …>` and
//!   `<!ATTLIST …>` lines) — and compiles every content model through
//!   **one** shared [`redet_core::Pipeline`]/[`Alphabet`], so every
//!   element *and attribute* name is interned exactly once and all models
//!   agree on dense symbol ids; per-element flat attribute tables record
//!   which attributes are declared and which are `#REQUIRED`, and mixed
//!   content (`#PCDATA`/`ANY`) records where character data is allowed;
//! * [`Schema`] is the immutable compile-once artifact (`Send + Sync`,
//!   hand it around in an [`Arc`]): per-element matchers with automatically
//!   selected strategies, determinism certificates, and a flat per-symbol
//!   dispatch table feeding the validation hot path;
//! * [`DocumentValidator`] validates a nested document in one pass from
//!   `start_element`/`end_element` events, holding a stack of plain-data
//!   cursor frames — allocation-free in steady state, hash-free when
//!   elements are pre-interned to [`Symbol`]s via [`Schema::lookup`], and
//!   `Send` (it owns its schema `Arc`);
//! * [`ValidationService`] is the connection-oriented surface: `open()`
//!   hands out resumable [`DocId`] handles, `feed`/`feed_bytes` advance any
//!   number of interleaved in-flight documents by events *or raw bytes*
//!   (chunk boundaries anywhere, even mid-tag) with fail-fast rejection,
//!   `finish` checks end-of-document acceptance — all buffers recycled
//!   through a slab;
//! * [`tokenizer`] — the bulk-scanning byte scanner behind `feed_bytes`:
//!   SWAR delimiter search ([`redet_core::bytescan`]) consumes whole
//!   character-data/comment/attribute runs per step and borrows tag names
//!   straight out of the input chunk;
//! * [`ValidatorPool`] / [`Schema::validate_batch`] shard a batch of
//!   documents across warmed worker services on scoped threads — a thin
//!   client of [`ValidationService`], so batch and interleaved serving
//!   share one code path.
//!
//! Failures — at build time and at validation time — surface as structured
//! [`Diagnostic`]s with stable codes, byte spans into the DTD source, and
//! (for validation) the element path and event index.
//!
//! ```
//! use redet_schema::SchemaBuilder;
//!
//! let schema = SchemaBuilder::new()
//!     .parse_dtd(
//!         "<!ELEMENT bibliography (book)*>
//!          <!ELEMENT book (title, author+, year?)>
//!          <!ELEMENT title (#PCDATA)>",
//!     )
//!     .build()
//!     .unwrap();
//!
//! let mut validator = schema.validator();
//! validator.start_element("bibliography");
//! validator.start_element("book");
//! validator.start_element("title");
//! validator.end_element();
//! validator.start_element("author");
//! validator.end_element();
//! validator.end_element();
//! validator.end_element();
//! assert!(validator.finish().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtd;
mod pool;
pub mod registry;
mod service;
pub mod tokenizer;
mod validator;

pub use pool::ValidatorPool;
pub use registry::{content_hash, Provenance, Registry, RegistryStats, SharedSchema};
pub use service::{DocId, FeedStatus, ServiceLimits, ValidationService};
pub use tokenizer::{Tag, Tokenizer};
pub use validator::{DocEvent, DocumentValidator};

use crate::dtd::{parse_dtd_fragment, ParsedContent};
use redet_core::{Code, DeterministicRegex, Diagnostic, MatchStrategy, Pipeline};
use redet_syntax::{Alphabet, Span, Symbol};
use redet_tree::PosId;
use std::collections::HashSet;
use std::sync::Arc;

/// How an element's content is declared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentKind {
    /// A deterministic content model constrains the children.
    Model,
    /// `EMPTY` (or `(#PCDATA)`): no element children allowed.
    Empty,
    /// `ANY`: any sequence of children.
    Any,
    /// The name occurs in some content model but carries no declaration of
    /// its own; validated like `EMPTY`.
    Undeclared,
}

enum Content {
    Model(DeterministicRegex),
    Empty,
    Any,
    Undeclared,
}

impl Content {
    fn kind(&self) -> ContentKind {
        match self {
            Content::Model(_) => ContentKind::Model,
            Content::Empty => ContentKind::Empty,
            Content::Any => ContentKind::Any,
            Content::Undeclared => ContentKind::Undeclared,
        }
    }
}

/// One entry of the flat per-symbol dispatch table: everything
/// `DocumentValidator::start_element_symbol` needs to know about a symbol —
/// the content kind *and* the session starter — in a single indexed load,
/// replacing the old `content_of` enum walk plus
/// `Option<&DeterministicRegex>` chasing on every open event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Dispatch {
    /// Declared with a position-machine content model; the payload is the
    /// model's start position, so opening the element touches no model
    /// state at all.
    Pos(PosId),
    /// Declared with a counted content model (`e{i,j}`), validated by the
    /// owned-state set-of-positions simulation.
    Counted,
    /// `EMPTY` / `(#PCDATA)`: no element children allowed.
    Empty,
    /// `ANY`: children unconstrained.
    Any,
    /// Referenced but never declared: `EMPTY` semantics.
    Undeclared,
}

/// One declared attribute of an element in the schema-wide flat attribute
/// table: the attribute name's dense symbol index and whether a start tag
/// must carry it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AttrDecl {
    /// Dense symbol index of the attribute's name (attribute names share
    /// the element-name alphabet, so `feed_bytes` resolves them through
    /// the same packed-key [`NameIndex`]).
    pub sym: u32,
    /// Whether the attribute was declared `#REQUIRED`.
    pub required: bool,
}

/// Flat open-addressed element-name index with an FNV-1a hash, built once
/// at schema compile time. [`Schema::lookup`] probes this instead of the
/// alphabet's `HashMap`: name→symbol resolution is the per-open-tag cost of
/// the raw-byte ingestion path ([`ValidationService::feed_bytes`] resolves
/// every start tag by name), and FNV over a short name plus a linear probe
/// is several times cheaper than a SipHash `HashMap` hit.
/// One [`NameIndex`] slot: the name's confirmation key (see
/// [`NameIndex::key`]) next to its packed symbol word, so a probe touches
/// a single cache line.
#[derive(Clone, Copy, Debug, Default)]
struct NameSlot {
    /// The name key word; meaningful only when `sym != 0`.
    key: u64,
    /// `(capped length << SYM_BITS) | (symbol index + 1)`, 0 = empty.
    /// Together with `key`, equality *is* name equality for names of at
    /// most eight bytes, so the common probe never touches the name's
    /// bytes again.
    sym: u32,
}

#[derive(Debug)]
struct NameIndex {
    /// Power-of-two open-addressed table.
    slots: Vec<NameSlot>,
    mask: usize,
}

impl NameIndex {
    /// Slot-word bits holding the symbol index; the capped name length
    /// occupies the rest.
    const SYM_BITS: u32 = 24;
    const SYM_MASK: u32 = (1 << Self::SYM_BITS) - 1;

    fn build(alphabet: &Alphabet) -> Self {
        assert!(
            (alphabet.len() as u32) < Self::SYM_MASK,
            "alphabet too large for the packed name index"
        );
        let capacity = (alphabet.len() * 2).next_power_of_two().max(8);
        let mut index = NameIndex {
            slots: vec![NameSlot::default(); capacity],
            mask: capacity - 1,
        };
        for sym in alphabet.symbols() {
            let name = alphabet.name(sym).as_bytes();
            let (w, len) = Self::key(name);
            let mut slot = Self::hash(w, name) & index.mask;
            while index.slots[slot].sym != 0 {
                slot = (slot + 1) & index.mask;
            }
            index.slots[slot] = NameSlot {
                key: w,
                sym: (len << Self::SYM_BITS) | (sym.index() as u32 + 1),
            };
        }
        index
    }

    /// The confirmation key of a name: its first eight bytes as a
    /// little-endian word (shorter names zero-padded) plus its capped
    /// byte length. For names within one word the pair uniquely
    /// identifies the name; longer names still need one final byte
    /// compare.
    ///
    /// Sub-word names are assembled from two *overlapping* fixed-width
    /// loads (head and tail of the name) — the overlapped bytes are the
    /// same bytes in both loads, so ORing the shifted halves reconstructs
    /// the exact zero-padded value with no variable-length copy and no
    /// per-byte shift chain.
    #[inline]
    fn key(name: &[u8]) -> (u64, u32) {
        let len = name.len();
        let w = if len >= 8 {
            u64::from_le_bytes(name[..8].try_into().expect("8-byte head"))
        } else if len >= 4 {
            let lo = u32::from_le_bytes(name[..4].try_into().expect("4-byte head")) as u64;
            let hi = u32::from_le_bytes(name[len - 4..].try_into().expect("4-byte tail")) as u64;
            lo | (hi << (8 * (len - 4)))
        } else if len >= 2 {
            let lo = u16::from_le_bytes(name[..2].try_into().expect("2-byte head")) as u64;
            let hi = u16::from_le_bytes(name[len - 2..].try_into().expect("2-byte tail")) as u64;
            lo | (hi << (8 * (len - 2)))
        } else if len == 1 {
            name[0] as u64
        } else {
            0
        };
        (w, len.min(255) as u32)
    }

    /// Multiplicative hash over little-endian words of the name — one mix
    /// per eight bytes instead of FNV's per-byte multiply chain. `w` is
    /// the name's precomputed [`NameIndex::key`] word, so a name within
    /// one word (the typical case) hashes with a single multiply and no
    /// further loads. Only self-consistency matters: the table is built
    /// and probed with the same function in the same process.
    #[inline]
    fn hash(w: u64, name: &[u8]) -> usize {
        const K: u64 = 0x2545_F491_4F6C_DD1D;
        let mut h = (name.len() as u64 ^ 0xCBF2_9CE4_8422_2325 ^ w).wrapping_mul(K);
        if name.len() > 8 {
            let mut chunks = name[8..].chunks_exact(8);
            for chunk in &mut chunks {
                let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                h = (h ^ w).wrapping_mul(K);
            }
            let (t, _) = Self::key(chunks.remainder());
            h = (h ^ t).wrapping_mul(K);
        }
        (h ^ (h >> 32)) as usize
    }

    /// Probes for `name` (raw bytes); `alphabet` holds the dense name
    /// table used to confirm candidates longer than a key word. Byte-keyed
    /// so the raw-byte ingestion path can resolve tag names without a
    /// UTF-8 round trip — a hit proves the bytes valid UTF-8, since they
    /// equal a schema name's.
    #[inline]
    fn lookup(&self, alphabet: &Alphabet, name: &[u8]) -> Option<Symbol> {
        let (w, len) = Self::key(name);
        let mut slot = Self::hash(w, name) & self.mask;
        loop {
            let stored = self.slots[slot];
            if stored.sym == 0 {
                return None;
            }
            if stored.key == w && stored.sym >> Self::SYM_BITS == len {
                let sym = Symbol::from_index((stored.sym & Self::SYM_MASK) as usize - 1);
                if name.len() <= 8 || alphabet.name(sym).as_bytes() == name {
                    return Some(sym);
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// An immutable compiled schema: every content model compiled through one
/// shared pipeline, per-element strategies selected automatically,
/// determinism certificates retained. `Send + Sync` — one `Arc<Schema>` can
/// serve many validator threads.
///
/// ```
/// use redet_schema::SchemaBuilder;
/// use std::sync::Arc;
///
/// let schema: Arc<redet_schema::Schema> = SchemaBuilder::new()
///     .element("pair", "(left, right)")
///     .build()
///     .unwrap();
/// let pair = schema.lookup("pair").unwrap();
/// assert!(schema.model(pair).is_some());
/// // "left" and "right" are interned but undeclared: EMPTY semantics.
/// let left = schema.lookup("left").unwrap();
/// assert!(schema.model(left).is_none());
/// ```
pub struct Schema {
    alphabet: Alphabet,
    /// Dense per-symbol content table (index = `Symbol::index()`).
    content: Vec<Content>,
    /// Flat per-symbol dispatch table (index = `Symbol::index()`) — the
    /// validation hot path reads this instead of walking `content`.
    dispatch: Vec<Dispatch>,
    /// Flat FNV name index — the name→symbol hot path behind
    /// [`Schema::lookup`].
    names: NameIndex,
    /// Dense per-symbol name key (index = `Symbol::index()`) — the
    /// end-tag name check of the raw-byte ingestion path compares keys
    /// instead of name bytes.
    name_keys: Vec<(u64, u32)>,
    /// Declared elements in declaration order.
    declared: Vec<Symbol>,
    /// Every element's declared attributes, concatenated in declaration
    /// order; `attr_ranges` slices it per element.
    attrs: Vec<AttrDecl>,
    /// Per-symbol `(start, len)` range into `attrs`
    /// (index = `Symbol::index()`).
    attr_ranges: Vec<(u32, u32)>,
    /// Per-symbol bitmask of the `#REQUIRED` entries of the element's
    /// attribute range (bit `i` = `i`-th declared attribute; ranges are
    /// capped at 64 entries at build time).
    required_masks: Vec<u64>,
    /// Per-symbol "character data allowed" flag: `ANY`, `(#PCDATA)` and
    /// mixed `(#PCDATA | …)*` content.
    text_ok: Vec<bool>,
}

impl Schema {
    /// Looks up an element name, returning its pre-interned symbol. Do this
    /// once per distinct tag name and feed the symbols to
    /// [`DocumentValidator::start_element_symbol`] — the validation hot
    /// loop then never hashes strings. The lookup itself runs on a flat
    /// FNV-probed table (a few ns), since the raw-byte ingestion path
    /// resolves every start tag through it.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.names.lookup(&self.alphabet, name.as_bytes())
    }

    /// [`Schema::lookup`] keyed by raw name bytes, as handed out by the
    /// streaming tokenizer. A hit implies the bytes are valid UTF-8 (they
    /// compared equal to an interned name), which is how the raw-byte
    /// ingestion path skips per-tag UTF-8 validation: only unknown names
    /// fall back to [`std::str::from_utf8`].
    #[inline]
    pub fn lookup_bytes(&self, name: &[u8]) -> Option<Symbol> {
        self.names.lookup(&self.alphabet, name)
    }

    /// Whether `name` (raw bytes) is exactly `sym`'s name — the end-tag
    /// well-formedness check of the raw-byte ingestion path. Key equality
    /// settles names within one word (the typical case) with two integer
    /// compares; only longer names re-touch the bytes.
    #[inline]
    pub(crate) fn name_matches(&self, sym: Symbol, name: &[u8]) -> bool {
        self.name_keys[sym.index()] == NameIndex::key(name)
            && (name.len() <= 8 || self.alphabet.name(sym).as_bytes() == name)
    }

    /// The name of a symbol of this schema's alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        self.alphabet.name(sym)
    }

    /// The schema-wide alphabet (declared and referenced element names).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of element declarations.
    pub fn len(&self) -> usize {
        self.declared.len()
    }

    /// Whether the schema declares no elements.
    pub fn is_empty(&self) -> bool {
        self.declared.is_empty()
    }

    /// Declared elements, in declaration order.
    pub fn elements(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.declared.iter().copied()
    }

    /// How the element's content is declared.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    pub fn content_kind(&self, sym: Symbol) -> ContentKind {
        self.content[sym.index()].kind()
    }

    /// The flat dispatch entry of a symbol — the validation hot path.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    #[inline]
    pub(crate) fn dispatch(&self, sym: Symbol) -> Dispatch {
        self.dispatch[sym.index()]
    }

    /// The content model at a dense symbol index, or `None` when the symbol
    /// is out of range or carries no model — the validator's safe release
    /// path for its "model frames have a model" invariant.
    #[inline]
    pub(crate) fn model_at(&self, index: u32) -> Option<&DeterministicRegex> {
        match self.content.get(index as usize) {
            Some(Content::Model(m)) => Some(m),
            _ => None,
        }
    }

    /// The declared attributes of the element at dense symbol index
    /// `index`, plus the global offset of that range in the flat table
    /// (the validator's epoch-stamped duplicate scratch indexes globally).
    /// Empty for out-of-range indices (the unknown-element sentinel).
    #[inline]
    pub(crate) fn attrs_of(&self, index: u32) -> (&[AttrDecl], u32) {
        match self.attr_ranges.get(index as usize) {
            Some(&(start, len)) => (&self.attrs[start as usize..(start + len) as usize], start),
            None => (&[], 0),
        }
    }

    /// Bitmask of the `#REQUIRED` attributes of the element at dense
    /// symbol index `index`; zero for out-of-range indices.
    #[inline]
    pub(crate) fn required_mask(&self, index: u32) -> u64 {
        self.required_masks
            .get(index as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Whether character data is allowed inside the element at dense
    /// symbol index `index` (`ANY`, `(#PCDATA)`, or mixed content).
    #[inline]
    pub(crate) fn text_allowed(&self, index: u32) -> bool {
        self.text_ok.get(index as usize).copied().unwrap_or(false)
    }

    /// Total number of attribute declarations across all elements — the
    /// size of the validator's per-document attribute scratch.
    pub(crate) fn attr_decl_count(&self) -> usize {
        self.attrs.len()
    }

    /// The compiled content model of `sym`, when it is declared with one.
    /// Exposes the per-element strategy ([`DeterministicRegex::strategy`]),
    /// certificate, statistics and incremental sessions.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    pub fn model(&self, sym: Symbol) -> Option<&DeterministicRegex> {
        match &self.content[sym.index()] {
            Content::Model(m) => Some(m),
            _ => None,
        }
    }

    /// Opens an event-driven validator over this schema. The validator
    /// owns a clone of the [`Arc`], so it can be moved across threads and
    /// stored anywhere. Keep it around and validate many documents with it
    /// — its recycled frame stack and scratch pool make steady-state
    /// validation allocation-free.
    #[must_use]
    pub fn validator(self: &Arc<Self>) -> DocumentValidator {
        DocumentValidator::new(Arc::clone(self))
    }

    /// Opens a connection-oriented [`ValidationService`] over this schema:
    /// many in-flight documents, fed by events or raw bytes in any
    /// interleaving, with fail-fast rejection. See the service docs.
    #[must_use]
    pub fn service(self: &Arc<Self>) -> ValidationService {
        ValidationService::new(Arc::clone(self))
    }

    /// Opens a [`ValidationService`] governed by `limits`: per-document
    /// depth/byte/event/name caps, service-wide admission control, and an
    /// idle budget for [`ValidationService::tick`] sweeps. See
    /// [`ServiceLimits`].
    #[must_use]
    pub fn service_with_limits(self: &Arc<Self>, limits: ServiceLimits) -> ValidationService {
        ValidationService::with_limits(Arc::clone(self), limits)
    }

    /// Validates a batch of pre-interned documents, fanning them out over
    /// `workers` threads (each with its own warmed [`ValidationService`]).
    /// Results come back in input order; a failed document carries the
    /// earliest diagnostic of its validation (the service is fail-fast).
    /// This is the one-shot form of [`ValidatorPool::validate_batch`] — for
    /// repeated batches build a [`ValidatorPool`] once and reuse its warmed
    /// workers.
    pub fn validate_batch<D: AsRef<[DocEvent]> + Sync>(
        self: &Arc<Self>,
        documents: &[D],
        workers: usize,
    ) -> Vec<Result<(), Diagnostic>> {
        ValidatorPool::new(Arc::clone(self), workers).validate_batch(documents)
    }
}

impl std::fmt::Debug for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Schema")
            .field("elements", &self.declared.len())
            .field("alphabet", &self.alphabet.len())
            .finish()
    }
}

struct Decl {
    name: String,
    name_span: Option<Span>,
    content: ParsedContent,
}

/// One attribute-list declaration accumulated by the builder, from
/// [`SchemaBuilder::attribute`] or a DTD `<!ATTLIST …>`.
struct AttlistDecl {
    element: String,
    element_span: Option<Span>,
    attrs: Vec<AttrSource>,
}

struct AttrSource {
    name: String,
    name_span: Option<Span>,
    required: bool,
}

/// At most this many declared attributes per element: the validator tracks
/// missing `#REQUIRED` attributes in one 64-bit mask per open start tag.
const MAX_ATTRS_PER_ELEMENT: usize = 64;

/// Collects element declarations and compiles them into an immutable
/// [`Schema`].
///
/// Declarations come from [`SchemaBuilder::element`] /
/// [`SchemaBuilder::element_empty`] / [`SchemaBuilder::element_any`], or in
/// bulk from a DTD fragment via [`SchemaBuilder::parse_dtd`]. All
/// diagnostics — malformed DTD declarations, duplicate elements,
/// non-deterministic or unparsable content models — are collected and
/// reported together by [`SchemaBuilder::build`].
#[derive(Default)]
pub struct SchemaBuilder {
    decls: Vec<Decl>,
    attlists: Vec<AttlistDecl>,
    pending: Vec<Diagnostic>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an element with a content model in the expression syntax of
    /// `redet-syntax` (DTD operators `,`, `|`, `?`, `*`, `+` plus
    /// XML-Schema-style `{i,j}` counters).
    #[must_use]
    pub fn element(mut self, name: &str, model: &str) -> Self {
        self.decls.push(Decl {
            name: name.to_owned(),
            name_span: None,
            content: ParsedContent::Model {
                source: model.to_owned(),
                offset: 0,
                mixed: false,
            },
        });
        self
    }

    /// Declares an element with *mixed* content: the children must match
    /// `model`, and character data is allowed between them (the
    /// programmatic form of a DTD `(#PCDATA | a | b)*` declaration).
    #[must_use]
    pub fn element_mixed(mut self, name: &str, model: &str) -> Self {
        self.decls.push(Decl {
            name: name.to_owned(),
            name_span: None,
            content: ParsedContent::Model {
                source: model.to_owned(),
                offset: 0,
                mixed: true,
            },
        });
        self
    }

    /// Declares an element with `EMPTY` content (no element children, no
    /// character data).
    #[must_use]
    pub fn element_empty(mut self, name: &str) -> Self {
        self.decls.push(Decl {
            name: name.to_owned(),
            name_span: None,
            content: ParsedContent::Empty { text: false },
        });
        self
    }

    /// Declares an element with `(#PCDATA)` content: character data only,
    /// no element children.
    #[must_use]
    pub fn element_text(mut self, name: &str) -> Self {
        self.decls.push(Decl {
            name: name.to_owned(),
            name_span: None,
            content: ParsedContent::Empty { text: true },
        });
        self
    }

    /// Declares one attribute of `element`; `required` marks it
    /// `#REQUIRED` (the programmatic form of `<!ATTLIST element name CDATA
    /// #REQUIRED>`). Attributes accumulate across calls like repeated
    /// `<!ATTLIST>` declarations do, and the first declaration of a name
    /// wins, per XML.
    #[must_use]
    pub fn attribute(mut self, element: &str, name: &str, required: bool) -> Self {
        self.attlists.push(AttlistDecl {
            element: element.to_owned(),
            element_span: None,
            attrs: vec![AttrSource {
                name: name.to_owned(),
                name_span: None,
                required,
            }],
        });
        self
    }

    /// Declares an element with `ANY` content (children unconstrained).
    #[must_use]
    pub fn element_any(mut self, name: &str) -> Self {
        self.decls.push(Decl {
            name: name.to_owned(),
            name_span: None,
            content: ParsedContent::Any,
        });
        self
    }

    /// Adds every `<!ELEMENT …>` and `<!ATTLIST …>` declaration of a DTD
    /// fragment. Malformed declarations are recorded and reported by
    /// [`SchemaBuilder::build`].
    ///
    /// # Duplicate declarations
    ///
    /// Repetition is **not** silently first-wins across the board — the
    /// two declaration kinds pin different contracts (also exercised by
    /// the duplicate-declaration tests and documented in DESIGN.md):
    ///
    /// * a repeated `<!ELEMENT>` for the same element name — within one
    ///   fragment, across `parse_dtd` calls, or mixed with the
    ///   programmatic `element*` builders — is a
    ///   [`Code::DuplicateElement`] **build error**: two content models
    ///   for one element is a schema bug, not a preference;
    /// * a repeated *attribute name* for the same element — within one
    ///   `<!ATTLIST>`, across several, or across fragments — follows the
    ///   XML specification: the **first declaration wins** and later ones
    ///   are ignored (including their `#REQUIRED` flag). Multiple
    ///   `<!ATTLIST>` lines for one element merge; only attribute *names*
    ///   deduplicate.
    #[must_use]
    pub fn parse_dtd(mut self, source: &str) -> Self {
        let (decls, attlists, diagnostics) = parse_dtd_fragment(source);
        self.pending.extend(diagnostics);
        self.decls.extend(decls.into_iter().map(|d| Decl {
            name: d.name,
            name_span: Some(d.name_span),
            content: d.content,
        }));
        self.attlists.extend(attlists.into_iter().map(|a| {
            AttlistDecl {
                element: a.element,
                element_span: Some(a.element_span),
                attrs: a
                    .attrs
                    .into_iter()
                    .map(|attr| AttrSource {
                        name: attr.name,
                        name_span: Some(attr.name_span),
                        required: attr.required,
                    })
                    .collect(),
            }
        }));
        self
    }

    /// Compiles every declaration through one shared pipeline into an
    /// immutable [`Schema`]. On failure returns **all** diagnostics, each
    /// carrying its code, source span, and (for determinism conflicts) the
    /// witness positions.
    pub fn build(self) -> Result<Arc<Schema>, Vec<Diagnostic>> {
        let mut diagnostics = self.pending;
        let mut pipeline = Pipeline::new();
        // Pre-intern every declared name: models may reference elements
        // declared later and still share the complete dense symbol space.
        for decl in &self.decls {
            pipeline.intern(&decl.name);
        }

        let mut compiled: Vec<(Symbol, Content)> = Vec::with_capacity(self.decls.len());
        let mut text_decls: Vec<(Symbol, bool)> = Vec::with_capacity(self.decls.len());
        let mut seen: HashSet<Symbol> = HashSet::with_capacity(self.decls.len());
        for decl in &self.decls {
            let sym = pipeline.intern(&decl.name);
            if !seen.insert(sym) {
                let mut diag = Diagnostic::new(
                    Code::DuplicateElement,
                    format!("element '{}' is declared more than once", decl.name),
                );
                if let Some(span) = decl.name_span {
                    diag = diag.with_span(span);
                }
                diagnostics.push(diag);
                continue;
            }
            text_decls.push((
                sym,
                matches!(
                    &decl.content,
                    ParsedContent::Any
                        | ParsedContent::Empty { text: true }
                        | ParsedContent::Model { mixed: true, .. }
                ),
            ));
            let content = match &decl.content {
                ParsedContent::Empty { .. } => Content::Empty,
                ParsedContent::Any => Content::Any,
                ParsedContent::Model { source, offset, .. } => {
                    match pipeline
                        .compile(source)
                        .and_then(|artifact| {
                            DeterministicRegex::from_compiled(artifact, MatchStrategy::Auto)
                        })
                        .map_err(|diag| {
                            diag.offset_spans(*offset)
                                .with_context(&format!("in the content model of <{}>", decl.name))
                        }) {
                        Ok(model) => Content::Model(model),
                        Err(diag) => {
                            diagnostics.push(diag);
                            continue;
                        }
                    }
                }
            };
            compiled.push((sym, content));
        }

        // Merge the attribute lists per element (several <!ATTLIST>s for
        // one element accumulate; the first declaration of an attribute
        // name wins, per XML) and intern every attribute name into the
        // shared alphabet so `feed_bytes` resolves them through the same
        // packed-key index as element names.
        let mut merged: Vec<(Symbol, Vec<(Symbol, bool)>)> = Vec::new();
        for attlist in &self.attlists {
            let elem = pipeline.intern(&attlist.element);
            let list = match merged.iter_mut().find(|(sym, _)| *sym == elem) {
                Some((_, list)) => list,
                None => {
                    merged.push((elem, Vec::new()));
                    &mut merged.last_mut().expect("just pushed").1
                }
            };
            for attr in &attlist.attrs {
                let sym = pipeline.intern(&attr.name);
                if list.iter().any(|(s, _)| *s == sym) {
                    continue; // first declaration wins
                }
                if list.len() == MAX_ATTRS_PER_ELEMENT {
                    let mut diag = Diagnostic::new(
                        Code::MalformedDtd,
                        format!(
                            "element '{}' declares more than {MAX_ATTRS_PER_ELEMENT} \
                             attributes (the per-element limit)",
                            attlist.element
                        ),
                    );
                    if let Some(span) = attr.name_span.or(attlist.element_span) {
                        diag = diag.with_span(span);
                    }
                    diagnostics.push(diag);
                    break;
                }
                list.push((sym, attr.required));
            }
        }

        if !diagnostics.is_empty() {
            return Err(diagnostics);
        }

        let alphabet = pipeline.alphabet().clone();
        let mut content: Vec<Content> = (0..alphabet.len()).map(|_| Content::Undeclared).collect();
        let mut declared = Vec::with_capacity(compiled.len());
        for (sym, c) in compiled {
            content[sym.index()] = c;
            declared.push(sym);
        }
        let mut text_ok = vec![false; alphabet.len()];
        for (sym, text) in text_decls {
            text_ok[sym.index()] = text;
        }
        let mut attrs = Vec::new();
        let mut attr_ranges = vec![(0u32, 0u32); alphabet.len()];
        let mut required_masks = vec![0u64; alphabet.len()];
        for (elem, list) in merged {
            let start = attrs.len() as u32;
            for (sym, required) in &list {
                attrs.push(AttrDecl {
                    sym: sym.index() as u32,
                    required: *required,
                });
            }
            let mask = attrs[start as usize..]
                .iter()
                .enumerate()
                .filter(|(_, decl)| decl.required)
                .fold(0u64, |mask, (i, _)| mask | (1 << i));
            attr_ranges[elem.index()] = (start, list.len() as u32);
            required_masks[elem.index()] = mask;
        }
        // Precompute the flat dispatch table: kind + session starter in one
        // load, so opening an element never walks the content enum.
        let dispatch = content
            .iter()
            .map(|c| match c {
                Content::Model(m) => match m.pos_begin() {
                    Some(begin) => Dispatch::Pos(begin),
                    None => Dispatch::Counted,
                },
                Content::Empty => Dispatch::Empty,
                Content::Any => Dispatch::Any,
                Content::Undeclared => Dispatch::Undeclared,
            })
            .collect();
        let names = NameIndex::build(&alphabet);
        let name_keys = alphabet
            .symbols()
            .map(|sym| NameIndex::key(alphabet.name(sym).as_bytes()))
            .collect();
        Ok(Arc::new(Schema {
            alphabet,
            content,
            dispatch,
            names,
            name_keys,
            declared,
            attrs,
            attr_ranges,
            required_masks,
            text_ok,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn schemas_are_send_sync() {
        assert_send_sync::<Schema>();
        assert_send_sync::<Arc<Schema>>();
    }

    #[test]
    fn one_alphabet_across_all_models() {
        let schema = SchemaBuilder::new()
            .element("book", "(title, author+, year?)")
            .element("article", "(title, author+, journal)")
            .build()
            .unwrap();
        assert_eq!(schema.len(), 2);
        // "title" means the same symbol in both models — and both models'
        // snapshots contain the declared names, whatever the order.
        let title = schema.lookup("title").unwrap();
        let book = schema.lookup("book").unwrap();
        let article = schema.lookup("article").unwrap();
        assert_eq!(
            schema.model(book).unwrap().alphabet().lookup("title"),
            Some(title)
        );
        assert_eq!(
            schema.model(article).unwrap().alphabet().lookup("title"),
            Some(title)
        );
        assert_eq!(schema.content_kind(title), ContentKind::Undeclared);
    }

    #[test]
    fn models_may_reference_later_declarations() {
        let schema = SchemaBuilder::new()
            .element("doc", "(section)*")
            .element("section", "(para)*")
            .element_empty("para")
            .build()
            .unwrap();
        let doc = schema.lookup("doc").unwrap();
        let section = schema.lookup("section").unwrap();
        // The `doc` model was compiled before `section` was processed, yet
        // its alphabet snapshot knows the symbol (pre-interning).
        assert!(schema
            .model(doc)
            .unwrap()
            .alphabet()
            .lookup("para")
            .is_some());
        assert_eq!(schema.content_kind(section), ContentKind::Model);
    }

    #[test]
    fn per_element_strategies_are_selected() {
        let schema = SchemaBuilder::new()
            .element("starfree", "(a + b) (c + d)?")
            .element("plus", "(title, author+)")
            .element("counted", "(item{1,10}, total)")
            .build()
            .unwrap();
        let strategy = |name: &str| {
            schema
                .model(schema.lookup(name).unwrap())
                .unwrap()
                .strategy()
        };
        assert_eq!(strategy("starfree"), MatchStrategy::StarFree);
        assert_eq!(strategy("plus"), MatchStrategy::KOccurrence);
        assert_eq!(strategy("counted"), MatchStrategy::CountedSimulation);
        // Counting-free models keep their determinism certificates.
        assert!(schema
            .model(schema.lookup("plus").unwrap())
            .unwrap()
            .certificate()
            .is_some());
    }

    #[test]
    fn build_collects_all_diagnostics() {
        let err = SchemaBuilder::new()
            .element("ok", "(a, b)")
            .element("broken", "a b* b")
            .element("ok", "(c)")
            .element("unparsable", "(a,")
            .build()
            .unwrap_err();
        let codes: Vec<Code> = err.iter().map(|d| d.code()).collect();
        assert!(codes.contains(&Code::NotDeterministic), "{codes:?}");
        assert!(codes.contains(&Code::DuplicateElement), "{codes:?}");
        assert!(codes.contains(&Code::Parse), "{codes:?}");
        // The determinism diagnostic names the element and keeps the
        // witness.
        let nondet = err
            .iter()
            .find(|d| d.code() == Code::NotDeterministic)
            .unwrap();
        assert!(
            nondet.message().contains("<broken>"),
            "{}",
            nondet.message()
        );
        assert!(nondet.witness().is_some());
    }

    #[test]
    fn attribute_tables_are_compiled_per_element() {
        let schema = SchemaBuilder::new()
            .parse_dtd(
                "<!ELEMENT book (title)>
                 <!ELEMENT title (#PCDATA)>
                 <!ATTLIST book isbn CDATA #REQUIRED lang (en|de) \"en\">
                 <!ATTLIST book isbn CDATA #IMPLIED edition CDATA #IMPLIED>",
            )
            .build()
            .unwrap();
        let book = schema.lookup("book").unwrap();
        let (attrs, _) = schema.attrs_of(book.index() as u32);
        let names: Vec<&str> = attrs
            .iter()
            .map(|a| schema.name(Symbol::from_index(a.sym as usize)))
            .collect();
        assert_eq!(names, ["isbn", "lang", "edition"]);
        // Repeated declarations merge; the first binding of a name wins,
        // so isbn stays #REQUIRED.
        assert_eq!(schema.required_mask(book.index() as u32), 0b001);
        assert_eq!(schema.attr_decl_count(), 3);
        // Attribute names resolve through the shared byte-keyed index.
        assert!(schema.lookup_bytes(b"isbn").is_some());
        // Text rules: title allows character data, book does not.
        let title = schema.lookup("title").unwrap();
        assert!(schema.text_allowed(title.index() as u32));
        assert!(!schema.text_allowed(book.index() as u32));
        // Out-of-range (unknown-element sentinel) is attribute-free.
        assert_eq!(schema.attrs_of(u32::MAX).0.len(), 0);
        assert!(!schema.text_allowed(u32::MAX));
    }

    #[test]
    fn duplicate_declarations_pin_their_contract() {
        // A repeated <!ELEMENT> for one name is a build error — even when
        // the second declaration arrives through a separate parse_dtd
        // call, and even when both content models are identical.
        let err = SchemaBuilder::new()
            .parse_dtd("<!ELEMENT doc (title)>\n<!ELEMENT title (#PCDATA)>")
            .parse_dtd("<!ELEMENT doc (title)>")
            .build()
            .unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code(), Code::DuplicateElement);
        assert!(err[0].message().contains("doc"), "{}", err[0]);

        // A repeated *attribute name* is not an error: the first
        // declaration wins — across fragments too — so `id` stays
        // #REQUIRED and the later #IMPLIED redeclaration is ignored.
        let schema = SchemaBuilder::new()
            .parse_dtd(
                "<!ELEMENT doc (#PCDATA)>
                 <!ATTLIST doc id CDATA #REQUIRED>",
            )
            .parse_dtd("<!ATTLIST doc id CDATA #IMPLIED lang CDATA #IMPLIED>")
            .build()
            .unwrap();
        let doc = schema.lookup("doc").unwrap();
        let (attrs, _) = schema.attrs_of(doc.index() as u32);
        let names: Vec<&str> = attrs
            .iter()
            .map(|a| schema.name(Symbol::from_index(a.sym as usize)))
            .collect();
        assert_eq!(names, ["id", "lang"]);
        assert_eq!(schema.required_mask(doc.index() as u32), 0b01);
    }

    #[test]
    fn mixed_and_any_content_allow_text() {
        let schema = SchemaBuilder::new()
            .element_mixed("para", "(em | code)*")
            .element_any("note")
            .element_empty("hr")
            .element_text("title")
            .build()
            .unwrap();
        let idx = |name: &str| schema.lookup(name).unwrap().index() as u32;
        assert!(schema.text_allowed(idx("para")));
        assert!(schema.text_allowed(idx("note")));
        assert!(schema.text_allowed(idx("title")));
        assert!(!schema.text_allowed(idx("hr")));
        // Undeclared-but-referenced names reject text.
        assert!(!schema.text_allowed(idx("em")));
    }

    #[test]
    fn attribute_cap_is_enforced() {
        let mut builder = SchemaBuilder::new().element_empty("e");
        for i in 0..=MAX_ATTRS_PER_ELEMENT {
            builder = builder.attribute("e", &format!("a{i}"), false);
        }
        let err = builder.build().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code(), Code::MalformedDtd);
        assert!(err[0].message().contains("more than 64"), "{}", err[0]);
    }

    #[test]
    fn dtd_fragment_compiles_with_rebased_spans() {
        let dtd = "<!ELEMENT doc (part)*>\n<!ELEMENT part (a b* b)>";
        let err = SchemaBuilder::new().parse_dtd(dtd).build().unwrap_err();
        assert_eq!(err.len(), 1);
        let diag = &err[0];
        assert_eq!(diag.code(), Code::NotDeterministic);
        // The witness spans point into the *DTD*, at the two trailing 'b's.
        let witness = diag.witness().unwrap();
        for span in [witness.first_span.unwrap(), witness.second_span.unwrap()] {
            assert_eq!(&dtd[span.start..span.end], "b");
            assert!(
                span.start > dtd.find('\n').unwrap(),
                "span {span} is in line 2"
            );
        }
    }
}
