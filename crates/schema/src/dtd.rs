//! A parser for DTD fragments: `<!ELEMENT name (model)>` declarations.
//!
//! This is deliberately a *fragment* parser, not an XML processor: it
//! recognizes element declarations (the part of a DTD the paper's
//! algorithms are about), skips comments and unrelated declarations
//! (`<!ATTLIST`, `<!ENTITY`, processing instructions), and reports
//! malformed declarations as structured diagnostics with byte spans into
//! the fragment.
//!
//! Content specifications:
//!
//! * `EMPTY` and `(#PCDATA)` — no element children allowed;
//! * `ANY` — any sequence of children;
//! * mixed content `(#PCDATA | a | b)*` — rewritten to the element-only
//!   model `(a | b)*`;
//! * everything else — a content model in the expression syntax of
//!   `redet-syntax` (which covers the DTD operators `,`, `|`, `?`, `*`,
//!   `+` and, beyond DTDs, XML-Schema-style `{i,j}` counters).

use redet_core::{Code, Diagnostic};
use redet_syntax::Span;

/// One parsed `<!ELEMENT …>` declaration.
#[derive(Clone, Debug)]
pub(crate) struct ParsedDecl {
    pub name: String,
    /// Byte span of the element name in the fragment.
    pub name_span: Span,
    pub content: ParsedContent,
}

/// The content specification of a declaration.
#[derive(Clone, Debug)]
pub(crate) enum ParsedContent {
    /// A content model, with the byte offset of its source in the fragment
    /// (so model diagnostics can be rebased into the fragment).
    Model {
        source: String,
        offset: usize,
    },
    Empty,
    Any,
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Replaces `<!-- … -->` comments by spaces, preserving byte offsets.
fn mask_comments(source: &str) -> String {
    let mut masked = source.as_bytes().to_vec();
    let mut i = 0;
    while let Some(start) = source[i..].find("<!--").map(|o| i + o) {
        let end = source[start + 4..]
            .find("-->")
            .map(|o| start + 4 + o + 3)
            .unwrap_or(source.len());
        for b in &mut masked[start..end] {
            if !b.is_ascii_whitespace() {
                *b = b' ';
            }
        }
        i = end;
    }
    String::from_utf8(masked).expect("masking replaces whole ASCII bytes")
}

/// Parses every `<!ELEMENT …>` declaration of `source`, collecting
/// malformed ones as diagnostics instead of aborting.
pub(crate) fn parse_dtd_fragment(source: &str) -> (Vec<ParsedDecl>, Vec<Diagnostic>) {
    let masked = mask_comments(source);
    let mut decls = Vec::new();
    let mut diagnostics = Vec::new();
    let mut i = 0;
    while let Some(lt) = masked[i..].find('<').map(|o| i + o) {
        let rest = &masked[lt..];
        if !rest.starts_with("<!ELEMENT") {
            // Skip other markup (<?…?>, <!ATTLIST …>, stray text) up to the
            // next '>', or to the end when none remains.
            i = match masked[lt + 1..].find('>') {
                Some(o) => lt + 1 + o + 1,
                None => masked.len(),
            };
            continue;
        }
        let Some(gt) = masked[lt..].find('>').map(|o| lt + o) else {
            diagnostics.push(
                Diagnostic::new(
                    Code::MalformedDtd,
                    "unterminated <!ELEMENT declaration: missing '>'",
                )
                .with_span(Span::new(lt, masked.len())),
            );
            break;
        };
        match parse_element_decl(source, lt + "<!ELEMENT".len(), gt) {
            Ok(decl) => decls.push(decl),
            Err(diag) => diagnostics.push(diag),
        }
        i = gt + 1;
    }
    (decls, diagnostics)
}

/// Parses the body of one declaration, `source[start..end]` being the text
/// between `<!ELEMENT` and `>`.
fn parse_element_decl(source: &str, start: usize, end: usize) -> Result<ParsedDecl, Diagnostic> {
    let body = &source[start..end];
    let name_rel = body
        .find(|c: char| !c.is_whitespace())
        .ok_or_else(|| missing_name(start, end))?;
    let name_len = body[name_rel..]
        .find(|c: char| !is_name_char(c))
        .unwrap_or(body.len() - name_rel);
    if name_len == 0 {
        return Err(missing_name(start, end));
    }
    let name_start = start + name_rel;
    let name = &source[name_start..name_start + name_len];
    let spec_rel = name_rel + name_len;
    let spec_off = body[spec_rel..]
        .find(|c: char| !c.is_whitespace())
        .map(|o| spec_rel + o)
        .ok_or_else(|| {
            Diagnostic::new(
                Code::MalformedDtd,
                format!("<!ELEMENT {name}> has no content specification"),
            )
            .with_span(Span::new(name_start, name_start + name_len))
        })?;
    let spec_start = start + spec_off;
    let spec = source[spec_start..end].trim_end();
    let spec_span = Span::new(spec_start, spec_start + spec.len());

    let content = if spec == "EMPTY" {
        ParsedContent::Empty
    } else if spec == "ANY" {
        ParsedContent::Any
    } else if spec.contains("#PCDATA") {
        mixed_content_model(name, spec, spec_span)?
    } else if spec.starts_with('(') {
        ParsedContent::Model {
            source: spec.to_owned(),
            offset: spec_start,
        }
    } else {
        return Err(Diagnostic::new(
            Code::MalformedDtd,
            format!(
                "content specification of <!ELEMENT {name}> must be EMPTY, ANY, \
                 or a parenthesized model, found '{spec}'"
            ),
        )
        .with_span(spec_span));
    };

    Ok(ParsedDecl {
        name: name.to_owned(),
        name_span: Span::new(name_start, name_start + name_len),
        content,
    })
}

fn missing_name(start: usize, end: usize) -> Diagnostic {
    Diagnostic::new(Code::MalformedDtd, "<!ELEMENT declaration has no name")
        .with_span(Span::new(start, end))
}

/// Handles the `#PCDATA` content forms. Text-only content — `(#PCDATA)`
/// and `(#PCDATA)*`, whitespace-insensitive — means no element children
/// (`Empty`); true mixed content `(#PCDATA | a | b)*` is rewritten to the
/// element-only model `(a | b)*`. The rebuilt source loses exact spans;
/// diagnostics for it are anchored at the start of the specification.
fn mixed_content_model(
    name: &str,
    spec: &str,
    spec_span: Span,
) -> Result<ParsedContent, Diagnostic> {
    let malformed = || {
        Diagnostic::new(
            Code::MalformedDtd,
            format!(
                "mixed content of <!ELEMENT {name}> must have the form \
                 (#PCDATA) or (#PCDATA | name | …)*, found '{spec}'"
            ),
        )
        .with_span(spec_span)
    };
    let body = spec.strip_prefix('(').ok_or_else(malformed)?;
    let (inner, starred) = match body.trim_end().strip_suffix(")*") {
        Some(inner) => (inner, true),
        None => (
            body.trim_end().strip_suffix(')').ok_or_else(malformed)?,
            false,
        ),
    };
    let mut names = Vec::new();
    for (i, part) in inner.split('|').enumerate() {
        let part = part.trim();
        if i == 0 {
            if part != "#PCDATA" {
                return Err(malformed());
            }
            continue;
        }
        if part.is_empty() || !part.chars().all(is_name_char) {
            return Err(malformed());
        }
        names.push(part);
    }
    if names.is_empty() {
        // (#PCDATA) or (#PCDATA)*: text only, no element children.
        return Ok(ParsedContent::Empty);
    }
    if !starred {
        // XML requires the `*` as soon as element names participate.
        return Err(malformed());
    }
    Ok(ParsedContent::Model {
        source: format!("({})*", names.join(" | ")),
        offset: spec_span.start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_skips_other_markup() {
        let dtd = r#"
            <?xml version="1.0"?>
            <!-- the bibliography schema <!ELEMENT fake (a)> -->
            <!ELEMENT bibliography (book | article)*>
            <!ATTLIST book isbn CDATA #IMPLIED>
            <!ELEMENT book (title, author+, year?)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT note ANY>
            <!ELEMENT para (#PCDATA | em | code)*>
        "#;
        let (decls, diags) = parse_dtd_fragment(dtd);
        assert!(diags.is_empty(), "{diags:?}");
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["bibliography", "book", "title", "note", "para"]);
        assert!(matches!(decls[2].content, ParsedContent::Empty));
        assert!(matches!(decls[3].content, ParsedContent::Any));
        match &decls[4].content {
            ParsedContent::Model { source, .. } => assert_eq!(source, "(em | code)*"),
            other => panic!("mixed content not rewritten: {other:?}"),
        }
        // Name spans point into the fragment.
        let span = decls[1].name_span;
        assert_eq!(&dtd[span.start..span.end], "book");
    }

    #[test]
    fn pcdata_only_forms_are_empty_content() {
        for spec in ["(#PCDATA)", "(#PCDATA)*", "( #PCDATA )", "( #PCDATA )*"] {
            let dtd = format!("<!ELEMENT title {spec}>");
            let (decls, diags) = parse_dtd_fragment(&dtd);
            assert!(diags.is_empty(), "{spec}: {diags:?}");
            assert!(
                matches!(decls[0].content, ParsedContent::Empty),
                "{spec}: {:?}",
                decls[0].content
            );
        }
        // Element names without the closing `*` are malformed per XML.
        let (_, diags) = parse_dtd_fragment("<!ELEMENT para (#PCDATA | em)>");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
    }

    #[test]
    fn malformed_declarations_are_diagnosed_with_spans() {
        let (decls, diags) = parse_dtd_fragment("<!ELEMENT broken GARBAGE>\n<!ELEMENT ok (a)>");
        assert_eq!(decls.len(), 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
        let span = diags[0].span().unwrap();
        assert_eq!(
            &"<!ELEMENT broken GARBAGE>\n<!ELEMENT ok (a)>"[span.start..span.end],
            "GARBAGE"
        );
    }

    #[test]
    fn unterminated_declaration_is_diagnosed() {
        let (_, diags) = parse_dtd_fragment("<!ELEMENT a (b, c)");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
    }

    #[test]
    fn model_offsets_point_into_the_fragment() {
        let dtd = "<!ELEMENT book (title, author+)>";
        let (decls, _) = parse_dtd_fragment(dtd);
        match &decls[0].content {
            ParsedContent::Model { source, offset } => {
                assert_eq!(source, "(title, author+)");
                assert_eq!(&dtd[*offset..*offset + source.len()], source.as_str());
            }
            other => panic!("{other:?}"),
        }
    }
}
