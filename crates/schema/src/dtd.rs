//! A parser for DTD fragments: `<!ELEMENT …>` and `<!ATTLIST …>`
//! declarations.
//!
//! This is deliberately a *fragment* parser, not an XML processor: it
//! recognizes element and attribute-list declarations (the parts of a DTD
//! the validator enforces), skips comments and unrelated declarations
//! (`<!ENTITY`, `<!NOTATION`, processing instructions), and reports
//! malformed declarations as structured diagnostics with byte spans into
//! the fragment.
//!
//! Content specifications:
//!
//! * `EMPTY` and `(#PCDATA)` — no element children allowed (`(#PCDATA)`
//!   allows text, `EMPTY` does not);
//! * `ANY` — any sequence of children, text allowed;
//! * mixed content `(#PCDATA | a | b)*` — rewritten to the element-only
//!   model `(a | b)*`, flagged as allowing text;
//! * everything else — a content model in the expression syntax of
//!   `redet-syntax` (which covers the DTD operators `,`, `|`, `?`, `*`,
//!   `+` and, beyond DTDs, XML-Schema-style `{i,j}` counters).
//!
//! Attribute lists — `<!ATTLIST elem name type default …>` — accept the
//! full declared syntax (`CDATA`, tokenized types, `NOTATION`/enumerated
//! groups; `#REQUIRED`/`#IMPLIED`/`#FIXED "v"`/plain defaults) but compile
//! down to what the event model can check: which attribute names an element
//! declares, and which of them are `#REQUIRED`. Types and default values
//! are syntax-checked and dropped — document events carry attribute
//! *presence*, and value constraints beyond well-formedness are out of
//! scope for the paper's incremental model.
//!
//! Duplicates are resolved at build time, not here: the fragment parser
//! passes every declaration through, and `SchemaBuilder::build` rejects a
//! second `<!ELEMENT>` for the same name (`Code::DuplicateElement`) while
//! merging repeated `<!ATTLIST>`s with first-declaration-wins semantics
//! per attribute name (see the `parse_dtd` rustdoc).

use redet_core::{Code, Diagnostic};
use redet_syntax::Span;

/// One parsed `<!ELEMENT …>` declaration.
#[derive(Clone, Debug)]
pub(crate) struct ParsedDecl {
    pub name: String,
    /// Byte span of the element name in the fragment.
    pub name_span: Span,
    pub content: ParsedContent,
}

/// The content specification of a declaration.
#[derive(Clone, Debug)]
pub(crate) enum ParsedContent {
    /// A content model, with the byte offset of its source in the fragment
    /// (so model diagnostics can be rebased into the fragment). `mixed` is
    /// set when the model was rewritten from `(#PCDATA | …)*` — character
    /// data is allowed between the children.
    Model {
        source: String,
        offset: usize,
        mixed: bool,
    },
    /// No element children. `text` distinguishes `(#PCDATA)` (character
    /// data allowed) from a true `EMPTY` element (nothing allowed).
    Empty { text: bool },
    /// Any children in any order; character data allowed.
    Any,
}

/// One parsed `<!ATTLIST …>` declaration: which element it extends and the
/// attributes it declares.
#[derive(Clone, Debug)]
pub(crate) struct ParsedAttlist {
    /// The element the attribute list belongs to.
    pub element: String,
    /// Byte span of the element name in the fragment.
    pub element_span: Span,
    /// The declared attributes, in declaration order.
    pub attrs: Vec<ParsedAttr>,
}

/// One attribute of an `<!ATTLIST …>` declaration.
#[derive(Clone, Debug)]
pub(crate) struct ParsedAttr {
    /// The attribute's name.
    pub name: String,
    /// Byte span of the attribute name in the fragment.
    pub name_span: Span,
    /// Whether the attribute was declared `#REQUIRED`.
    pub required: bool,
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Replaces `<!-- … -->` comments by spaces, preserving byte offsets.
fn mask_comments(source: &str) -> String {
    let mut masked = source.as_bytes().to_vec();
    let mut i = 0;
    while let Some(start) = source[i..].find("<!--").map(|o| i + o) {
        let end = source[start + 4..]
            .find("-->")
            .map(|o| start + 4 + o + 3)
            .unwrap_or(source.len());
        for b in &mut masked[start..end] {
            if !b.is_ascii_whitespace() {
                *b = b' ';
            }
        }
        i = end;
    }
    String::from_utf8(masked).expect("masking replaces whole ASCII bytes")
}

/// Finds the `>` closing the declaration that starts at `from`, skipping
/// `>`s inside quoted literals (attribute defaults and entity values may
/// legally contain them).
fn find_decl_end(masked: &str, from: usize) -> Option<usize> {
    let mut quote: Option<char> = None;
    for (o, c) in masked[from..].char_indices() {
        match quote {
            Some(q) if c == q => quote = None,
            Some(_) => {}
            None => match c {
                '\'' | '"' => quote = Some(c),
                '>' => return Some(from + o),
                _ => {}
            },
        }
    }
    None
}

/// Parses every `<!ELEMENT …>` and `<!ATTLIST …>` declaration of `source`,
/// collecting malformed ones as diagnostics instead of aborting.
pub(crate) fn parse_dtd_fragment(
    source: &str,
) -> (Vec<ParsedDecl>, Vec<ParsedAttlist>, Vec<Diagnostic>) {
    let masked = mask_comments(source);
    let mut decls = Vec::new();
    let mut attlists = Vec::new();
    let mut diagnostics = Vec::new();
    let mut i = 0;
    while let Some(lt) = masked[i..].find('<').map(|o| i + o) {
        let rest = &masked[lt..];
        let keyword = if rest.starts_with("<!ELEMENT") {
            Some("<!ELEMENT")
        } else if rest.starts_with("<!ATTLIST") {
            Some("<!ATTLIST")
        } else {
            None
        };
        let Some(keyword) = keyword else {
            // Skip other markup (<?…?>, <!ENTITY …>, stray text) up to the
            // next quote-respecting '>', or to the end when none remains.
            i = match find_decl_end(&masked, lt + 1) {
                Some(gt) => gt + 1,
                None => masked.len(),
            };
            continue;
        };
        let Some(gt) = find_decl_end(&masked, lt + keyword.len()) else {
            diagnostics.push(
                Diagnostic::new(
                    Code::MalformedDtd,
                    format!("unterminated {keyword} declaration: missing '>'"),
                )
                .with_span(Span::new(lt, masked.len())),
            );
            break;
        };
        if keyword == "<!ELEMENT" {
            match parse_element_decl(source, lt + keyword.len(), gt) {
                Ok(decl) => decls.push(decl),
                Err(diag) => diagnostics.push(diag),
            }
        } else {
            match parse_attlist_decl(source, lt + keyword.len(), gt) {
                Ok(attlist) => attlists.push(attlist),
                Err(diag) => diagnostics.push(diag),
            }
        }
        i = gt + 1;
    }
    (decls, attlists, diagnostics)
}

/// Parses the body of one declaration, `source[start..end]` being the text
/// between `<!ELEMENT` and `>`.
fn parse_element_decl(source: &str, start: usize, end: usize) -> Result<ParsedDecl, Diagnostic> {
    let body = &source[start..end];
    let name_rel = body
        .find(|c: char| !c.is_whitespace())
        .ok_or_else(|| missing_name(start, end))?;
    let name_len = body[name_rel..]
        .find(|c: char| !is_name_char(c))
        .unwrap_or(body.len() - name_rel);
    if name_len == 0 {
        return Err(missing_name(start, end));
    }
    let name_start = start + name_rel;
    let name = &source[name_start..name_start + name_len];
    let spec_rel = name_rel + name_len;
    let spec_off = body[spec_rel..]
        .find(|c: char| !c.is_whitespace())
        .map(|o| spec_rel + o)
        .ok_or_else(|| {
            Diagnostic::new(
                Code::MalformedDtd,
                format!("<!ELEMENT {name}> has no content specification"),
            )
            .with_span(Span::new(name_start, name_start + name_len))
        })?;
    let spec_start = start + spec_off;
    let spec = source[spec_start..end].trim_end();
    let spec_span = Span::new(spec_start, spec_start + spec.len());

    let content = if spec == "EMPTY" {
        ParsedContent::Empty { text: false }
    } else if spec == "ANY" {
        ParsedContent::Any
    } else if spec.contains("#PCDATA") {
        mixed_content_model(name, spec, spec_span)?
    } else if spec.starts_with('(') {
        ParsedContent::Model {
            source: spec.to_owned(),
            offset: spec_start,
            mixed: false,
        }
    } else {
        return Err(Diagnostic::new(
            Code::MalformedDtd,
            format!(
                "content specification of <!ELEMENT {name}> must be EMPTY, ANY, \
                 or a parenthesized model, found '{spec}'"
            ),
        )
        .with_span(spec_span));
    };

    Ok(ParsedDecl {
        name: name.to_owned(),
        name_span: Span::new(name_start, name_start + name_len),
        content,
    })
}

fn missing_name(start: usize, end: usize) -> Diagnostic {
    Diagnostic::new(Code::MalformedDtd, "<!ELEMENT declaration has no name")
        .with_span(Span::new(start, end))
}

/// Handles the `#PCDATA` content forms. Text-only content — `(#PCDATA)`
/// and `(#PCDATA)*`, whitespace-insensitive — means no element children
/// (`Empty`); true mixed content `(#PCDATA | a | b)*` is rewritten to the
/// element-only model `(a | b)*`. The rebuilt source loses exact spans;
/// diagnostics for it are anchored at the start of the specification.
fn mixed_content_model(
    name: &str,
    spec: &str,
    spec_span: Span,
) -> Result<ParsedContent, Diagnostic> {
    let malformed = || {
        Diagnostic::new(
            Code::MalformedDtd,
            format!(
                "mixed content of <!ELEMENT {name}> must have the form \
                 (#PCDATA) or (#PCDATA | name | …)*, found '{spec}'"
            ),
        )
        .with_span(spec_span)
    };
    let body = spec.strip_prefix('(').ok_or_else(malformed)?;
    let (inner, starred) = match body.trim_end().strip_suffix(")*") {
        Some(inner) => (inner, true),
        None => (
            body.trim_end().strip_suffix(')').ok_or_else(malformed)?,
            false,
        ),
    };
    let mut names = Vec::new();
    for (i, part) in inner.split('|').enumerate() {
        let part = part.trim();
        if i == 0 {
            if part != "#PCDATA" {
                return Err(malformed());
            }
            continue;
        }
        if part.is_empty() || !part.chars().all(is_name_char) {
            return Err(malformed());
        }
        names.push(part);
    }
    if names.is_empty() {
        // (#PCDATA) or (#PCDATA)*: text only, no element children.
        return Ok(ParsedContent::Empty { text: true });
    }
    if !starred {
        // XML requires the `*` as soon as element names participate.
        return Err(malformed());
    }
    Ok(ParsedContent::Model {
        source: format!("({})*", names.join(" | ")),
        offset: spec_span.start,
        mixed: true,
    })
}

/// Parses the body of one `<!ATTLIST …>` declaration, `source[start..end]`
/// being the text between `<!ATTLIST` and the closing `>`.
fn parse_attlist_decl(source: &str, start: usize, end: usize) -> Result<ParsedAttlist, Diagnostic> {
    let mut cur = Cursor {
        source,
        pos: start,
        end,
    };
    cur.skip_ws();
    let Some((element, element_span)) = cur.take_name() else {
        return Err(Diagnostic::new(
            Code::MalformedDtd,
            "<!ATTLIST declaration has no element name",
        )
        .with_span(Span::new(start, end)));
    };
    let element = element.to_owned();
    let mut attrs = Vec::new();
    loop {
        cur.skip_ws();
        if cur.at_end() {
            break;
        }
        let Some((name, name_span)) = cur.take_name() else {
            return Err(cur.malformed(&element, "expected an attribute name"));
        };
        let name = name.to_owned();
        cur.skip_ws();
        // The attribute type: CDATA, a tokenized type, NOTATION (…), or an
        // enumerated (…) group. Checked for shape, then dropped — events
        // carry attribute presence, not typed values.
        if cur.peek() == Some('(') {
            cur.take_group(&element)?;
        } else {
            let Some((ty, ty_span)) = cur.take_name() else {
                return Err(cur.malformed(&element, "expected an attribute type"));
            };
            match ty {
                "CDATA" | "ID" | "IDREF" | "IDREFS" | "ENTITY" | "ENTITIES" | "NMTOKEN"
                | "NMTOKENS" => {}
                "NOTATION" => {
                    cur.skip_ws();
                    cur.take_group(&element)?;
                }
                other => {
                    return Err(Diagnostic::new(
                        Code::MalformedDtd,
                        format!(
                            "attribute '{name}' of <!ATTLIST {element}> has unknown type \
                             '{other}'"
                        ),
                    )
                    .with_span(ty_span));
                }
            }
        }
        cur.skip_ws();
        // The default declaration decides everything the validator
        // enforces: #REQUIRED attributes must appear on every start tag.
        let required = if cur.take_literal("#REQUIRED") {
            true
        } else if cur.take_literal("#IMPLIED") {
            false
        } else if cur.take_literal("#FIXED") {
            cur.skip_ws();
            cur.take_quoted(&element)?;
            false
        } else if matches!(cur.peek(), Some('\'' | '"')) {
            cur.take_quoted(&element)?;
            false
        } else {
            return Err(cur.malformed(
                &element,
                "expected #REQUIRED, #IMPLIED, #FIXED or a quoted default value",
            ));
        };
        attrs.push(ParsedAttr {
            name,
            name_span,
            required,
        });
    }
    Ok(ParsedAttlist {
        element,
        element_span,
        attrs,
    })
}

/// A tiny character cursor over one declaration body.
struct Cursor<'a> {
    source: &'a str,
    pos: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.source[self.pos..self.end]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.end
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.end - trimmed.len();
    }

    /// Takes a run of name characters, returning it with its span.
    fn take_name(&mut self) -> Option<(&'a str, Span)> {
        let rest = self.rest();
        let len = rest.find(|c: char| !is_name_char(c)).unwrap_or(rest.len());
        if len == 0 {
            return None;
        }
        let span = Span::new(self.pos, self.pos + len);
        self.pos += len;
        Some((&rest[..len], span))
    }

    /// Consumes `literal` if the cursor is exactly at it.
    fn take_literal(&mut self, literal: &str) -> bool {
        if self.rest().starts_with(literal) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    /// Consumes a parenthesized `(a | b | …)` group.
    fn take_group(&mut self, element: &str) -> Result<(), Diagnostic> {
        if self.peek() != Some('(') {
            return Err(self.malformed(element, "expected a parenthesized group"));
        }
        match self.rest().find(')') {
            Some(close) => {
                self.pos += close + 1;
                Ok(())
            }
            None => Err(self.malformed(element, "unterminated '(' group")),
        }
    }

    /// Consumes a quoted default value.
    fn take_quoted(&mut self, element: &str) -> Result<(), Diagnostic> {
        let Some(quote @ ('\'' | '"')) = self.peek() else {
            return Err(self.malformed(element, "expected a quoted default value"));
        };
        let body = &self.rest()[1..];
        match body.find(quote) {
            Some(close) => {
                self.pos += 1 + close + 1;
                Ok(())
            }
            None => Err(self.malformed(element, "unterminated default value literal")),
        }
    }

    fn malformed(&self, element: &str, what: &str) -> Diagnostic {
        Diagnostic::new(
            Code::MalformedDtd,
            format!("malformed <!ATTLIST {element}>: {what}"),
        )
        .with_span(Span::new(self.pos, self.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_skips_other_markup() {
        let dtd = r#"
            <?xml version="1.0"?>
            <!-- the bibliography schema <!ELEMENT fake (a)> -->
            <!ELEMENT bibliography (book | article)*>
            <!ATTLIST book isbn CDATA #IMPLIED>
            <!ENTITY press "O'Reilly > Associates">
            <!ELEMENT book (title, author+, year?)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT note ANY>
            <!ELEMENT para (#PCDATA | em | code)*>
        "#;
        let (decls, attlists, diags) = parse_dtd_fragment(dtd);
        assert!(diags.is_empty(), "{diags:?}");
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["bibliography", "book", "title", "note", "para"]);
        assert!(matches!(
            decls[2].content,
            ParsedContent::Empty { text: true }
        ));
        assert!(matches!(decls[3].content, ParsedContent::Any));
        match &decls[4].content {
            ParsedContent::Model { source, mixed, .. } => {
                assert_eq!(source, "(em | code)*");
                assert!(mixed);
            }
            other => panic!("mixed content not rewritten: {other:?}"),
        }
        // Element-only models are not mixed.
        assert!(matches!(
            decls[1].content,
            ParsedContent::Model { mixed: false, .. }
        ));
        // The attribute list was parsed, not skipped.
        assert_eq!(attlists.len(), 1);
        assert_eq!(attlists[0].element, "book");
        assert_eq!(attlists[0].attrs.len(), 1);
        assert_eq!(attlists[0].attrs[0].name, "isbn");
        assert!(!attlists[0].attrs[0].required);
        // Name spans point into the fragment.
        let span = decls[1].name_span;
        assert_eq!(&dtd[span.start..span.end], "book");
        let span = attlists[0].attrs[0].name_span;
        assert_eq!(&dtd[span.start..span.end], "isbn");
    }

    #[test]
    fn attlist_types_and_defaults_are_accepted() {
        let dtd = r#"
            <!ATTLIST book
                isbn    ID              #REQUIRED
                lang    (en | de | fr)  "en"
                rel     NMTOKENS        #IMPLIED
                class   NOTATION (a|b)  #IMPLIED
                note    CDATA           #FIXED "x > y">
            <!ATTLIST book extra CDATA #IMPLIED>
        "#;
        let (_, attlists, diags) = parse_dtd_fragment(dtd);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(attlists.len(), 2, "one ParsedAttlist per declaration");
        let names: Vec<&str> = attlists[0].attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["isbn", "lang", "rel", "class", "note"]);
        let required: Vec<bool> = attlists[0].attrs.iter().map(|a| a.required).collect();
        assert_eq!(required, [true, false, false, false, false]);
        assert_eq!(attlists[1].attrs[0].name, "extra");
    }

    #[test]
    fn malformed_attlists_are_diagnosed() {
        for (dtd, what) in [
            ("<!ATTLIST >", "no element name"),
            ("<!ATTLIST book isbn>", "expected an attribute type"),
            ("<!ATTLIST book isbn BOGUS #IMPLIED>", "unknown type"),
            ("<!ATTLIST book isbn CDATA>", "expected #REQUIRED"),
            ("<!ATTLIST book isbn CDATA #FIXED>", "quoted default"),
        ] {
            let (_, attlists, diags) = parse_dtd_fragment(dtd);
            assert!(attlists.is_empty(), "{dtd}");
            assert_eq!(diags.len(), 1, "{dtd}");
            assert_eq!(diags[0].code(), Code::MalformedDtd, "{dtd}");
            assert!(diags[0].message().contains(what), "{dtd}: {}", diags[0]);
        }
    }

    #[test]
    fn pcdata_only_forms_are_empty_content() {
        for spec in ["(#PCDATA)", "(#PCDATA)*", "( #PCDATA )", "( #PCDATA )*"] {
            let dtd = format!("<!ELEMENT title {spec}>");
            let (decls, _, diags) = parse_dtd_fragment(&dtd);
            assert!(diags.is_empty(), "{spec}: {diags:?}");
            assert!(
                matches!(decls[0].content, ParsedContent::Empty { text: true }),
                "{spec}: {:?}",
                decls[0].content
            );
        }
        // Element names without the closing `*` are malformed per XML.
        let (_, _, diags) = parse_dtd_fragment("<!ELEMENT para (#PCDATA | em)>");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
    }

    #[test]
    fn malformed_declarations_are_diagnosed_with_spans() {
        let (decls, _, diags) = parse_dtd_fragment("<!ELEMENT broken GARBAGE>\n<!ELEMENT ok (a)>");
        assert_eq!(decls.len(), 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
        let span = diags[0].span().unwrap();
        assert_eq!(
            &"<!ELEMENT broken GARBAGE>\n<!ELEMENT ok (a)>"[span.start..span.end],
            "GARBAGE"
        );
    }

    #[test]
    fn unterminated_declaration_is_diagnosed() {
        let (_, _, diags) = parse_dtd_fragment("<!ELEMENT a (b, c)");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::MalformedDtd);
    }

    #[test]
    fn model_offsets_point_into_the_fragment() {
        let dtd = "<!ELEMENT book (title, author+)>";
        let (decls, _, _) = parse_dtd_fragment(dtd);
        match &decls[0].content {
            ParsedContent::Model { source, offset, .. } => {
                assert_eq!(source, "(title, author+)");
                assert_eq!(&dtd[*offset..*offset + source.len()], source.as_str());
            }
            other => panic!("{other:?}"),
        }
    }
}
