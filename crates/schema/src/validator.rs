//! Event-driven document validation: a stack of live matcher sessions.
//!
//! [`DocumentValidator`] consumes a nested document as a stream of
//! `start_element` / `end_element` events and validates every element's
//! child sequence against its content model *as the children arrive* — one
//! pass, no child lists materialized. Each open element holds a live
//! [`redet_core::MatchSession`]; a `start_element` event feeds the child's
//! symbol into the parent's session and pushes a fresh session for the
//! child.
//!
//! Because content models are deterministic, a rejected feed is final: the
//! validator reports one structured [`Diagnostic`] — with the element path
//! and event index — at the *earliest* offending event, then stays quiet
//! for the rest of that element.
//!
//! # Steady-state allocation
//!
//! The validator recycles everything: the frame stack keeps its capacity,
//! closed sessions return their scratch buffers to a pool, and diagnostics
//! are only materialized for invalid documents. After one document has
//! warmed the pools, validating further documents of the same shape
//! performs **no allocation** (enforced by the repository's
//! counting-allocator regression test). Pre-intern element names once via
//! [`Schema::lookup`] and use [`DocumentValidator::start_element_symbol`]
//! and the hot loop never hashes strings either.

use crate::{Content, ContentKind, Schema};
use redet_core::{Code, Diagnostic, DocLocation, MatchScratch, MatchSession};
use redet_syntax::Symbol;

/// What a `start_element` event did to the parent's content check (computed
/// under the mutable borrow of the parent frame, reported afterwards).
enum ParentIssue {
    None,
    /// The parent is declared EMPTY (or undeclared) but got a child.
    EmptyViolation {
        undeclared: bool,
    },
    /// The parent's content model rejected the child at the given child
    /// index.
    Rejected {
        child_index: usize,
    },
}

struct Frame<'s> {
    /// Symbol of the element; `None` when the name is unknown to the
    /// schema's alphabet.
    sym: Option<Symbol>,
    /// The name, kept only for unknown elements (path rendering).
    name: Option<String>,
    /// The live session, for elements declared with a content model.
    session: Option<MatchSession<'s>>,
    kind: ContentKind,
    /// A diagnostic was already recorded for this element's content —
    /// report once, then stay quiet.
    reported: bool,
    children: usize,
}

/// An event-driven validator over one [`Schema`]; see the module docs.
///
/// The validator borrows the schema (clone the [`std::sync::Arc`] around
/// [`Schema`] and open one validator per thread); it is reusable — after
/// [`DocumentValidator::finish`] it is ready for the next document with its
/// warmed-up buffers intact.
pub struct DocumentValidator<'s> {
    schema: &'s Schema,
    frames: Vec<Frame<'s>>,
    /// Scratch buffers recycled between sessions (one per open element).
    pool: Vec<MatchScratch>,
    diagnostics: Vec<Diagnostic>,
    events: usize,
}

impl<'s> DocumentValidator<'s> {
    /// Creates a validator over `schema` (see also [`Schema::validator`]).
    #[must_use]
    pub fn new(schema: &'s Schema) -> Self {
        DocumentValidator {
            schema,
            frames: Vec::new(),
            pool: Vec::new(),
            diagnostics: Vec::new(),
            events: 0,
        }
    }

    /// The schema this validator checks against.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of events consumed for the current document.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Diagnostics collected so far for the current document.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Opens an element by name. One hash lookup per call; for the hash-free
    /// hot path pre-intern names with [`Schema::lookup`] and call
    /// [`DocumentValidator::start_element_symbol`].
    pub fn start_element(&mut self, name: &str) {
        match self.schema.lookup(name) {
            Some(sym) => self.start_element_symbol(sym),
            None => {
                let event = self.take_event();
                let path = self.path_with(Some(name));
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::UnknownElement,
                        format!("element '{name}' is not part of the schema"),
                    )
                    .with_location(DocLocation { path, event }),
                );
                self.feed_parent(Err(name), event);
                self.frames.push(Frame {
                    sym: None,
                    name: Some(name.to_owned()),
                    session: None,
                    kind: ContentKind::Any,
                    reported: false,
                    children: 0,
                });
            }
        }
    }

    /// Opens an element by pre-interned symbol — the hash-free hot path.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    pub fn start_element_symbol(&mut self, sym: Symbol) {
        let event = self.take_event();
        self.feed_parent(Ok(sym), event);
        let (kind, session) = match self.schema.content_of(sym) {
            Content::Model(model) => (
                ContentKind::Model,
                Some(model.start_with(self.pool.pop().unwrap_or_default())),
            ),
            Content::Empty => (ContentKind::Empty, None),
            Content::Any => (ContentKind::Any, None),
            Content::Undeclared => (ContentKind::Undeclared, None),
        };
        self.frames.push(Frame {
            sym: Some(sym),
            name: None,
            session,
            kind,
            reported: false,
            children: 0,
        });
    }

    /// Closes the innermost open element, checking that its content may end
    /// here.
    pub fn end_element(&mut self) {
        let event = self.take_event();
        let Some(frame) = self.frames.pop() else {
            self.diagnostics.push(
                Diagnostic::new(
                    Code::UnbalancedDocument,
                    "end_element without a matching start_element",
                )
                .with_location(DocLocation {
                    path: String::new(),
                    event,
                }),
            );
            return;
        };
        if let Some(session) = &frame.session {
            if !frame.reported && !session.accepts() {
                let name = self.frame_name(&frame).to_owned();
                let path = self.path_with(Some(&name));
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::IncompleteElement,
                        format!(
                            "<{name}> was closed after {} child(ren) but its content \
                             model requires more",
                            frame.children
                        ),
                    )
                    .with_location(DocLocation { path, event }),
                );
            }
        }
        // Recycle the session's scratch for the next open element.
        if let Some(session) = frame.session {
            self.pool.push(session.into_scratch());
        }
    }

    /// Ends the document: reports unclosed elements, resets the validator
    /// for the next document (keeping its warmed-up buffers), and returns
    /// the collected diagnostics, if any.
    pub fn finish(&mut self) -> Result<(), Vec<Diagnostic>> {
        if !self.frames.is_empty() {
            let event = self.events;
            let path = self.path_with(None);
            self.diagnostics.push(
                Diagnostic::new(
                    Code::UnbalancedDocument,
                    format!(
                        "document ended with {} unclosed element(s)",
                        self.frames.len()
                    ),
                )
                .with_location(DocLocation { path, event }),
            );
            while let Some(frame) = self.frames.pop() {
                if let Some(session) = frame.session {
                    self.pool.push(session.into_scratch());
                }
            }
        }
        self.events = 0;
        let diagnostics = std::mem::take(&mut self.diagnostics);
        if diagnostics.is_empty() {
            Ok(())
        } else {
            Err(diagnostics)
        }
    }

    fn take_event(&mut self) -> usize {
        let event = self.events;
        self.events += 1;
        event
    }

    /// Feeds the child's symbol into the innermost open session; `Err`
    /// carries the name of a child unknown to the schema's alphabet (which
    /// no content model over that alphabet can accept).
    fn feed_parent(&mut self, child: Result<Symbol, &str>, event: usize) {
        let issue = {
            let Some(parent) = self.frames.last_mut() else {
                return;
            };
            let child_index = parent.children;
            parent.children += 1;
            if parent.reported {
                return;
            }
            match parent.kind {
                ContentKind::Any => ParentIssue::None,
                ContentKind::Empty | ContentKind::Undeclared => {
                    parent.reported = true;
                    ParentIssue::EmptyViolation {
                        undeclared: parent.kind == ContentKind::Undeclared,
                    }
                }
                ContentKind::Model => {
                    let session = parent
                        .session
                        .as_mut()
                        .expect("model frames hold a session");
                    let rejected = match child {
                        Ok(sym) => !session.feed(sym).is_advanced(),
                        // A name outside the alphabet can never be matched.
                        Err(_) => true,
                    };
                    if rejected {
                        parent.reported = true;
                        ParentIssue::Rejected { child_index }
                    } else {
                        ParentIssue::None
                    }
                }
            }
        };
        match issue {
            ParentIssue::None => {}
            ParentIssue::EmptyViolation { undeclared } => {
                let parent_name = self.last_frame_name().to_owned();
                let child_name = self.child_name(child).to_owned();
                let path = self.path_with(None);
                let how = if undeclared {
                    "has no declaration (EMPTY semantics)"
                } else {
                    "is declared EMPTY"
                };
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::ChildInEmptyElement,
                        format!("<{parent_name}> {how} but contains <{child_name}>"),
                    )
                    .with_location(DocLocation { path, event }),
                );
            }
            ParentIssue::Rejected { child_index } => {
                let parent_name = self.last_frame_name().to_owned();
                let child_name = self.child_name(child).to_owned();
                let path = self.path_with(None);
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::UnexpectedChild,
                        format!(
                            "<{child_name}> cannot appear as child #{child_index} of \
                             <{parent_name}>: the content model has no continuation \
                             for it here"
                        ),
                    )
                    .with_location(DocLocation { path, event }),
                );
            }
        }
    }

    fn frame_name<'a>(&'a self, frame: &'a Frame<'s>) -> &'a str {
        match (frame.sym, &frame.name) {
            (Some(sym), _) => self.schema.name(sym),
            (None, Some(name)) => name.as_str(),
            (None, None) => "?",
        }
    }

    fn last_frame_name(&self) -> &str {
        self.frames
            .last()
            .map(|f| self.frame_name(f))
            .unwrap_or("?")
    }

    fn child_name<'a>(&'a self, child: Result<Symbol, &'a str>) -> &'a str {
        match child {
            Ok(sym) => self.schema.name(sym),
            Err(name) => name,
        }
    }

    /// Slash-separated path of the open elements, optionally extended by one
    /// more segment. Only called on diagnostic paths — allocation here never
    /// touches the valid-document hot loop.
    fn path_with(&self, extra: Option<&str>) -> String {
        let mut path = String::new();
        for frame in &self.frames {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(self.frame_name(frame));
        }
        if let Some(extra) = extra {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(extra);
        }
        path
    }
}

impl std::fmt::Debug for DocumentValidator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocumentValidator")
            .field("depth", &self.depth())
            .field("events", &self.events)
            .field("diagnostics", &self.diagnostics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;
    use std::sync::Arc;

    fn bibliography() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("bibliography", "(book | article)*")
            .element("book", "(title, author+, publisher?, year)")
            .element("article", "(title, author+, journal, year?)")
            .element_empty("title")
            .element_empty("author")
            .element_empty("year")
            .build()
            .unwrap()
    }

    fn leaf(v: &mut DocumentValidator<'_>, name: &str) {
        v.start_element(name);
        v.end_element();
    }

    #[test]
    fn valid_document_passes() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "title");
        leaf(&mut v, "author");
        leaf(&mut v, "author");
        leaf(&mut v, "publisher");
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
        // The validator is reusable for the next document.
        v.start_element("bibliography");
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn incomplete_content_is_located() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "title");
        leaf(&mut v, "author");
        v.end_element(); // book closed without year
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code(), Code::IncompleteElement);
        let loc = err[0].location().unwrap();
        assert_eq!(loc.path, "bibliography/book");
        assert_eq!(loc.event, 6);
    }

    #[test]
    fn unexpected_child_reports_once_at_the_earliest_event() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "author"); // title must come first
        leaf(&mut v, "author");
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        // One diagnostic for <book>, not one per subsequent child.
        assert_eq!(err.len(), 1, "{err:?}");
        assert_eq!(err[0].code(), Code::UnexpectedChild);
        let loc = err[0].location().unwrap();
        assert_eq!(loc.path, "bibliography/book");
        assert_eq!(loc.event, 2);
        assert!(
            err[0].message().contains("child #0"),
            "{}",
            err[0].message()
        );
    }

    #[test]
    fn empty_and_unknown_elements_are_diagnosed() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        v.start_element("title");
        leaf(&mut v, "author"); // title is EMPTY
        v.end_element();
        leaf(&mut v, "author");
        v.start_element("mystery"); // unknown to the schema
        v.end_element();
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        let codes: Vec<Code> = err.iter().map(|d| d.code()).collect();
        assert!(codes.contains(&Code::ChildInEmptyElement), "{codes:?}");
        assert!(codes.contains(&Code::UnknownElement), "{codes:?}");
        // The unknown child also breaks its parent's content model.
        assert!(codes.contains(&Code::UnexpectedChild), "{codes:?}");
    }

    #[test]
    fn unbalanced_documents_are_diagnosed() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnbalancedDocument);

        let mut v = schema.validator();
        v.start_element("bibliography");
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnbalancedDocument);
        // finish() reset the validator despite the open element.
        assert_eq!(v.depth(), 0);
        v.start_element("bibliography");
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn symbol_hot_path_matches_name_path() {
        let schema = bibliography();
        let bib = schema.lookup("bibliography").unwrap();
        let book = schema.lookup("book").unwrap();
        let title = schema.lookup("title").unwrap();
        let author = schema.lookup("author").unwrap();
        let year = schema.lookup("year").unwrap();
        let mut v = schema.validator();
        v.start_element_symbol(bib);
        v.start_element_symbol(book);
        for s in [title, author, year] {
            v.start_element_symbol(s);
            v.end_element();
        }
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn counted_models_validate_through_the_simulation() {
        let schema = SchemaBuilder::new()
            .element("order", "(item{2,3}, total)")
            .element_empty("item")
            .element_empty("total")
            .build()
            .unwrap();
        let mut v = schema.validator();
        v.start_element("order");
        for _ in 0..2 {
            leaf(&mut v, "item");
        }
        leaf(&mut v, "total");
        v.end_element();
        assert!(v.finish().is_ok());
        // One item is too few: the rejection fires on `total`.
        v.start_element("order");
        leaf(&mut v, "item");
        leaf(&mut v, "total");
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnexpectedChild);
    }
}
