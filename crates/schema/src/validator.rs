//! Event-driven document validation: a stack of plain-data cursor frames.
//!
//! [`DocumentValidator`] consumes a nested document as a stream of
//! `start_element` / `end_element` events and validates every element's
//! child sequence against its content model *as the children arrive* — one
//! pass, no child lists materialized. Each open element is one POD
//! [`Frame`]: for position-machine content models the entire matcher state
//! is the current `PosId`; counted models keep an owned set-of-positions
//! state on a side stack. Which of the two an element needs — together
//! with the model's start position — is precomputed in the schema's flat
//! per-symbol dispatch table, so a `start_element` event is two indexed
//! loads and a `Vec` push.
//!
//! Markup beyond element shape is checked the same way:
//! [`DocumentValidator::attribute`] resolves each attribute against the
//! open start tag's flat `<!ATTLIST>` table (undeclared / duplicate /
//! missing-`#REQUIRED` diagnostics, the last via a 64-bit mask closed by
//! the next structural event), and [`DocumentValidator::text`] checks each
//! run of character data against the enclosing element's mixed-content
//! flag (`#PCDATA` / `ANY`). Neither grows the 16-byte [`Frame`]: the
//! attribute scratch is validator-level, and text feeds no content-model
//! transition.
//!
//! Because content models are deterministic, a rejected feed is final: the
//! validator reports one structured [`Diagnostic`] — with the element path
//! and event index — at the *earliest* offending event, then stays quiet
//! for the rest of that element.
//!
//! # Steady-state allocation
//!
//! The validator recycles everything: the frame stack keeps its capacity,
//! closed counted states return their buffers to a pool, and diagnostics
//! are only materialized for invalid documents. After one document has
//! warmed the pools, validating further documents of the same shape
//! performs **no allocation** (enforced by the repository's
//! counting-allocator regression test). Pre-intern element names once via
//! [`Schema::lookup`] and use [`DocumentValidator::start_element_symbol`]
//! and the hot loop never hashes strings either.
//!
//! # Threading
//!
//! The validator owns its schema (`Arc<Schema>`), so it is `Send`: open one
//! per thread from a shared schema and validate concurrently — or let
//! [`crate::ValidatorPool`] / [`Schema::validate_batch`] do the sharding.

use crate::{ContentKind, Dispatch, Schema};
use redet_automata::NfaScratch;
use redet_core::{Code, Diagnostic, DocLocation};
use redet_syntax::Symbol;
use redet_tree::PosId;
use std::sync::Arc;

/// Sentinel symbol index for element names outside the schema's alphabet.
const UNKNOWN: u32 = u32::MAX;

/// One pre-interned document event, the unit [`ValidationService::feed`]
/// and the [`ValidatorPool`] batches ship in (see
/// [`DocumentValidator::validate_events`]).
///
/// Marked `#[non_exhaustive]`: later revisions may grow richer event kinds
/// (processing instructions, typed attribute values) — keep a wildcard arm
/// when matching.
///
/// [`ValidatorPool`]: crate::ValidatorPool
/// [`ValidationService::feed`]: crate::ValidationService::feed
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DocEvent {
    /// Opens an element with a pre-interned name (see [`Schema::lookup`]).
    Open(Symbol),
    /// Closes the innermost open element.
    Close,
    /// Names one attribute of the element most recently opened. Attribute
    /// events follow their `Open` and precede the element's first child,
    /// text run, or `Close` — exactly where attributes sit in a start tag.
    /// Attribute names share the element-name alphabet (see
    /// [`Schema::lookup`]).
    Attr(Symbol),
    /// One run of non-whitespace character data inside the innermost open
    /// element. The event is payload-free: validation only needs to know
    /// *that* character data occurred, and whether the enclosing element's
    /// content model allows it (`#PCDATA` / `ANY`).
    Text,
}

/// What a `start_element` event did to the parent's content check (computed
/// under the mutable borrow of the parent frame, reported afterwards — the
/// valid-document hot path returns [`ParentIssue::None`] and touches
/// nothing else).
enum ParentIssue {
    None,
    /// The parent is declared EMPTY (or undeclared) but got a child.
    EmptyViolation {
        undeclared: bool,
    },
    /// The parent's content model rejected the child at the given child
    /// index.
    Rejected {
        child_index: u32,
    },
}

/// The matcher state of one open element. All variants are plain data —
/// sessions, scratch hand-offs and per-frame heap state are gone from the
/// hot path.
#[derive(Clone, Copy, Debug)]
enum FrameState {
    /// A position-machine content model: the current position is the
    /// entire state.
    Pos(PosId),
    /// A counted content model; the owned position set lives on the
    /// validator's `counted` side stack (stack-aligned with the open
    /// `Counted` frames).
    Counted,
    /// EMPTY or undeclared: no element children allowed.
    Leaf,
    /// ANY (or an element unknown to the schema): children unconstrained.
    Any,
    /// A diagnostic was already recorded for this element's content —
    /// report once, then stay quiet.
    Dead,
}

/// One open element: its symbol (dense index, [`UNKNOWN`] for names outside
/// the alphabet), how many children it has seen, and its matcher state.
/// 16 bytes, `Copy` — pushing and popping frames is register work.
#[derive(Clone, Copy, Debug)]
struct Frame {
    sym: u32,
    children: u32,
    state: FrameState,
}

/// An event-driven validator over one [`Schema`]; see the module docs.
///
/// The validator owns a clone of the schema's [`Arc`] — it is `Send`,
/// storable next to its schema, and reusable: after
/// [`DocumentValidator::finish`] it is ready for the next document with its
/// warmed-up buffers intact.
pub struct DocumentValidator {
    schema: Arc<Schema>,
    frames: Vec<Frame>,
    /// Owned position sets of the open counted-model elements, in open
    /// order (one per live `FrameState::Counted` frame).
    counted: Vec<NfaScratch>,
    /// Recycled position-set buffers.
    pool: Vec<NfaScratch>,
    /// Names of the open elements outside the alphabet, in open order —
    /// only touched on (cold) diagnostic paths.
    unknown: Vec<String>,
    diagnostics: Vec<Diagnostic>,
    events: usize,
    /// Depth cap (`usize::MAX` = ungoverned); set by the service layer from
    /// its `ServiceLimits`. Opens past the cap are swallowed — counted in
    /// `depth_overflow`, never pushed — so a hostile deep document cannot
    /// grow the frame stack past the cap.
    max_depth: usize,
    /// Event budget (`usize::MAX` = ungoverned).
    max_events: usize,
    /// Number of open events swallowed past `max_depth`; matching closes
    /// drain this counter before frames pop again.
    depth_overflow: usize,
    /// Whether the event-budget diagnostic was already recorded for the
    /// current document (report once, stay quiet).
    event_limit_reported: bool,
    /// Whether a start tag's attribute list is still open — set by the
    /// `start_element` family, cleared by the next structural event (which
    /// is when `#REQUIRED` attributes are known to be missing).
    pending_active: bool,
    /// Dense symbol index of the element whose attribute list is open
    /// ([`UNKNOWN`] for elements that are structurally unchecked — unknown
    /// names and depth-overflow opens take attributes without checks).
    pending_sym: u32,
    /// Event index of the pending element's open event — missing-required
    /// diagnostics anchor here, so their location is chunking-invariant.
    pending_event: usize,
    /// Still-unseen `#REQUIRED` attributes of the pending element (bit `i` =
    /// `i`-th declaration in the element's attribute table).
    required_missing: u64,
    /// Epoch stamps for duplicate detection, one slot per attribute
    /// declaration in the schema ([`Schema::attr_decl_count`]) — sized once
    /// at construction, never cleared: a slot counts as "seen" only when its
    /// stamp equals the current epoch.
    seen: Vec<u64>,
    /// Bumped on every known-element open; stamps `seen`.
    epoch: u64,
    /// Byte-front-end state: whether the current logical text run has
    /// already been counted as a [`DocEvent::Text`]-equivalent event (text
    /// segments split by chunk boundaries or comments must not count
    /// twice). Reset by every structural event.
    in_text: bool,
}

impl DocumentValidator {
    /// Creates a validator over `schema` (see also [`Schema::validator`]).
    #[must_use]
    pub fn new(schema: Arc<Schema>) -> Self {
        let seen = vec![0; schema.attr_decl_count()];
        DocumentValidator {
            schema,
            frames: Vec::new(),
            counted: Vec::new(),
            pool: Vec::new(),
            unknown: Vec::new(),
            diagnostics: Vec::new(),
            events: 0,
            max_depth: usize::MAX,
            max_events: usize::MAX,
            depth_overflow: 0,
            event_limit_reported: false,
            pending_active: false,
            pending_sym: UNKNOWN,
            pending_event: 0,
            required_missing: 0,
            seen,
            epoch: 0,
            in_text: false,
        }
    }

    /// Installs per-document resource caps (the service layer threads its
    /// `ServiceLimits` through here). `usize::MAX` means ungoverned. Limit
    /// violations are recorded as `E3xx` diagnostics at a deterministic
    /// event index, so they are byte-identical under every chunking.
    pub(crate) fn set_limits(&mut self, max_depth: usize, max_events: usize) {
        self.max_depth = max_depth;
        self.max_events = max_events;
    }

    /// The schema this validator checks against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of events consumed for the current document.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Diagnostics collected so far for the current document.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Opens an element by name. One hash lookup per call; for the hash-free
    /// hot path pre-intern names with [`Schema::lookup`] and call
    /// [`DocumentValidator::start_element_symbol`].
    pub fn start_element(&mut self, name: &str) {
        match self.schema.lookup(name) {
            Some(sym) => self.start_element_symbol(sym),
            None => self.start_element_unknown(name),
        }
    }

    /// Opens an element by the raw name bytes a [`crate::Tokenizer`] hands
    /// out — the per-tag path of [`ValidationService::feed_bytes`]. A
    /// schema hit resolves the symbol with no UTF-8 round trip (byte
    /// equality with an interned name proves validity); only unknown names
    /// pay [`std::str::from_utf8`], and non-UTF-8 names are reported as
    /// [`Code::MalformedMarkup`].
    ///
    /// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
    #[inline]
    pub fn start_element_bytes(&mut self, name: &[u8]) {
        match self.schema.lookup_bytes(name) {
            Some(sym) => self.start_element_symbol(sym),
            None => match std::str::from_utf8(name) {
                Ok(name) => self.start_element_unknown(name),
                Err(_) => self.report_markup("element name is not valid UTF-8".to_owned()),
            },
        }
    }

    /// Closes the innermost open element after checking the end tag's raw
    /// name against it (XML well-formedness) — the per-close-tag path of
    /// [`ValidationService::feed_bytes`]. The check compares name *keys*
    /// (first word + length), not bytes, so a matching close costs two
    /// integer compares on top of [`DocumentValidator::end_element`]; the
    /// mismatch arm — where a non-UTF-8 name first matters, since it can
    /// never equal an interned name — is cold.
    ///
    /// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
    #[inline]
    pub fn close_element_bytes(&mut self, name: &[u8]) {
        let matches = match self.frames.last() {
            Some(frame) if frame.sym != UNKNOWN => self
                .schema
                .name_matches(Symbol::from_index(frame.sym as usize), name),
            Some(_) => self
                .unknown
                .last()
                .is_some_and(|open| open.as_bytes() == name),
            // Let end_element report the unbalanced close.
            None => true,
        };
        if matches {
            self.end_element();
        } else {
            self.close_element_mismatch(name);
        }
    }

    /// The cold mismatch arm of [`DocumentValidator::close_element_bytes`].
    #[cold]
    fn close_element_mismatch(&mut self, name: &[u8]) {
        let open = self.open_element_name().unwrap_or("?").to_owned();
        match std::str::from_utf8(name) {
            Ok(name) => self.report_markup(format!(
                "</{name}> does not match the innermost open element <{open}>"
            )),
            Err(_) => self.report_markup("element name is not valid UTF-8".to_owned()),
        }
    }

    /// Checks one attribute of the element most recently opened, by
    /// pre-interned name symbol (attribute names share the element-name
    /// alphabet — see [`Schema::lookup`]). Undeclared and duplicate
    /// attributes are diagnosed immediately; missing `#REQUIRED` attributes
    /// are diagnosed by the next structural event, anchored at the open
    /// event. Attributes of unknown (or depth-swallowed) elements are
    /// accepted unchecked, mirroring their `ANY` content semantics.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    pub fn attribute(&mut self, sym: Symbol) {
        let event = self.take_event();
        if !self.pending_active {
            self.attribute_misplaced(event);
            return;
        }
        if self.pending_sym == UNKNOWN {
            return;
        }
        self.check_attribute(sym, event);
    }

    /// Checks one attribute by the raw name bytes a [`crate::Tokenizer`]
    /// hands out — the per-attribute path of
    /// [`ValidationService::feed_bytes`]. A schema hit resolves the symbol
    /// with no UTF-8 round trip; names outside the alphabet are undeclared
    /// by construction.
    ///
    /// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
    #[inline]
    pub fn attribute_bytes(&mut self, name: &[u8]) {
        let event = self.take_event();
        if !self.pending_active {
            self.attribute_misplaced(event);
            return;
        }
        if self.pending_sym == UNKNOWN {
            return;
        }
        match self.schema.lookup_bytes(name) {
            Some(sym) => self.check_attribute(sym, event),
            None => match std::str::from_utf8(name) {
                Ok(name) => self.attribute_undeclared(name.to_owned(), event),
                Err(_) => self.report_markup("attribute name is not valid UTF-8".to_owned()),
            },
        }
    }

    /// The shared declared-attribute check: resolve the name against the
    /// pending element's flat attribute table, stamp the duplicate epoch,
    /// clear the required bit.
    fn check_attribute(&mut self, sym: Symbol, event: usize) {
        let needle = sym.index() as u32;
        let (found, start) = {
            let (decls, start) = self.schema.attrs_of(self.pending_sym);
            (decls.iter().position(|d| d.sym == needle), start)
        };
        match found {
            Some(i) => {
                let slot = start as usize + i;
                if self.seen[slot] == self.epoch {
                    let name = self.schema.name(sym).to_owned();
                    self.attribute_issue(
                        Code::DuplicateAttribute,
                        format!("attribute '{name}' appears more than once"),
                        event,
                    );
                } else {
                    self.seen[slot] = self.epoch;
                    self.required_missing &= !(1u64 << i);
                }
            }
            None => {
                let name = self.schema.name(sym).to_owned();
                self.attribute_undeclared(name, event);
            }
        }
    }

    /// The cold undeclared-attribute arm shared by the symbol and byte
    /// surfaces (so both report byte-identical diagnostics).
    #[cold]
    fn attribute_undeclared(&mut self, name: String, event: usize) {
        self.attribute_issue(
            Code::UndeclaredAttribute,
            format!("attribute '{name}' is not declared"),
            event,
        );
    }

    /// Reports an attribute diagnostic against the pending element.
    #[cold]
    fn attribute_issue(&mut self, code: Code, what: String, event: usize) {
        let elem = self
            .schema
            .name(Symbol::from_index(self.pending_sym as usize))
            .to_owned();
        let path = self.path_with(None);
        self.diagnostics.push(
            Diagnostic::new(code, format!("{what} on element '{elem}'"))
                .with_location(DocLocation { path, event }),
        );
    }

    /// An attribute event with no open attribute list (no structural event
    /// may separate an `Open` from its attributes).
    #[cold]
    fn attribute_misplaced(&mut self, event: usize) {
        let path = self.path_with(None);
        self.diagnostics.push(
            Diagnostic::new(
                Code::MalformedMarkup,
                "attribute appears outside of a start tag",
            )
            .with_location(DocLocation { path, event }),
        );
    }

    /// Consumes one run of non-whitespace character data inside the
    /// innermost open element — the event-surface twin of
    /// [`DocumentValidator::text_segment`]. Text is *stray* (E211) unless
    /// the enclosing element allows it: `#PCDATA` in its content model,
    /// `ANY`, or an element the schema does not constrain.
    pub fn text(&mut self) {
        self.finalize_attrs();
        let event = self.take_event();
        self.check_text(event);
    }

    /// Consumes one decoded text segment from a [`crate::Tokenizer`] — the
    /// per-text path of [`ValidationService::feed_bytes`]. Segments are
    /// coalesced into *logical runs*: whitespace-only segments outside a run
    /// are ignored, the first non-whitespace segment counts as one
    /// [`DocEvent::Text`]-equivalent event, and further segments of the same
    /// run (split by chunk boundaries, comments, or CDATA sections) are
    /// free — so event counts and verdicts are chunking-invariant and
    /// byte-identical to the event surface.
    ///
    /// [`ValidationService::feed_bytes`]: crate::ValidationService::feed_bytes
    #[inline]
    pub fn text_segment(&mut self, bytes: &[u8]) {
        if self.in_text {
            return;
        }
        if bytes
            .iter()
            .all(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            return;
        }
        self.in_text = true;
        self.finalize_attrs();
        let event = self.take_event();
        self.check_text(event);
    }

    /// The shared stray-text check behind [`DocumentValidator::text`] and
    /// [`DocumentValidator::text_segment`].
    fn check_text(&mut self, event: usize) {
        if self.depth_overflow > 0 {
            // Inside a depth-swallowed subtree: structurally unchecked.
            return;
        }
        let stray = match self.frames.last_mut() {
            None => {
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::StrayText,
                        "character data appears outside the document element",
                    )
                    .with_location(DocLocation {
                        path: String::new(),
                        event,
                    }),
                );
                return;
            }
            Some(frame) => match frame.state {
                FrameState::Any | FrameState::Dead => false,
                FrameState::Pos(_) | FrameState::Leaf => {
                    if self.schema.text_allowed(frame.sym) {
                        false
                    } else {
                        frame.state = FrameState::Dead;
                        true
                    }
                }
                FrameState::Counted => {
                    if self.schema.text_allowed(frame.sym) {
                        false
                    } else {
                        frame.state = FrameState::Dead;
                        // The element's check is over; recycle its state.
                        if let Some(state) = self.counted.pop() {
                            self.pool.push(state);
                        }
                        true
                    }
                }
            },
        };
        if stray {
            let name = self.last_frame_name().to_owned();
            let path = self.path_with(None);
            self.diagnostics.push(
                Diagnostic::new(
                    Code::StrayText,
                    format!("element '{name}' does not allow character data"),
                )
                .with_location(DocLocation { path, event }),
            );
        }
    }

    /// Every structural event funnels through here first: close the pending
    /// attribute list (reporting missing `#REQUIRED` attributes at the open
    /// event) and end the current text run.
    #[inline]
    fn begin_structural(&mut self) {
        self.in_text = false;
        self.finalize_attrs();
    }

    /// Closes the pending attribute list, diagnosing the first still-missing
    /// `#REQUIRED` attribute (anchored at the open event, so the location is
    /// identical whatever ends the start tag — a child, text, a close, or
    /// the end of the document).
    #[inline]
    fn finalize_attrs(&mut self) {
        if !self.pending_active {
            return;
        }
        self.pending_active = false;
        if self.required_missing != 0 {
            self.missing_required();
        }
    }

    /// The cold missing-`#REQUIRED` arm of `finalize_attrs`.
    #[cold]
    fn missing_required(&mut self) {
        let i = self.required_missing.trailing_zeros() as usize;
        self.required_missing = 0;
        let (name, elem) = {
            let (decls, _) = self.schema.attrs_of(self.pending_sym);
            let name = decls
                .get(i)
                .map(|d| self.schema.name(Symbol::from_index(d.sym as usize)))
                .unwrap_or("?")
                .to_owned();
            let elem = self
                .schema
                .name(Symbol::from_index(self.pending_sym as usize))
                .to_owned();
            (name, elem)
        };
        let path = self.path_with(None);
        let event = self.pending_event;
        self.diagnostics.push(
            Diagnostic::new(
                Code::MissingRequiredAttribute,
                format!("element '{elem}' is missing the required attribute '{name}'"),
            )
            .with_location(DocLocation { path, event }),
        );
    }

    /// The shared unknown-element cold path: diagnose, then open a
    /// match-anything frame so validation can continue structurally.
    #[cold]
    fn start_element_unknown(&mut self, name: &str) {
        self.begin_structural();
        let event = self.take_event();
        if self.depth_overflow > 0 || self.frames.len() >= self.max_depth {
            self.overflow_open(Err(name), event);
            return;
        }
        let path = self.path_with(Some(name));
        self.diagnostics.push(
            Diagnostic::new(
                Code::UnknownElement,
                format!("element '{name}' is not part of the schema"),
            )
            .with_location(DocLocation { path, event }),
        );
        self.feed_parent(Err(name), event);
        self.unknown.push(name.to_owned());
        self.frames.push(Frame {
            sym: UNKNOWN,
            children: 0,
            state: FrameState::Any,
        });
        // Unknown elements carry attributes but get no attribute checks.
        self.pending_active = true;
        self.pending_sym = UNKNOWN;
        self.pending_event = event;
        self.required_missing = 0;
    }

    /// Opens an element by pre-interned symbol — the hash-free hot path:
    /// feed the parent's cursor, one flat-table load for the child's
    /// dispatch, one frame push.
    ///
    /// # Panics
    /// Panics if `sym` was not handed out by this schema's alphabet.
    pub fn start_element_symbol(&mut self, sym: Symbol) {
        self.begin_structural();
        let event = self.take_event();
        if self.depth_overflow > 0 || self.frames.len() >= self.max_depth {
            self.overflow_open(Ok(sym), event);
            return;
        }
        self.feed_parent(Ok(sym), event);
        let state = match self.schema.dispatch(sym) {
            Dispatch::Pos(begin) => FrameState::Pos(begin),
            Dispatch::Empty | Dispatch::Undeclared => FrameState::Leaf,
            Dispatch::Any => FrameState::Any,
            Dispatch::Counted => {
                let mut state = self.pool.pop().unwrap_or_default();
                match self.counted_matcher(sym.index() as u32) {
                    Some(m) => {
                        m.reset(&mut state);
                        self.counted.push(state);
                        FrameState::Counted
                    }
                    None => {
                        // Dispatch said Counted but the model disagrees —
                        // a library bug, not the document's fault; skip
                        // checking this element rather than panicking.
                        debug_assert!(false, "Counted dispatch without a counted model");
                        self.pool.push(state);
                        FrameState::Any
                    }
                }
            }
        };
        self.frames.push(Frame {
            sym: sym.index() as u32,
            children: 0,
            state,
        });
        // Open the element's attribute list: fresh duplicate epoch, all its
        // #REQUIRED attributes still missing.
        self.pending_active = true;
        self.pending_sym = sym.index() as u32;
        self.pending_event = event;
        self.required_missing = self.schema.required_mask(sym.index() as u32);
        self.epoch += 1;
    }

    /// The depth-governor's open path: swallow the over-deep open (the
    /// frame stack must stay bounded by the cap), diagnose the first one.
    #[cold]
    fn overflow_open(&mut self, child: Result<Symbol, &str>, event: usize) {
        if self.depth_overflow == 0 {
            let name = self.child_name(child).to_owned();
            let path = self.path_with(Some(&name));
            self.diagnostics.push(
                Diagnostic::new(
                    Code::DepthLimitExceeded,
                    format!(
                        "<{name}> would nest {} level(s) deep, past the depth \
                         limit of {}",
                        self.frames.len() + 1,
                        self.max_depth
                    ),
                )
                .with_location(DocLocation { path, event }),
            );
        }
        self.depth_overflow += 1;
        // Swallowed opens still take attribute events — unchecked, like
        // unknown elements.
        self.pending_active = true;
        self.pending_sym = UNKNOWN;
        self.pending_event = event;
        self.required_missing = 0;
    }

    /// Closes the innermost open element, checking that its content may end
    /// here.
    pub fn end_element(&mut self) {
        self.begin_structural();
        if self.depth_overflow > 0 {
            // Closing an open the depth governor swallowed: just rebalance.
            let _ = self.take_event();
            self.depth_overflow -= 1;
            return;
        }
        let event = self.take_event();
        let Some(frame) = self.frames.pop() else {
            self.diagnostics.push(
                Diagnostic::new(
                    Code::UnbalancedDocument,
                    "end_element without a matching start_element",
                )
                .with_location(DocLocation {
                    path: String::new(),
                    event,
                }),
            );
            return;
        };
        let complete = match frame.state {
            FrameState::Pos(pos) => self
                .schema
                .model_at(frame.sym)
                .is_some_and(|m| m.pos_can_end(pos)),
            FrameState::Counted => match self.counted.pop() {
                Some(state) => {
                    let ok = self
                        .counted_matcher(frame.sym)
                        .is_some_and(|m| m.state_accepts(&state));
                    self.pool.push(state);
                    ok
                }
                None => {
                    debug_assert!(false, "Counted frames keep a state on the counted stack");
                    true
                }
            },
            FrameState::Leaf | FrameState::Any | FrameState::Dead => true,
        };
        if !complete {
            let name = self.frame_name_owned(&frame);
            let path = self.path_with(Some(&name));
            self.diagnostics.push(
                Diagnostic::new(
                    Code::IncompleteElement,
                    format!(
                        "<{name}> was closed after {} child(ren) but its content \
                         model requires more",
                        frame.children
                    ),
                )
                .with_location(DocLocation { path, event }),
            );
        }
        if frame.sym == UNKNOWN {
            self.unknown.pop();
        }
    }

    /// Ends the document: reports unclosed elements, resets the validator
    /// for the next document (keeping its warmed-up buffers), and returns
    /// the collected diagnostics, if any.
    pub fn finish(&mut self) -> Result<(), Vec<Diagnostic>> {
        self.begin_structural();
        if !self.frames.is_empty() || self.depth_overflow > 0 {
            let event = self.events;
            let path = self.path_with(None);
            self.diagnostics.push(
                Diagnostic::new(
                    Code::UnbalancedDocument,
                    format!(
                        "document ended with {} unclosed element(s)",
                        self.frames.len() + self.depth_overflow
                    ),
                )
                .with_location(DocLocation { path, event }),
            );
            self.frames.clear();
            self.unknown.clear();
            // Recycle the abandoned counted states for the next document.
            while let Some(state) = self.counted.pop() {
                self.pool.push(state);
            }
        }
        self.depth_overflow = 0;
        self.event_limit_reported = false;
        self.events = 0;
        let diagnostics = std::mem::take(&mut self.diagnostics);
        if diagnostics.is_empty() {
            Ok(())
        } else {
            Err(diagnostics)
        }
    }

    /// Validates one whole document given as a pre-interned event stream:
    /// replays every event and [`finish`](Self::finish)es. This is the loop
    /// the [`crate::ValidatorPool`] workers run per document.
    pub fn validate_events(&mut self, events: &[DocEvent]) -> Result<(), Vec<Diagnostic>> {
        for &event in events {
            match event {
                DocEvent::Open(sym) => self.start_element_symbol(sym),
                DocEvent::Close => self.end_element(),
                DocEvent::Attr(sym) => self.attribute(sym),
                DocEvent::Text => self.text(),
            }
        }
        self.finish()
    }

    /// Whether no diagnostic has been recorded for the current document —
    /// the per-event check the fail-fast [`crate::ValidationService`] makes.
    #[inline]
    pub(crate) fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Takes the *earliest* diagnostic recorded for the current document,
    /// discarding any later ones. Because diagnostics are pushed in event
    /// order, this is byte-identical to the first entry a whole-document
    /// [`DocumentValidator::finish`] would report — the fail-fast contract
    /// of [`crate::ValidationService`].
    pub(crate) fn take_first_diagnostic(&mut self) -> Option<Diagnostic> {
        let first = if self.diagnostics.is_empty() {
            None
        } else {
            Some(self.diagnostics.remove(0))
        };
        self.diagnostics.clear();
        first
    }

    /// The name of the innermost open element, if any — the byte front end
    /// checks end-tag names against it (XML well-formedness; the event
    /// surface has no names on close events, so only byte feeding pays the
    /// comparison).
    pub(crate) fn open_element_name(&self) -> Option<&str> {
        self.frames.last().map(|frame| {
            if frame.sym == UNKNOWN {
                self.unknown.last().map(String::as_str).unwrap_or("?")
            } else {
                self.schema.name(Symbol::from_index(frame.sym as usize))
            }
        })
    }

    /// Records a malformed-markup diagnostic at the current document
    /// position — the byte-level tokenizer's entry into the diagnostic
    /// stream (the offending construct is not a document event, so the
    /// event counter is not advanced).
    pub(crate) fn report_markup(&mut self, message: String) {
        self.report_limit(Code::MalformedMarkup, message);
    }

    /// Records a diagnostic of any code at the current document position —
    /// the service layer's entry for `E3xx` resource-governance violations
    /// that are not tied to a single event (byte budgets, name caps, idle
    /// sweeps). The event counter is not advanced, so the location is the
    /// deterministic "between events" point whatever the chunking.
    pub(crate) fn report_limit(&mut self, code: Code, message: String) {
        let event = self.events;
        let path = self.path_with(None);
        self.diagnostics
            .push(Diagnostic::new(code, message).with_location(DocLocation { path, event }));
    }

    fn take_event(&mut self) -> usize {
        if self.events >= self.max_events && !self.event_limit_reported {
            self.event_limit_reported = true;
            let event = self.events;
            let path = self.path_with(None);
            self.diagnostics.push(
                Diagnostic::new(
                    Code::EventLimitExceeded,
                    format!(
                        "document exceeded the event budget of {} event(s)",
                        self.max_events
                    ),
                )
                .with_location(DocLocation { path, event }),
            );
        }
        let event = self.events;
        self.events += 1;
        event
    }

    /// The counted simulation of the element at dense symbol index `sym`,
    /// when its model is counted.
    #[inline]
    fn counted_matcher(&self, sym: u32) -> Option<&redet_automata::NfaSimulationMatcher> {
        self.schema.model_at(sym).and_then(|m| m.counted_matcher())
    }

    /// Feeds the child's symbol into the innermost open element's cursor;
    /// `Err` carries the name of a child unknown to the schema's alphabet
    /// (which no content model over that alphabet can accept).
    #[inline]
    fn feed_parent(&mut self, child: Result<Symbol, &str>, event: usize) {
        let issue = {
            let Some(parent) = self.frames.last_mut() else {
                return;
            };
            let child_index = parent.children;
            parent.children += 1;
            match parent.state {
                FrameState::Any | FrameState::Dead => ParentIssue::None,
                FrameState::Pos(pos) => {
                    let next = match child {
                        Ok(sym) => self
                            .schema
                            .model_at(parent.sym)
                            .and_then(|m| m.pos_advance(pos, sym)),
                        // A name outside the alphabet can never be matched.
                        Err(_) => None,
                    };
                    match next {
                        Some(q) => {
                            parent.state = FrameState::Pos(q);
                            ParentIssue::None
                        }
                        None => {
                            parent.state = FrameState::Dead;
                            ParentIssue::Rejected { child_index }
                        }
                    }
                }
                FrameState::Counted => {
                    let advanced = match child {
                        Ok(sym) => match (
                            self.schema
                                .model_at(parent.sym)
                                .and_then(|m| m.counted_matcher()),
                            self.counted.last_mut(),
                        ) {
                            (Some(m), Some(state)) => m.step(state, sym),
                            _ => {
                                debug_assert!(
                                    false,
                                    "Counted frames keep a state on the counted stack"
                                );
                                false
                            }
                        },
                        Err(_) => false,
                    };
                    if advanced {
                        ParentIssue::None
                    } else {
                        parent.state = FrameState::Dead;
                        // The element's check is over; recycle its state now.
                        if let Some(state) = self.counted.pop() {
                            self.pool.push(state);
                        }
                        ParentIssue::Rejected { child_index }
                    }
                }
                FrameState::Leaf => {
                    parent.state = FrameState::Dead;
                    let undeclared = self
                        .schema
                        .content_kind(Symbol::from_index(parent.sym as usize))
                        == ContentKind::Undeclared;
                    ParentIssue::EmptyViolation { undeclared }
                }
            }
        };
        match issue {
            ParentIssue::None => {}
            ParentIssue::EmptyViolation { undeclared } => {
                let parent_name = self.last_frame_name().to_owned();
                let child_name = self.child_name(child).to_owned();
                let path = self.path_with(None);
                let how = if undeclared {
                    "has no declaration (EMPTY semantics)"
                } else {
                    "is declared EMPTY"
                };
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::ChildInEmptyElement,
                        format!("<{parent_name}> {how} but contains <{child_name}>"),
                    )
                    .with_location(DocLocation { path, event }),
                );
            }
            ParentIssue::Rejected { child_index } => {
                let parent_name = self.last_frame_name().to_owned();
                let child_name = self.child_name(child).to_owned();
                let path = self.path_with(None);
                self.diagnostics.push(
                    Diagnostic::new(
                        Code::UnexpectedChild,
                        format!(
                            "<{child_name}> cannot appear as child #{child_index} of \
                             <{parent_name}>: the content model has no continuation \
                             for it here"
                        ),
                    )
                    .with_location(DocLocation { path, event }),
                );
            }
        }
    }

    /// The display name of a frame that is still on (or was just popped
    /// off) the stack. Unknown-element names are resolved positionally
    /// against the `unknown` side stack, so pass a frame only while its
    /// unknown-name entry is still present.
    fn frame_name_owned(&self, frame: &Frame) -> String {
        if frame.sym == UNKNOWN {
            self.unknown.last().cloned().unwrap_or_else(|| "?".into())
        } else {
            self.schema
                .name(Symbol::from_index(frame.sym as usize))
                .to_owned()
        }
    }

    fn last_frame_name(&self) -> &str {
        match self.frames.last() {
            Some(frame) if frame.sym != UNKNOWN => {
                self.schema.name(Symbol::from_index(frame.sym as usize))
            }
            Some(_) => self.unknown.last().map(String::as_str).unwrap_or("?"),
            None => "?",
        }
    }

    fn child_name<'a>(&'a self, child: Result<Symbol, &'a str>) -> &'a str {
        match child {
            Ok(sym) => self.schema.name(sym),
            Err(name) => name,
        }
    }

    /// Slash-separated path of the open elements, optionally extended by one
    /// more segment. Only called on diagnostic paths — allocation here never
    /// touches the valid-document hot loop.
    fn path_with(&self, extra: Option<&str>) -> String {
        let mut unknown = self.unknown.iter();
        let mut path = String::new();
        for frame in &self.frames {
            let name = if frame.sym == UNKNOWN {
                unknown.next().map(String::as_str).unwrap_or("?")
            } else {
                self.schema.name(Symbol::from_index(frame.sym as usize))
            };
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(name);
        }
        if let Some(extra) = extra {
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(extra);
        }
        path
    }
}

impl std::fmt::Debug for DocumentValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocumentValidator")
            .field("depth", &self.depth())
            .field("events", &self.events)
            .field("diagnostics", &self.diagnostics.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaBuilder;

    fn bibliography() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("bibliography", "(book | article)*")
            .element("book", "(title, author+, publisher?, year)")
            .element("article", "(title, author+, journal, year?)")
            .element_empty("title")
            .element_empty("author")
            .element_empty("year")
            .build()
            .unwrap()
    }

    fn leaf(v: &mut DocumentValidator, name: &str) {
        v.start_element(name);
        v.end_element();
    }

    #[test]
    fn validators_are_send_and_movable() {
        fn assert_send<T: Send>(_: &T) {}
        let schema = bibliography();
        let mut v = schema.validator();
        assert_send(&v);
        drop(schema); // The validator owns its schema.
        let handle = std::thread::spawn(move || {
            v.start_element("bibliography");
            v.end_element();
            v.finish().is_ok()
        });
        assert!(handle.join().unwrap());
    }

    #[test]
    fn valid_document_passes() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "title");
        leaf(&mut v, "author");
        leaf(&mut v, "author");
        leaf(&mut v, "publisher");
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
        // The validator is reusable for the next document.
        v.start_element("bibliography");
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn incomplete_content_is_located() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "title");
        leaf(&mut v, "author");
        v.end_element(); // book closed without year
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code(), Code::IncompleteElement);
        let loc = err[0].location().unwrap();
        assert_eq!(loc.path, "bibliography/book");
        assert_eq!(loc.event, 6);
    }

    #[test]
    fn unexpected_child_reports_once_at_the_earliest_event() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        leaf(&mut v, "author"); // title must come first
        leaf(&mut v, "author");
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        // One diagnostic for <book>, not one per subsequent child.
        assert_eq!(err.len(), 1, "{err:?}");
        assert_eq!(err[0].code(), Code::UnexpectedChild);
        let loc = err[0].location().unwrap();
        assert_eq!(loc.path, "bibliography/book");
        assert_eq!(loc.event, 2);
        assert!(
            err[0].message().contains("child #0"),
            "{}",
            err[0].message()
        );
    }

    #[test]
    fn empty_and_unknown_elements_are_diagnosed() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.start_element("bibliography");
        v.start_element("book");
        v.start_element("title");
        leaf(&mut v, "author"); // title is EMPTY
        v.end_element();
        leaf(&mut v, "author");
        v.start_element("mystery"); // unknown to the schema
        v.end_element();
        leaf(&mut v, "year");
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        let codes: Vec<Code> = err.iter().map(|d| d.code()).collect();
        assert!(codes.contains(&Code::ChildInEmptyElement), "{codes:?}");
        assert!(codes.contains(&Code::UnknownElement), "{codes:?}");
        // The unknown child also breaks its parent's content model.
        assert!(codes.contains(&Code::UnexpectedChild), "{codes:?}");
        // The unknown element's diagnostic path names it.
        let unknown = err
            .iter()
            .find(|d| d.code() == Code::UnknownElement)
            .unwrap();
        assert_eq!(
            unknown.location().unwrap().path,
            "bibliography/book/mystery"
        );
    }

    #[test]
    fn unbalanced_documents_are_diagnosed() {
        let schema = bibliography();
        let mut v = schema.validator();
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnbalancedDocument);

        let mut v = schema.validator();
        v.start_element("bibliography");
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnbalancedDocument);
        // finish() reset the validator despite the open element.
        assert_eq!(v.depth(), 0);
        v.start_element("bibliography");
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn symbol_hot_path_matches_name_path() {
        let schema = bibliography();
        let bib = schema.lookup("bibliography").unwrap();
        let book = schema.lookup("book").unwrap();
        let title = schema.lookup("title").unwrap();
        let author = schema.lookup("author").unwrap();
        let year = schema.lookup("year").unwrap();
        let mut v = schema.validator();
        v.start_element_symbol(bib);
        v.start_element_symbol(book);
        for s in [title, author, year] {
            v.start_element_symbol(s);
            v.end_element();
        }
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
    }

    #[test]
    fn validate_events_replays_whole_documents() {
        let schema = bibliography();
        let s = |name: &str| schema.lookup(name).unwrap();
        let doc = [
            DocEvent::Open(s("bibliography")),
            DocEvent::Open(s("book")),
            DocEvent::Open(s("title")),
            DocEvent::Close,
            DocEvent::Open(s("author")),
            DocEvent::Close,
            DocEvent::Open(s("year")),
            DocEvent::Close,
            DocEvent::Close,
            DocEvent::Close,
        ];
        let mut v = schema.validator();
        assert!(v.validate_events(&doc).is_ok());
        // Truncated stream: unbalanced.
        let err = v.validate_events(&doc[..3]).unwrap_err();
        assert_eq!(err[0].code(), Code::UnbalancedDocument);
        // The validator is clean again afterwards.
        assert!(v.validate_events(&doc).is_ok());
    }

    #[test]
    fn counted_models_validate_through_the_simulation() {
        let schema = SchemaBuilder::new()
            .element("order", "(item{2,3}, total)")
            .element_empty("item")
            .element_empty("total")
            .build()
            .unwrap();
        let mut v = schema.validator();
        v.start_element("order");
        for _ in 0..2 {
            leaf(&mut v, "item");
        }
        leaf(&mut v, "total");
        v.end_element();
        assert!(v.finish().is_ok());
        // One item is too few: the rejection fires on `total`.
        v.start_element("order");
        leaf(&mut v, "item");
        leaf(&mut v, "total");
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UnexpectedChild);
        // Too few items *and* nothing after them: incomplete, not rejected.
        v.start_element("order");
        leaf(&mut v, "item");
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::IncompleteElement);
    }

    #[test]
    fn nested_counted_models_keep_their_states_apart() {
        // `group` nests counted `order`s inside a counted `pair` — the side
        // stack must track each open counted element independently.
        let schema = SchemaBuilder::new()
            .element("group", "(order{1,2})")
            .element("order", "(item{2,3})")
            .element_empty("item")
            .build()
            .unwrap();
        let mut v = schema.validator();
        v.start_element("group");
        for items in [2usize, 3] {
            v.start_element("order");
            for _ in 0..items {
                leaf(&mut v, "item");
            }
            v.end_element();
        }
        v.end_element();
        assert!(v.finish().is_ok());
        // The inner rejection doesn't corrupt the outer state.
        v.start_element("group");
        v.start_element("order");
        leaf(&mut v, "item");
        v.end_element(); // order incomplete
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::IncompleteElement);
    }

    /// `book` takes a required `isbn` and an optional `lang`; `title` is a
    /// `(#PCDATA)` leaf.
    fn attributed() -> Arc<Schema> {
        SchemaBuilder::new()
            .element("book", "(title)")
            .element_text("title")
            .attribute("book", "isbn", true)
            .attribute("book", "lang", false)
            .build()
            .unwrap()
    }

    #[test]
    fn required_attributes_are_enforced_at_the_open_event() {
        let schema = attributed();
        let s = |n: &str| schema.lookup(n).unwrap();
        let mut v = schema.validator();
        v.start_element_symbol(s("book"));
        v.attribute(s("isbn"));
        v.start_element_symbol(s("title"));
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
        // The optional attribute alone does not satisfy the required one.
        v.start_element_symbol(s("book"));
        v.attribute(s("lang"));
        v.start_element_symbol(s("title"));
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::MissingRequiredAttribute);
        assert!(err[0].message().contains("'isbn'"), "{}", err[0]);
        let loc = err[0].location().unwrap();
        // Anchored at <book>'s open event, not wherever the tag ended.
        assert_eq!(loc.event, 0);
        assert_eq!(loc.path, "book");
    }

    #[test]
    fn undeclared_and_duplicate_attributes_are_diagnosed() {
        let schema = attributed();
        let s = |n: &str| schema.lookup(n).unwrap();
        let mut v = schema.validator();
        v.start_element_symbol(s("book"));
        v.attribute(s("isbn"));
        v.attribute(s("isbn"));
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::DuplicateAttribute);
        assert_eq!(err[0].location().unwrap().event, 2);
        // An alphabet name that is not in the element's table (the byte
        // surface reports the identical diagnostic).
        v.start_element_symbol(s("book"));
        v.attribute(s("title"));
        let by_symbol = v.finish().unwrap_err();
        v.start_element_bytes(b"book");
        v.attribute_bytes(b"title");
        let by_bytes = v.finish().unwrap_err();
        assert_eq!(by_symbol[0].code(), Code::UndeclaredAttribute);
        assert_eq!(by_symbol[0].to_string(), by_bytes[0].to_string());
        // A name outside the alphabet is undeclared by construction.
        v.start_element_bytes(b"book");
        v.attribute_bytes(b"publisher");
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::UndeclaredAttribute);
        assert!(err[0].message().contains("'publisher'"), "{}", err[0]);
    }

    #[test]
    fn attributes_outside_a_start_tag_are_malformed() {
        let schema = attributed();
        let s = |n: &str| schema.lookup(n).unwrap();
        let mut v = schema.validator();
        v.start_element_symbol(s("title"));
        v.text();
        v.attribute(s("lang"));
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::MalformedMarkup);
        assert!(
            err[0].message().contains("outside of a start tag"),
            "{}",
            err[0]
        );
    }

    #[test]
    fn attributes_on_unknown_elements_are_unchecked() {
        let schema = attributed();
        let mut v = schema.validator();
        v.start_element("mystery");
        v.attribute_bytes(b"anything");
        v.attribute_bytes(b"anything");
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err.len(), 1, "{err:?}");
        assert_eq!(err[0].code(), Code::UnknownElement);
    }

    #[test]
    fn text_placement_follows_mixed_content() {
        let schema = attributed();
        let s = |n: &str| schema.lookup(n).unwrap();
        let mut v = schema.validator();
        // (#PCDATA) allows text; an element-only model does not.
        v.start_element_symbol(s("book"));
        v.attribute(s("isbn"));
        v.start_element_symbol(s("title"));
        v.text();
        v.end_element();
        v.end_element();
        assert!(v.finish().is_ok());
        v.start_element_symbol(s("book"));
        v.attribute(s("isbn"));
        v.text();
        v.start_element_symbol(s("title"));
        v.end_element();
        v.end_element();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::StrayText);
        assert_eq!(err[0].location().unwrap().path, "book");
        // Text before the document element is stray too.
        v.text();
        let err = v.finish().unwrap_err();
        assert_eq!(err[0].code(), Code::StrayText);
        assert!(err[0].message().contains("outside"), "{}", err[0]);
    }

    #[test]
    fn text_segments_coalesce_into_one_event() {
        let schema = attributed();
        let mut v = schema.validator();
        v.start_element_bytes(b"book");
        v.attribute_bytes(b"isbn");
        v.start_element_bytes(b"title");
        v.text_segment(b"  \n");
        v.text_segment(b"hello");
        v.text_segment(b" world");
        v.close_element_bytes(b"title");
        v.close_element_bytes(b"book");
        // open, attr, open, one text run, close, close — whitespace outside
        // a run and continuation segments are free.
        assert_eq!(v.events(), 6);
        assert!(v.finish().is_ok());
    }

    #[test]
    fn validate_events_covers_attributes_and_text() {
        let schema = attributed();
        let s = |n: &str| schema.lookup(n).unwrap();
        let doc = [
            DocEvent::Open(s("book")),
            DocEvent::Attr(s("isbn")),
            DocEvent::Open(s("title")),
            DocEvent::Text,
            DocEvent::Close,
            DocEvent::Close,
        ];
        let mut v = schema.validator();
        assert!(v.validate_events(&doc).is_ok());
        // Dropping the attribute flips the verdict.
        let err = v.validate_events(&doc[..1]).unwrap_err();
        let codes: Vec<Code> = err.iter().map(|d| d.code()).collect();
        assert!(codes.contains(&Code::MissingRequiredAttribute), "{codes:?}");
    }
}
